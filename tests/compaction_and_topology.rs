//! Integration tests for the extension features: sketch compaction /
//! harmonization across heterogeneous parties, NetFlow workloads, and
//! hierarchical aggregation — exercised together, end to end.

use gt_sketch::streams::{aggregate_tree, FlowWorkload, Party, Referee, StreamOracle};
use gt_sketch::{harmonize, DistinctSketch, HashFamilyKind, SketchConfig};

#[test]
fn heterogeneous_fleet_harmonizes_to_one_answer() {
    // Three classes of observer with different budgets, same master seed.
    let master = 0xF1EE7;
    let shapes = [
        SketchConfig::from_shape(0.05, 0.01, 4800, 9, HashFamilyKind::Pairwise).unwrap(),
        SketchConfig::from_shape(0.1, 0.05, 1200, 9, HashFamilyKind::Pairwise).unwrap(),
        SketchConfig::from_shape(0.2, 0.1, 300, 5, HashFamilyKind::Pairwise).unwrap(),
    ];
    let mut sketches: Vec<DistinctSketch> = Vec::new();
    let mut oracle = StreamOracle::new();
    for (i, cfg) in shapes.iter().enumerate() {
        let stream: Vec<u64> = (0..20_000u64)
            .map(|x| gt_sketch::fold61(x + i as u64 * 10_000))
            .collect();
        oracle.observe(&stream);
        let mut s = DistinctSketch::new(cfg, master);
        s.extend_labels(stream.iter().copied());
        sketches.push(s);
    }

    // Fold the fleet down pairwise with harmonize.
    let (mut acc, b) = harmonize(&sketches[0], &sketches[1]).unwrap();
    acc.merge_from(&b).unwrap();
    let (mut acc, c) = harmonize(&acc, &sketches[2]).unwrap();
    acc.merge_from(&c).unwrap();

    // Weakest shape governs the result.
    assert_eq!(acc.config().capacity(), 300);
    assert_eq!(acc.config().trials(), 5);
    let truth = oracle.distinct() as f64;
    let rel = (acc.estimate_distinct().value - truth).abs() / truth;
    assert!(rel < 0.2, "rel {rel} (weakest shape eps = 0.2)");
}

#[test]
fn netflow_end_to_end_through_tree_aggregation() {
    let workload = FlowWorkload {
        monitors: 12,
        flows_per_monitor: 5_000,
        transit_fraction: 0.4,
        records_per_monitor: 25_000,
        skew: 1.2,
        seed: 0x1234,
    };
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let master = 0x5EED01;

    let streams = workload.generate();
    let mut oracle = StreamOracle::new();
    let messages: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(id, recs)| {
            let labels: Vec<u64> = recs.iter().map(|r| r.label()).collect();
            oracle.observe(&labels);
            let mut p = Party::new(id, &config, master);
            p.observe_stream(&labels);
            p.finish()
        })
        .collect();

    let mut flat = Referee::new(&config, master);
    for m in &messages {
        flat.receive(m).unwrap();
    }
    let tree = aggregate_tree(&config, master, messages, 3).unwrap();

    assert_eq!(tree.estimate.value, flat.estimate_distinct().value);
    let truth = oracle.distinct() as f64;
    let rel = (tree.estimate.value - truth).abs() / truth;
    assert!(rel < 0.1, "rel {rel}");
    // 12 -> 4 -> 2 -> 1 with fanout 3.
    assert_eq!(tree.messages_per_tier, vec![12, 4, 2, 1]);
}

#[test]
fn shrunk_edge_sketch_merges_into_datacenter_referee() {
    // A datacenter party shrinks its high-budget sketch down to an edge
    // shape before joining an edge-coordinated union.
    let edge_cfg = SketchConfig::from_shape(0.2, 0.1, 256, 5, HashFamilyKind::Pairwise).unwrap();
    let dc_cfg = SketchConfig::from_shape(0.05, 0.01, 4096, 9, HashFamilyKind::Pairwise).unwrap();
    let master = 0x5EED02;

    let mut edge = DistinctSketch::new(&edge_cfg, master);
    edge.extend_labels((0..6_000u64).map(gt_sketch::fold61));
    let mut dc = DistinctSketch::new(&dc_cfg, master);
    dc.extend_labels((3_000..12_000u64).map(gt_sketch::fold61));

    // Shape-shrinking alone keeps the DC's stated (eps, delta), so a
    // direct merge is still (correctly) refused; harmonize reconciles the
    // contract metadata too.
    let dc_as_edge = dc.with_trials(5).unwrap().with_capacity(256).unwrap();
    assert!(edge.merged(&dc_as_edge).is_err(), "stated contracts differ");
    let (edge_h, dc_h) = harmonize(&edge, &dc_as_edge).unwrap();
    let union = edge_h.merged(&dc_h).unwrap();
    let truth = 12_000.0;
    let rel = (union.estimate_distinct().value - truth).abs() / truth;
    assert!(rel < 0.25, "rel {rel}");
}
