//! Property-based tests for the set-expression query engine: engine
//! evaluation must agree with the pre-existing single-purpose paths
//! (`estimate_distinct`, `similarity()`) wherever they overlap, and with
//! exact set algebra below capacity. If any of these break, expression
//! answers silently drift from the estimators the paper's guarantees
//! were proved for.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::{eval_expr, similarity, DistinctSketch, ExprContext, SetExpr, SketchConfig};

/// Small capacities + trials so promotions (level skew) happen even on
/// small inputs.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

/// Roomy capacity: a few hundred labels stay below it in every trial, so
/// estimates are exact and comparable to true set algebra.
fn roomy_config() -> SketchConfig {
    SketchConfig::new(0.1, 0.1).unwrap()
}

fn sketch_of(config: &SketchConfig, labels: &[u64], seed: u64) -> DistinctSketch {
    let mut s = DistinctSketch::new(config, seed);
    s.extend_labels(labels.iter().map(|&l| gt_sketch::fold61(l)));
    s
}

fn label_set(labels: &[u64]) -> HashSet<u64> {
    labels.iter().map(|&l| gt_sketch::fold61(l)).collect()
}

/// Fold `(op, leaf)` pairs into a left-deep expression over 3 operands:
/// depth = pairs + 1, so up to 4 with three pairs. The shapes cover
/// repeated leaves and every operator.
fn build_expr(first_leaf: usize, pairs: &[(u8, usize)]) -> SetExpr {
    let mut expr = SetExpr::leaf(first_leaf % 3);
    for &(op, leaf) in pairs {
        let rhs = SetExpr::leaf(leaf % 3);
        expr = match op % 3 {
            0 => expr.union(rhs),
            1 => expr.intersect(rhs),
            _ => expr.difference(rhs),
        };
    }
    expr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The depth-1 special case: a leaf evaluates to exactly
    /// `estimate_distinct()` of that operand, at any level skew.
    #[test]
    fn leaf_evaluation_is_estimate_distinct(
        a in vec(0u64..5_000, 0..400),
        b in vec(0u64..200_000, 0..2_000),
        seed in 0u64..16,
    ) {
        let sa = sketch_of(&small_config(), &a, seed);
        let sb = sketch_of(&small_config(), &b, seed);
        // Alignment must not leak across leaves: evaluating leaf(0) in a
        // two-operand context ignores operand 1's (higher) level.
        let ctx = ExprContext::new(&[&sa, &sb]).unwrap();
        let got = ctx.eval(&SetExpr::leaf(0)).unwrap();
        prop_assert_eq!(got.estimate.value, sa.estimate_distinct().value);
        let got = ctx.eval(&SetExpr::leaf(1)).unwrap();
        prop_assert_eq!(got.estimate.value, sb.estimate_distinct().value);
    }

    /// Pairwise engine results are value-identical to `similarity()` for
    /// every field, including under level skew (b's universe is much
    /// larger, so its trials run at higher levels).
    #[test]
    fn pairwise_engine_matches_similarity(
        a in vec(0u64..5_000, 0..400),
        b in vec(0u64..200_000, 0..2_000),
        seed in 0u64..16,
    ) {
        let sa = sketch_of(&small_config(), &a, seed);
        let sb = sketch_of(&small_config(), &b, seed);
        let sim = similarity(&sa, &sb).unwrap();
        let (la, lb) = (SetExpr::leaf(0), SetExpr::leaf(1));

        let union = eval_expr(&la.clone().union(lb.clone()), &[&sa, &sb]).unwrap();
        prop_assert_eq!(union.estimate.value, sim.union);
        let inter = eval_expr(&la.clone().intersect(lb.clone()), &[&sa, &sb]).unwrap();
        prop_assert_eq!(inter.estimate.value, sim.intersection);
        let diff_ab = eval_expr(&la.clone().difference(lb.clone()), &[&sa, &sb]).unwrap();
        prop_assert_eq!(diff_ab.estimate.value, sim.difference_a_minus_b);
        let diff_ba = eval_expr(&lb.clone().difference(la.clone()), &[&sa, &sb]).unwrap();
        prop_assert_eq!(diff_ba.estimate.value, sim.difference_b_minus_a);

        let ctx = ExprContext::new(&[&sa, &sb]).unwrap();
        let j = ctx.eval_jaccard(&la, &lb).unwrap();
        prop_assert_eq!(j.jaccard, sim.jaccard);
    }

    /// Repeated leaves obey set algebra at any level skew: A∩A and A∪A
    /// are A (so they evaluate to `estimate_distinct`), and A∖A is empty.
    #[test]
    fn repeated_leaves_collapse(
        a in vec(0u64..100_000, 0..1_500),
        seed in 0u64..16,
    ) {
        let sa = sketch_of(&small_config(), &a, seed);
        let leaf = SetExpr::leaf(0);
        let exact = sa.estimate_distinct().value;
        let both = eval_expr(&leaf.clone().intersect(leaf.clone()), &[&sa]).unwrap();
        prop_assert_eq!(both.estimate.value, exact);
        let either = eval_expr(&leaf.clone().union(leaf.clone()), &[&sa]).unwrap();
        prop_assert_eq!(either.estimate.value, exact);
        let neither = eval_expr(&leaf.clone().difference(leaf.clone()), &[&sa]).unwrap();
        prop_assert_eq!(neither.estimate.value, 0.0);
        prop_assert_eq!(neither.variance, 0.0);
    }

    /// Below capacity, random expression trees over 3 operands (depth up
    /// to 4, repeated leaves allowed) evaluate to exact set algebra — the
    /// engine agrees with both the `eval_exact` oracle and a by-hand
    /// `HashSet` evaluation of the same tree.
    #[test]
    fn below_capacity_trees_match_exact_set_algebra(
        a in vec(0u64..600, 0..250),
        b in vec(0u64..600, 0..250),
        c in vec(0u64..600, 0..250),
        first_leaf in 0usize..3,
        pairs in vec((0u8..3, 0usize..3), 1..4),
        seed in 0u64..8,
    ) {
        let config = roomy_config();
        let (sa, sb, sc) = (
            sketch_of(&config, &a, seed),
            sketch_of(&config, &b, seed),
            sketch_of(&config, &c, seed),
        );
        let expr = build_expr(first_leaf, &pairs);
        let sets = [label_set(&a), label_set(&b), label_set(&c)];
        let truth = expr.eval_exact(&sets).unwrap().len() as f64;
        let got = eval_expr(&expr, &[&sa, &sb, &sc]).unwrap();
        prop_assert_eq!(got.estimate.value, truth, "expr {}", expr);
        // Exact in every trial, so the empirical spread collapses too.
        prop_assert_eq!(got.mean, truth);
        prop_assert_eq!(got.variance, 0.0);
    }
}

#[test]
fn empty_operands_evaluate_to_zero_everywhere() {
    let config = small_config();
    let empty = DistinctSketch::new(&config, 3);
    let full = sketch_of(&config, &(0..2_000u64).collect::<Vec<_>>(), 3);

    let (le, lf) = (SetExpr::leaf(0), SetExpr::leaf(1));
    let ctx = ExprContext::new(&[&empty, &full]).unwrap();
    assert_eq!(ctx.eval(&le).unwrap().estimate.value, 0.0);
    assert_eq!(
        ctx.eval(&le.clone().intersect(lf.clone()))
            .unwrap()
            .estimate
            .value,
        0.0
    );
    assert_eq!(
        ctx.eval(&le.clone().union(lf.clone()))
            .unwrap()
            .estimate
            .value,
        full.estimate_distinct().value
    );
    // Jaccard of two empties follows the empty-union convention: 0.0.
    let both_empty = ExprContext::new(&[&empty, &empty]).unwrap();
    let j = both_empty.eval_jaccard(&le, &lf).unwrap();
    assert_eq!(j.jaccard, 0.0);
    assert_eq!(j.populated_trials, 0);
}

#[test]
fn depth_three_and_deeper_trees_track_truth_at_scale() {
    // Above capacity: a depth-4 expression over three 60k-label streams
    // stays within the additive contract ε·|referenced union| (with the
    // generous constant the engine's own tests use).
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let a: Vec<u64> = (0..60_000).collect();
    let b: Vec<u64> = (30_000..90_000).collect();
    let c: Vec<u64> = (50_000..110_000).collect();
    let (sa, sb, sc) = (
        sketch_of(&config, &a, 21),
        sketch_of(&config, &b, 21),
        sketch_of(&config, &c, 21),
    );
    let expr = SetExpr::leaf(0)
        .union(SetExpr::leaf(1))
        .intersect(SetExpr::leaf(2))
        .difference(SetExpr::leaf(0));
    assert_eq!(expr.depth(), 4);
    let sets = [label_set(&a), label_set(&b), label_set(&c)];
    let truth = expr.eval_exact(&sets).unwrap().len() as f64;
    // Truth: (([0,60k) ∪ [30k,90k)) ∩ [50k,110k)) ∖ [0,60k) = [60k,90k).
    assert_eq!(truth, 30_000.0);
    let got = eval_expr(&expr, &[&sa, &sb, &sc]).unwrap();
    let scale = 0.1 * 110_000.0; // ε · |union of referenced streams|
    assert!(
        (got.estimate.value - truth).abs() <= 3.0 * scale,
        "estimate {} truth {truth}",
        got.estimate.value
    );
    assert!(got.ci_lower() <= got.ci_upper());
}
