//! Property-based tests (proptest) on the core invariants of coordinated
//! sampling. These are the load-bearing guarantees: if any of them breaks,
//! the distributed-union semantics silently rot.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::streams::{decode_sketch, encode_sketch};
use gt_sketch::{DistinctSketch, SketchConfig, SumDistinctSketch};

/// Small capacities + trials so promotions happen even on small inputs.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

fn sketch_of(labels: &[u64], seed: u64) -> DistinctSketch {
    let mut s = DistinctSketch::new(&small_config(), seed);
    s.extend_labels(labels.iter().map(|&l| gt_sketch::fold61(l)));
    s
}

/// Canonical comparable state: per-trial (level, sorted sample).
fn state(s: &DistinctSketch) -> Vec<(u8, Vec<u64>)> {
    s.trials()
        .iter()
        .map(|t| {
            let mut v: Vec<u64> = t.sample_iter().map(|(k, _)| k).collect();
            v.sort_unstable();
            (t.level(), v)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_concatenation(a in vec(0u64..5_000, 0..400), b in vec(0u64..5_000, 0..400)) {
        let sa = sketch_of(&a, 9);
        let sb = sketch_of(&b, 9);
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let whole = sketch_of(&concat, 9);
        let merged = sa.merged(&sb).unwrap();
        prop_assert_eq!(state(&merged), state(&whole));
    }

    #[test]
    fn merge_is_commutative(a in vec(0u64..5_000, 0..300), b in vec(0u64..5_000, 0..300)) {
        let sa = sketch_of(&a, 11);
        let sb = sketch_of(&b, 11);
        prop_assert_eq!(
            state(&sa.merged(&sb).unwrap()),
            state(&sb.merged(&sa).unwrap())
        );
    }

    #[test]
    fn merge_is_associative(
        a in vec(0u64..5_000, 0..200),
        b in vec(0u64..5_000, 0..200),
        c in vec(0u64..5_000, 0..200),
    ) {
        let (sa, sb, sc) = (sketch_of(&a, 13), sketch_of(&b, 13), sketch_of(&c, 13));
        let left = sa.merged(&sb).unwrap().merged(&sc).unwrap();
        let right = sa.merged(&sb.merged(&sc).unwrap()).unwrap();
        prop_assert_eq!(state(&left), state(&right));
    }

    #[test]
    fn merge_is_idempotent(a in vec(0u64..5_000, 0..400)) {
        let s = sketch_of(&a, 17);
        prop_assert_eq!(state(&s.merged(&s).unwrap()), state(&s));
    }

    #[test]
    fn insertion_order_is_irrelevant(mut a in vec(0u64..5_000, 0..400), seed in 0u64..32) {
        let s1 = sketch_of(&a, seed);
        a.reverse();
        let s2 = sketch_of(&a, seed);
        prop_assert_eq!(state(&s1), state(&s2));
    }

    #[test]
    fn duplication_is_invisible(a in vec(0u64..2_000, 0..200), reps in 1usize..5) {
        let once = sketch_of(&a, 19);
        let repeated: Vec<u64> = std::iter::repeat_with(|| a.iter().copied())
            .take(reps)
            .flatten()
            .collect();
        let many = sketch_of(&repeated, 19);
        prop_assert_eq!(state(&once), state(&many));
    }

    #[test]
    fn capacity_and_level_invariants(a in vec(0u64..100_000, 0..1_000)) {
        let s = sketch_of(&a, 23);
        for t in s.trials() {
            prop_assert!(t.sample_len() <= t.capacity());
            // every sampled label qualifies for the current level
            for (label, _) in t.sample_iter() {
                prop_assert!(gt_sketch::hash::LevelHasher::level(t.hasher(), label) >= t.level());
            }
        }
    }

    #[test]
    fn exact_below_capacity(a in vec(0u64..100_000u64, 0..16)) {
        // ≤ 16 distinct labels never promote a capacity-16 trial, so every
        // trial reports the exact distinct count.
        let distinct = a.iter().collect::<std::collections::HashSet<_>>().len();
        let s = sketch_of(&a, 29);
        prop_assert_eq!(s.estimate_distinct().value, distinct as f64);
    }

    #[test]
    fn codec_roundtrips_arbitrary_states(a in vec(0u64..50_000, 0..800), seed in 0u64..16) {
        let s = sketch_of(&a, seed);
        let decoded: DistinctSketch = decode_sketch(encode_sketch(&s)).unwrap();
        prop_assert_eq!(state(&decoded), state(&s));
        prop_assert_eq!(decoded.items_observed(), s.items_observed());
        prop_assert_eq!(decoded.master_seed(), s.master_seed());
    }

    #[test]
    fn different_seeds_never_merge(a in vec(0u64..1_000, 0..50), s1 in 0u64..100, s2 in 0u64..100) {
        prop_assume!(s1 != s2);
        let sa = sketch_of(&a, s1);
        let sb = sketch_of(&a, s2);
        prop_assert!(sa.merged(&sb).is_err());
    }

    #[test]
    fn sumdistinct_ignores_value_of_duplicates(
        pairs in vec((0u64..2_000, 1u64..100), 1..200),
    ) {
        // Re-inserting a label with ANY value must not change the estimate:
        // first-seen wins (duplicate-insensitive semantics).
        let cfg = small_config();
        let mut s1 = SumDistinctSketch::new(&cfg, 31);
        for &(l, v) in &pairs {
            s1.insert(gt_sketch::fold61(l), v);
        }
        let mut s2 = s1.clone();
        for &(l, _) in &pairs {
            s2.insert(gt_sketch::fold61(l), 9_999); // garbage re-inserts
        }
        prop_assert_eq!(s2.estimate_sum().value, s1.estimate_sum().value);
    }

    #[test]
    fn estimate_is_scale_calibrated(n in 1_000u64..20_000, seed in 0u64..8) {
        // Single-shot sanity: estimate within 60% of truth for a small
        // sketch (capacity 16). This is a *loose* envelope — the tight
        // (ε, δ) contract is exercised statistically in the experiments —
        // but it catches calibration bugs (e.g. off-by-one in level
        // scaling ⇒ 2x error, which this test rejects).
        let labels: Vec<u64> = (0..n).collect();
        let s = sketch_of(&labels, 100 + seed);
        let est = s.estimate_distinct().value;
        let rel = (est - n as f64).abs() / n as f64;
        prop_assert!(rel < 0.6, "n {} est {} rel {}", n, est, rel);
    }
}

mod batch_equivalence {
    use super::*;
    use gt_sketch::GtSketch;

    /// Per-trial (level, items observed, sorted (label, payload) sample).
    type PayloadState = Vec<(u8, u64, Vec<(u64, u64)>)>;

    /// Comparable state including payloads.
    fn payload_state(s: &GtSketch<u64>) -> PayloadState {
        s.trials()
            .iter()
            .map(|t| {
                let mut v: Vec<(u64, u64)> = t.sample_iter().collect();
                v.sort_unstable();
                (t.level(), t.items_observed(), v)
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The batch-monomorphic kernel (`extend_slice`), the trial-major
        /// reference loop, and the buffered iterator path must all be
        /// bitwise-identical to per-item inserts — samples, levels, item
        /// counts, AND metric snapshots. The narrow label range forces
        /// duplicates; list length up to 600 forces promotions at
        /// capacity 16.
        #[test]
        fn batch_paths_match_per_item(raw in vec(0u64..5_000, 0..600), seed in 0u64..16) {
            let cfg = small_config();
            let folded: Vec<u64> = raw.iter().map(|&l| gt_sketch::fold61(l)).collect();

            let mut per_item = DistinctSketch::new(&cfg, seed);
            for &l in &folded {
                per_item.insert(l);
            }
            let mut kernel = DistinctSketch::new(&cfg, seed);
            kernel.extend_slice(&folded);
            let mut reference = DistinctSketch::new(&cfg, seed);
            reference.extend_slice_reference(&folded);
            let mut buffered = DistinctSketch::new(&cfg, seed);
            buffered.extend_labels(folded.iter().copied());

            for s in [&kernel, &reference, &buffered] {
                prop_assert_eq!(state(s), state(&per_item));
                prop_assert_eq!(s.items_observed(), per_item.items_observed());
                prop_assert_eq!(s.metrics_snapshot(), per_item.metrics_snapshot());
            }
        }

        /// The merging batch kernel must reconcile duplicate payloads
        /// exactly like per-item `insert_merging_with` — payload values
        /// and reconciliation counters included. Labels drawn from a tiny
        /// universe so most arrivals are duplicates.
        #[test]
        fn merging_batch_matches_per_item(
            pairs in vec((0u64..300, 0u64..1_000), 0..400),
            seed in 0u64..8,
        ) {
            let cfg = small_config();
            let items: Vec<(u64, u64)> = pairs
                .iter()
                .map(|&(l, p)| (gt_sketch::fold61(l), p))
                .collect();

            let mut per_item = GtSketch::<u64>::new(&cfg, seed);
            for &(l, p) in &items {
                per_item.insert_merging_with(l, p);
            }
            let mut batched = GtSketch::<u64>::new(&cfg, seed);
            batched.insert_batch_merging_with(&items);

            prop_assert_eq!(payload_state(&batched), payload_state(&per_item));
            prop_assert_eq!(batched.metrics_snapshot(), per_item.metrics_snapshot());
        }

        /// Splitting a batch arbitrarily and ingesting the pieces through
        /// the kernel equals one kernel call over the whole batch (the
        /// buffer boundary in `extend_labels` must be invisible).
        #[test]
        fn batch_split_is_invisible(raw in vec(0u64..5_000, 0..500), cut in 0usize..500, seed in 0u64..8) {
            let cfg = small_config();
            let folded: Vec<u64> = raw.iter().map(|&l| gt_sketch::fold61(l)).collect();
            let cut = cut.min(folded.len());

            let mut whole = DistinctSketch::new(&cfg, seed);
            whole.extend_slice(&folded);
            let mut split = DistinctSketch::new(&cfg, seed);
            split.extend_slice(&folded[..cut]);
            split.extend_slice(&folded[cut..]);

            prop_assert_eq!(state(&split), state(&whole));
            prop_assert_eq!(split.metrics_snapshot(), whole.metrics_snapshot());
        }
    }
}

mod codec_robustness {
    use super::*;
    use gt_sketch::streams::codec::decode_sketch as decode;

    /// Deterministic port of the stored proptest regression for
    /// `decode_survives_single_byte_corruption` (the shim proptest runner
    /// does not replay `.proptest-regressions` files): this exact label
    /// set, seed, and bit flip once produced a decode that violated the
    /// sample invariant.
    #[test]
    fn corruption_regression_seed0_flip3595_bit6() {
        let labels: Vec<u64> = vec![
            533, 3853, 4173, 8964, 8150, 7573, 9116, 2638, 128, 13, 6408, 3629, 1741, 6334, 5868,
            2842, 1046, 2394, 875, 1955, 6055, 1984, 109, 412, 5910, 564, 7421, 362, 9878, 2988,
            6141, 9931, 2822, 343, 35, 97, 318, 1241, 3087, 2028, 765, 2028, 4047, 2162, 38, 3341,
            3639, 884, 1598, 6905, 4605, 4365, 3632, 5848, 3099, 318, 263, 4025, 5793, 4422, 3851,
            6235, 8814, 8277, 3966, 9027, 306, 1152, 6945, 5959, 2873, 2603, 478, 9624, 2405, 7928,
            4118, 1433,
        ];
        let s = sketch_of(&labels, 0);
        let mut raw = encode_sketch(&s).to_vec();
        let idx = 3595 % raw.len();
        raw[idx] ^= 1 << 6;
        if let Ok(decoded) = decode::<()>(bytes::Bytes::from(raw)) {
            for t in decoded.trials() {
                assert!(t.sample_len() <= t.capacity());
                for (label, _) in t.sample_iter() {
                    assert!(
                        gt_sketch::hash::LevelHasher::level(t.hasher(), label) >= t.level(),
                        "decoded sample entry {label} below trial level {}",
                        t.level()
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Decoding arbitrary bytes must return an error, never panic —
        /// referees face the network.
        #[test]
        fn decode_never_panics_on_garbage(data in vec(any::<u8>(), 0..512)) {
            let _ = decode::<()>(bytes::Bytes::from(data));
        }

        /// Single-byte corruptions of a valid message must either decode
        /// to a VALID sketch (the flip hit a don't-care bit such as the
        /// items counter) or error out — never panic, never produce a
        /// sketch violating the sample invariant.
        #[test]
        fn decode_survives_single_byte_corruption(
            labels in vec(0u64..10_000, 1..200),
            seed in 0u64..8,
            flip_pos in 0usize..4096,
            flip_bit in 0u8..8,
        ) {
            let s = sketch_of(&labels, seed);
            let mut raw = encode_sketch(&s).to_vec();
            let idx = flip_pos % raw.len();
            raw[idx] ^= 1 << flip_bit;
            if let Ok(decoded) = decode::<()>(bytes::Bytes::from(raw)) {
                // Whatever decoded must satisfy the invariant the decoder
                // promises to enforce.
                for t in decoded.trials() {
                    prop_assert!(t.sample_len() <= t.capacity());
                    for (label, _) in t.sample_iter() {
                        prop_assert!(
                            gt_sketch::hash::LevelHasher::level(t.hasher(), label) >= t.level()
                        );
                    }
                }
            }
        }
    }
}

mod sampleset_model {
    use super::*;
    use gt_core::sampleset::{FixedCapMap, InsertOutcome};
    use std::collections::HashMap;

    /// Model-based test: FixedCapMap against std HashMap under a random
    /// operation sequence (insert / contains / retain-by-parity / clear).
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u64, u64),
        Contains(u64),
        RetainEven,
        Clear,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u64..500, 0u64..1_000).prop_map(|(k, v)| Op::Insert(k, v)),
            2 => (0u64..500).prop_map(Op::Contains),
            1 => Just(Op::RetainEven),
            1 => Just(Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn behaves_like_hashmap(ops in vec(op_strategy(), 0..300)) {
            let capacity = 64usize;
            let mut real = FixedCapMap::<u64>::with_capacity(capacity);
            let mut model: HashMap<u64, u64> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        let outcome = real.try_insert(k, v);
                        match outcome {
                            InsertOutcome::Inserted => {
                                prop_assert!(model.len() < capacity);
                                prop_assert!(!model.contains_key(&k));
                                model.insert(k, v);
                            }
                            InsertOutcome::AlreadyPresent => {
                                prop_assert!(model.contains_key(&k));
                            }
                            InsertOutcome::Full => {
                                prop_assert_eq!(model.len(), capacity);
                                prop_assert!(!model.contains_key(&k));
                            }
                        }
                    }
                    Op::Contains(k) => {
                        prop_assert_eq!(real.get(k), model.get(&k).copied());
                    }
                    Op::RetainEven => {
                        real.retain(|k, _| k % 2 == 0);
                        model.retain(|k, _| k % 2 == 0);
                    }
                    Op::Clear => {
                        real.clear();
                        model.clear();
                    }
                }
                prop_assert_eq!(real.len(), model.len());
            }
            let mut got: Vec<(u64, u64)> = real.iter().collect();
            got.sort_unstable();
            let mut want: Vec<(u64, u64)> = model.into_iter().collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
