//! Property tests for the union-reduction paths: the parallel tree
//! reduction (`merge_tree`) must be indistinguishable — on canonical wire
//! bytes, the strongest equality the codec offers — from the sequential
//! `merge_all` fold and from *any* pairwise merge order. This is the
//! associativity/commutativity of the coordinated union made executable:
//! if it breaks, the referee's batched pipeline silently diverges from
//! the paper's single-observer semantics.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::streams::encode_sketch;
use gt_sketch::{merge_all, merge_tree, DistinctSketch, SketchConfig, SketchError};

/// Small capacities + trials so promotions happen even on small inputs.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

fn sketch_of(labels: &[u64], seed: u64) -> DistinctSketch {
    let mut s = DistinctSketch::new(&small_config(), seed);
    s.extend_labels(labels.iter().map(|&l| gt_sketch::fold61(l)));
    s
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `merge_tree` ≡ `merge_all` on canonical encoded bytes, across
    /// party counts straddling the tree's sequential crossover.
    #[test]
    fn tree_matches_sequential_fold(
        parties in vec(vec(0u64..4_000, 0..250), 1..20),
        seed in 0u64..64,
    ) {
        let sketches: Vec<DistinctSketch> =
            parties.iter().map(|p| sketch_of(p, seed)).collect();
        let seq = merge_all(&sketches).unwrap();
        let tree = merge_tree(&sketches).unwrap();
        prop_assert_eq!(encode_sketch(&tree), encode_sketch(&seq));
    }

    /// Any random pairwise merge schedule — pick two survivors, merge one
    /// into the other, repeat — lands on the same canonical bytes as the
    /// sequential left fold. This is strictly stronger than what the tree
    /// needs (adjacent in-order pairs) and pins down full
    /// order-insensitivity for label-only sketches.
    #[test]
    fn any_pairwise_merge_order_is_canonical(
        parties in vec(vec(0u64..4_000, 0..200), 2..12),
        seed in 0u64..64,
        schedule in any::<u64>(),
    ) {
        let mut schedule = schedule;
        let sketches: Vec<DistinctSketch> =
            parties.iter().map(|p| sketch_of(p, seed)).collect();
        let seq = merge_all(&sketches).unwrap();
        let mut pool = sketches;
        while pool.len() > 1 {
            let i = (splitmix(&mut schedule) as usize) % pool.len();
            let absorbed = pool.swap_remove(i);
            let j = (splitmix(&mut schedule) as usize) % pool.len();
            pool[j].merge_from(&absorbed).unwrap();
        }
        prop_assert_eq!(encode_sketch(&pool[0]), encode_sketch(&seq));
    }

    /// Level skew: one party far past capacity (high sampling level)
    /// among tiny level-0 parties. The tree's intermediate accumulators
    /// align levels in a different order than the fold; the result must
    /// not care.
    #[test]
    fn level_skew_does_not_break_equivalence(
        big in vec(0u64..100_000, 1_500..2_000),
        smalls in vec(vec(0u64..4_000, 0..50), 1..8),
        position in 0usize..8,
        seed in 0u64..16,
    ) {
        let mut sketches: Vec<DistinctSketch> =
            smalls.iter().map(|p| sketch_of(p, seed)).collect();
        sketches.insert(position.min(sketches.len()), sketch_of(&big, seed));
        let seq = merge_all(&sketches).unwrap();
        let tree = merge_tree(&sketches).unwrap();
        prop_assert_eq!(encode_sketch(&tree), encode_sketch(&seq));
    }

    /// A one-party union is the identity, bitwise.
    #[test]
    fn single_party_union_is_identity(
        labels in vec(0u64..4_000, 0..300),
        seed in 0u64..32,
    ) {
        let s = sketch_of(&labels, seed);
        let one = std::slice::from_ref(&s);
        prop_assert_eq!(encode_sketch(&merge_all(one).unwrap()), encode_sketch(&s));
        prop_assert_eq!(encode_sketch(&merge_tree(one).unwrap()), encode_sketch(&s));
    }
}

/// Zero parties is a typed error on both paths, not a panic.
#[test]
fn empty_union_is_an_error() {
    assert_eq!(
        merge_all::<DistinctSketch>(&[]).unwrap_err(),
        SketchError::EmptyUnion
    );
    assert_eq!(
        merge_tree::<DistinctSketch>(&[]).unwrap_err(),
        SketchError::EmptyUnion
    );
}
