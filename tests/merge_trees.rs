//! Property tests over *merge topologies*: however many parties exist,
//! however their streams are split, and in whatever shape their sketches
//! are combined (left fold, balanced tree, random tree), the final state
//! must be identical — the algebraic heart of the distributed-streams
//! model.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::{DistinctSketch, HashFamilyKind, SketchConfig};

fn config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 32, 5, HashFamilyKind::Pairwise).unwrap()
}

fn state(s: &DistinctSketch) -> Vec<(u8, Vec<u64>)> {
    s.trials()
        .iter()
        .map(|t| {
            let mut v: Vec<u64> = t.sample_iter().map(|(k, _)| k).collect();
            v.sort_unstable();
            (t.level(), v)
        })
        .collect()
}

/// Merge a list of sketches in a deterministic "random" tree shape driven
/// by `shape_seed`: repeatedly pick two elements and replace them with
/// their union.
fn merge_random_tree(mut parts: Vec<DistinctSketch>, shape_seed: u64) -> DistinctSketch {
    let mut state = shape_seed;
    let mut next = move |bound: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % bound
    };
    while parts.len() > 1 {
        let i = next(parts.len());
        let a = parts.swap_remove(i);
        let j = next(parts.len());
        let b = parts.swap_remove(j);
        parts.push(a.merged(&b).expect("coordinated"));
    }
    parts.pop().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_partition_and_any_merge_shape_agree(
        items in vec(0u64..20_000, 1..600),
        cuts in vec(0usize..600, 0..6),
        shape_seed in 0u64..1_000,
        master in 0u64..16,
    ) {
        // Partition `items` into contiguous party streams at `cuts`.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % items.len()).collect();
        bounds.push(0);
        bounds.push(items.len());
        bounds.sort_unstable();
        bounds.dedup();

        let parties: Vec<DistinctSketch> = bounds
            .windows(2)
            .map(|w| {
                let mut s = DistinctSketch::new(&config(), master);
                s.extend_labels(items[w[0]..w[1]].iter().map(|&x| gt_sketch::fold61(x)));
                s
            })
            .collect();

        // Reference: one observer of the whole stream.
        let mut whole = DistinctSketch::new(&config(), master);
        whole.extend_labels(items.iter().map(|&x| gt_sketch::fold61(x)));

        // Left fold.
        let mut fold = parties[0].clone();
        for p in &parties[1..] {
            fold.merge_from(p).unwrap();
        }
        prop_assert_eq!(state(&fold), state(&whole));

        // Random tree shape.
        let tree = merge_random_tree(parties, shape_seed);
        prop_assert_eq!(state(&tree), state(&whole));
    }

    #[test]
    fn re_merging_subsets_never_double_counts(
        items in vec(0u64..5_000, 1..300),
        master in 0u64..8,
    ) {
        // Overlapping party streams: every party sees a prefix of the
        // whole stream (maximal re-observation). Union must equal the
        // longest prefix's sketch.
        let labels: Vec<u64> = items.iter().map(|&x| gt_sketch::fold61(x)).collect();
        let mut parts = Vec::new();
        for frac in [1usize, 2, 3, 4] {
            let mut s = DistinctSketch::new(&config(), master);
            s.extend_labels(labels[..labels.len() / frac].iter().copied());
            parts.push(s);
        }
        let union = gt_sketch::merge_all(&parts).unwrap();
        prop_assert_eq!(state(&union), state(&parts[0]));
    }
}
