//! Regression pins for the runner refactor: each legacy
//! `run_*_scenario` entry point is now a thin wrapper over a
//! `ScenarioSpec` builder instance dispatched through
//! `gt_streams::scenario::run_spec_on`. These tests prove the refactor
//! is behavior-preserving by (a) re-deriving each engine's referee
//! state independently — a hand-rolled party→referee pipeline whose
//! canonical bytes and estimate pin the pre-refactor semantics — and
//! (b) pinning wrapper output bitwise to the equivalent explicit
//! builder instance run through the dispatcher.

use gt_sketch::streams::{
    encode_sketch, run_expression_scenario, run_live_query_scenario, run_resilient_scenario,
    run_scenario, run_spec_on, Distribution, IngestMode, Party, Referee, RetryPolicy,
    ScenarioOutcome, ScenarioSpec, TransportSpec, WorkloadSpec,
};
use gt_sketch::{SetExpr, SketchConfig};

fn workload(parties: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        parties,
        distinct_per_party: 3_000,
        overlap: 0.4,
        items_per_party: 9_000,
        distribution: Distribution::Uniform,
        seed,
    }
}

/// The pre-refactor classic semantics, re-derived by hand: every party
/// observes its stream with the shared master seed and ships one
/// message; the referee unions them. Returns the canonical union bytes
/// and the estimate — the bitwise witnesses every engine must match.
fn hand_rolled_union(
    config: &SketchConfig,
    master_seed: u64,
    streams: &gt_sketch::streams::StreamSet,
) -> (bytes::Bytes, f64) {
    let mut referee = Referee::new(config, master_seed);
    for (id, stream) in streams.streams.iter().enumerate() {
        let mut party = Party::new(id, config, master_seed);
        party.observe_stream(stream);
        referee.receive(&party.finish()).expect("clean delivery");
    }
    (
        encode_sketch(referee.union_sketch()),
        referee.estimate_distinct().value,
    )
}

#[test]
fn classic_wrapper_is_pinned_to_its_builder_instance() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let streams = workload(5, 0xC1A_551C).generate();
    let (canonical, estimate) = hand_rolled_union(&config, 7, &streams);

    // The legacy entry point (threaded pipeline, batched referee) must
    // land on the same referee state: estimate compared bitwise.
    let legacy = run_scenario(&config, 7, &streams);
    assert_eq!(legacy.estimate.to_bits(), estimate.to_bits());

    // The explicit builder instance through the dispatcher — both the
    // threaded mode the wrapper uses and the fully deterministic
    // sequential mode — pin the same state.
    for ingest in [IngestMode::PerPartyThreads, IngestMode::Sequential] {
        let spec = ScenarioSpec::builder("classic-pin")
            .from_workload(&streams.spec)
            .ingest(ingest)
            .build();
        let ScenarioOutcome::Classic(report) = run_spec_on(&config, 7, &spec, Some(&streams))
        else {
            panic!("classic spec must dispatch to the classic engine");
        };
        assert_eq!(report.estimate.to_bits(), estimate.to_bits(), "{ingest:?}");
        assert_eq!(report.truth, legacy.truth);
        assert_eq!(report.total_bytes, legacy.total_bytes);
        assert_eq!(report.bytes_per_party, legacy.bytes_per_party);
        assert_eq!(
            report.referee_telemetry.accepted,
            legacy.referee_telemetry.accepted
        );
    }
    assert!(!canonical.is_empty());
}

#[test]
fn resilient_wrapper_is_pinned_to_its_builder_instance() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let streams = workload(6, 0x2E51).generate();
    let transport = TransportSpec {
        jitter: 1,
        straggle_probability: 0.0,
        ..TransportSpec::lossy(0.3, 0xBAD5EED)
    };
    let policy = RetryPolicy::with_budget(5);

    let legacy = run_resilient_scenario(&config, 11, &streams, transport, policy);
    let spec = ScenarioSpec::builder("resilient-pin")
        .from_workload(&streams.spec)
        .transport(transport)
        .retry(policy)
        .build();
    let ScenarioOutcome::Resilient(report) = run_spec_on(&config, 11, &spec, Some(&streams)) else {
        panic!("transport spec must dispatch to the resilient engine");
    };

    // The whole collection plane runs on the seeded virtual clock, so
    // every counter — not just the estimate — must replay bitwise.
    assert_eq!(
        report.partial.estimate.value.to_bits(),
        legacy.partial.estimate.value.to_bits()
    );
    assert_eq!(report.partial.parties_heard, legacy.partial.parties_heard);
    assert_eq!(report.full_truth, legacy.full_truth);
    assert_eq!(report.received_truth, legacy.received_truth);
    assert_eq!(report.collection.rounds, legacy.collection.rounds);
    assert_eq!(report.collection.retransmits, legacy.collection.retransmits);
    assert_eq!(
        report.collection.late_arrivals,
        legacy.collection.late_arrivals
    );
    assert_eq!(report.collection.transport, legacy.collection.transport);

    // And against the hand-rolled reference: a reliable-channel run of
    // the same spec recovers the exact pre-refactor union.
    let (canonical, estimate) = hand_rolled_union(&config, 11, &streams);
    let clean = run_resilient_scenario(
        &config,
        11,
        &streams,
        TransportSpec::reliable(1),
        RetryPolicy::one_shot(),
    );
    assert!(clean.partial.is_complete());
    assert_eq!(clean.partial.estimate.value.to_bits(), estimate.to_bits());
    assert!(!canonical.is_empty());
}

#[test]
fn expression_wrapper_is_pinned_to_its_builder_instance() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let streams = workload(4, 0xE4B).generate();
    let (a, b, c) = (SetExpr::leaf(0), SetExpr::leaf(1), SetExpr::leaf(2));
    let queries = [
        a.clone().union(b.clone()),
        a.clone().intersect(c.clone()).difference(b.clone()),
    ];
    let jaccard = [(a.clone().union(b.clone()), c.clone())];

    let legacy = run_expression_scenario(&config, 13, &streams, &queries, &jaccard);
    let spec = ScenarioSpec::builder("expression-pin")
        .from_workload(&streams.spec)
        .query_expr(queries[0].clone())
        .query_expr(queries[1].clone())
        .query_jaccard(jaccard[0].0.clone(), jaccard[0].1.clone())
        .build();
    let ScenarioOutcome::Expression(report) = run_spec_on(&config, 13, &spec, Some(&streams))
    else {
        panic!("expression queries must dispatch to the expression engine");
    };

    assert_eq!(report.queries.len(), legacy.queries.len());
    for (got, want) in report.queries.iter().zip(&legacy.queries) {
        assert_eq!(got.expr, want.expr);
        assert_eq!(
            got.answer.estimate.value.to_bits(),
            want.answer.estimate.value.to_bits()
        );
        assert_eq!(got.truth, want.truth);
        assert_eq!(got.scaled_error.to_bits(), want.scaled_error.to_bits());
    }
    assert_eq!(report.jaccard_queries.len(), 1);
    assert_eq!(
        report.jaccard_queries[0].answer.jaccard.to_bits(),
        legacy.jaccard_queries[0].answer.jaccard.to_bits()
    );
}

#[test]
fn live_wrapper_is_pinned_to_its_builder_instance() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let streams = workload(4, 0x11FE).generate();

    let legacy = run_live_query_scenario(&config, 17, &streams, 800);
    let spec = ScenarioSpec::builder("live-pin")
        .from_workload(&streams.spec)
        .ingest(IngestMode::SharedConcurrent {
            writer_threshold: 800,
        })
        .build();
    let ScenarioOutcome::Live(report) = run_spec_on(&config, 17, &spec, Some(&streams)) else {
        panic!("shared-concurrent ingest must dispatch to the live engine");
    };

    // Mid-flight samples are schedule-shaped, but the final state is
    // schedule-independent: interleaving-independence pins the converged
    // estimate bitwise, and both runs must serve monotone snapshots.
    assert_eq!(
        report.final_estimate.to_bits(),
        legacy.final_estimate.to_bits()
    );
    assert_eq!(report.truth, legacy.truth);
    assert_eq!(report.total_items, legacy.total_items);
    assert!(report.monotone && legacy.monotone);

    // And the converged state equals the hand-rolled sequential union of
    // the same streams under the same master seed — the invariant the
    // pre-refactor runner asserted.
    let mut sequential = gt_sketch::DistinctSketch::new(&config, 17);
    for stream in &streams.streams {
        sequential.extend_slice(stream);
    }
    assert_eq!(
        report.final_estimate.to_bits(),
        sequential.estimate_distinct().value.to_bits()
    );
}
