//! Per-key differential oracle for the keyed store
//! ([`gt_sketch::store::SketchStore`]): for any interleaved keyed stream —
//! including evict/restore and pin/demote cycles mid-stream — every key's
//! store-resident sketch must be **bitwise identical** (canonical wire
//! bytes) to a standalone [`gt_sketch::DistinctSketch`] fed that key's
//! labels in arrival order. Same harness shape as
//! `concurrent_equivalence.rs`: a proptest over deterministic seeded
//! streams plus targeted non-prop cycles, and count/ordering assertions
//! only (no wall-clock) per the de-flake rule.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::store::{DistinctStore, SketchStore, StoreOptions};
use gt_sketch::streams::encode_sketch;
use gt_sketch::{fold61, DistinctSketch, GtSketch, SketchConfig};

const SEED: u64 = 0xBEE5;

/// Small capacity + trials so level promotions, slot-class promotions and
/// fold/writeback cycles all fire on small inputs.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

/// Standalone oracle over a key's labels (already folded into the field).
fn standalone_for(key: u64, items: &[(u64, u64)], config: &SketchConfig) -> DistinctSketch {
    let mut s = DistinctSketch::new(config, SEED);
    s.extend_labels(items.iter().filter(|&&(k, _)| k == key).map(|&(_, l)| l));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaved keyed stream, any tier churn: budgets small enough
    /// to force evictions mid-stream, hot thresholds low enough to force
    /// pins, and epoch advances at every checkpoint to force front
    /// refreshes and demotions. At each checkpoint the key that was just
    /// touched must match its standalone sketch bitwise; at the end every
    /// key must.
    #[test]
    fn interleaved_keyed_streams_match_standalone_sketches(
        pairs in vec((0u64..24, 0u64..2_000), 1..500),
        budget in prop_oneof![Just(2usize << 10), Just(16usize << 10), Just(64usize << 20)],
        hot_threshold in prop_oneof![Just(0u32), Just(24u32), Just(u32::MAX)],
        shards in 1usize..4,
    ) {
        let config = small_config();
        let options = StoreOptions::default()
            .with_shards(shards)
            .with_byte_budget(budget)
            .with_hot_threshold(hot_threshold)
            .with_epoch_items(0); // epochs advance only at checkpoints
        let store = DistinctStore::new(&config, SEED, options).unwrap();
        let folded: Vec<(u64, u64)> = pairs.iter().map(|&(k, l)| (k, fold61(l))).collect();

        let checkpoint = 96usize;
        for (i, chunk) in folded.chunks(checkpoint).enumerate() {
            store.extend(chunk).unwrap();
            store.advance_epoch();
            // The key touched last this chunk must already be exact.
            let key = chunk.last().unwrap().0;
            let upto = (i * checkpoint + chunk.len()).min(folded.len());
            let mut expect = DistinctSketch::new(&config, SEED);
            expect.extend_labels(
                folded[..upto].iter().filter(|&&(k, _)| k == key).map(|&(_, l)| l),
            );
            let got = store.canonical_bytes(key).unwrap().unwrap();
            let want = encode_sketch(&expect);
            prop_assert_eq!(
                got.as_ref(),
                want.as_ref(),
                "checkpoint {} key {} diverged",
                i,
                key
            );
        }

        // Every key, whatever tier it ended up in.
        for key in 0..24u64 {
            let seen = folded.iter().any(|&(k, _)| k == key);
            let bytes = store.canonical_bytes(key).unwrap();
            prop_assert_eq!(bytes.is_some(), seen);
            if let Some(bytes) = bytes {
                let mut expect = DistinctSketch::new(&config, SEED);
                expect.extend_labels(
                    folded.iter().filter(|&&(k, _)| k == key).map(|&(_, l)| l),
                );
                let want = encode_sketch(&expect);
                prop_assert_eq!(
                    bytes.as_ref(),
                    want.as_ref(),
                    "final state of key {} diverged",
                    key
                );
                prop_assert_eq!(
                    store.estimate(key).unwrap().unwrap().value.to_bits(),
                    expect.estimate_distinct().value.to_bits()
                );
            }
        }

        // The store accounted for exactly the ingested items.
        let snap = store.metrics_snapshot();
        prop_assert_eq!(snap.items, folded.len() as u64);
        prop_assert_eq!(
            snap.resident_keys + snap.pinned_keys + snap.spilled_keys,
            snap.keys
        );
    }
}

/// Deterministic evict/restore churn: a budget that holds only a fraction
/// of the key set, revisited in rounds so most keys cycle disk → memory →
/// disk repeatedly. Invariants are counts and bitwise state only.
#[test]
fn evict_restore_cycles_are_bitwise_lossless() {
    let config = small_config();
    let options = StoreOptions::default()
        .with_shards(2)
        .with_byte_budget(12 << 10)
        .with_hot_threshold(0); // everything stays in the packed tier
    let store = DistinctStore::new(&config, SEED, options).unwrap();

    let keys = 400u64;
    let mut items: Vec<(u64, u64)> = Vec::new();
    for round in 0..5u64 {
        for key in 0..keys {
            for j in 0..3u64 {
                items.push((key, fold61(key * 7_919 + round * 100 + j)));
            }
        }
    }
    store.extend(&items).unwrap();

    let snap = store.metrics_snapshot();
    assert!(snap.evictions > 0, "budget never forced an eviction");
    assert!(snap.restores > 0, "revisited keys never restored");
    assert!(
        snap.resident_bytes <= snap.budget_bytes,
        "resident {} exceeds budget {}",
        snap.resident_bytes,
        snap.budget_bytes
    );
    // Spill records only ever accumulate (append-only log).
    assert!(snap.spilled_bytes >= snap.restored_bytes);

    for key in 0..keys {
        let got = store.canonical_bytes(key).unwrap().unwrap();
        let expect = standalone_for(key, &items, &config);
        assert_eq!(
            got.as_ref(),
            encode_sketch(&expect).as_ref(),
            "key {key} diverged after evict/restore churn"
        );
    }
}

/// Payload-carrying keys through the full tier churn: keep-first `u64`
/// payloads with duplicate labels must reconcile exactly as a standalone
/// merging sketch does, across delta replay, spill, and restore.
#[test]
fn payload_keys_survive_tier_churn_bitwise() {
    let config = small_config();
    let options = StoreOptions::default()
        .with_shards(2)
        .with_byte_budget(6 << 10)
        .with_hot_threshold(64);
    let store = SketchStore::<u64>::new(&config, SEED, options).unwrap();

    let mut items: Vec<(u64, u64, u64)> = Vec::new();
    for i in 0..12_000u64 {
        // 60 keys, heavy label duplication so payload reconciliation fires
        // constantly; payload encodes arrival index so keep-first order is
        // observable on the wire.
        items.push((i % 60, fold61(i % 300), i + 1));
    }
    store.extend_with(&items).unwrap();

    let snap = store.metrics_snapshot();
    assert!(snap.evictions > 0, "payload keys never spilled");

    for key in 0..60u64 {
        let mut expect = GtSketch::<u64>::new(&config, SEED);
        for &(k, l, p) in &items {
            if k == key {
                expect.insert_merging_with(l, p);
            }
        }
        assert_eq!(
            store.canonical_bytes(key).unwrap().unwrap().as_ref(),
            encode_sketch(&expect).as_ref(),
            "payload key {key} diverged"
        );
    }
}

/// Concurrent multi-writer keyed ingest: per-key label sets are
/// interleaving-independent, so whatever schedule the OS provides, every
/// key must still match a standalone sketch over its labels.
#[test]
fn threaded_keyed_ingest_matches_standalone() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 8_000;
    let config = small_config();
    let options = StoreOptions::default()
        .with_byte_budget(48 << 10)
        .with_hot_threshold(256);
    let store = DistinctStore::new(&config, SEED, options).unwrap();

    crossbeam::scope(|scope| {
        for w in 0..WRITERS {
            let store = &store;
            scope.spawn(move |_| {
                let items: Vec<(u64, u64)> = (0..PER_WRITER)
                    .map(|i| ((i.wrapping_mul(11) + w) % 131, fold61(w * PER_WRITER + i)))
                    .collect();
                store.extend(&items).unwrap();
            });
        }
    })
    .unwrap();

    let snap = store.metrics_snapshot();
    assert_eq!(snap.items, WRITERS * PER_WRITER, "items lost or duplicated");

    for key in (0..131u64).step_by(17) {
        let mut expect = DistinctSketch::new(&config, SEED);
        for w in 0..WRITERS {
            expect.extend_labels(
                (0..PER_WRITER)
                    .filter(|i| (i.wrapping_mul(11) + w) % 131 == key)
                    .map(|i| fold61(w * PER_WRITER + i)),
            );
        }
        assert_eq!(
            store.canonical_bytes(key).unwrap().unwrap().as_ref(),
            encode_sketch(&expect).as_ref(),
            "key {key} diverged under concurrent ingest"
        );
    }
}
