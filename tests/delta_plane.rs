//! Property tests for the incremental delta plane: under **any**
//! delivery schedule — duplicated frames, reordered frames, dropped
//! frames with later retransmits, lost acks, and mid-stream resyncs —
//! the referee's incrementally maintained live union must stay
//! canonical-bytes identical to a clean one-shot full ship of every
//! party's final state. This is the delta protocol's whole contract
//! made executable: if it breaks, steady-state delta frames silently
//! diverge from the paper's send-everything-once semantics.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::streams::{encode_full_frame, encode_sketch, DeltaParty, PartyMessage, Receipt, RefereeOf};
use gt_sketch::SketchConfig;

/// Small capacities + trials so level promotions (and therefore
/// level-raise notices inside delta frames) happen on small inputs.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const MASTER_SEED: u64 = 0xD1_7A;

/// Drive `parties` through their observation batches against one live
/// referee, with the frame traffic scheduled adversarially from
/// `schedule`: steps interleave observe+emit, in-flight delivery in
/// random order (reordering), true drops, duplicate redeliveries, and
/// 25% ack loss. Returns the referee once every party's final
/// generation is acked.
fn run_schedule(
    batches: &[Vec<Vec<u64>>],
    mut schedule: u64,
) -> (RefereeOf<()>, Vec<DeltaParty<()>>) {
    let config = small_config();
    let mut referee: RefereeOf<()> = RefereeOf::new(&config, MASTER_SEED);
    let mut parties: Vec<DeltaParty<()>> = (0..batches.len())
        .map(|id| DeltaParty::new(id, &config, MASTER_SEED))
        .collect();
    let mut next_batch: Vec<usize> = vec![0; batches.len()];
    let mut in_flight: Vec<PartyMessage> = Vec::new();
    let mut delivered: Vec<PartyMessage> = Vec::new();

    let deliver = |msg: PartyMessage,
                       referee: &mut RefereeOf<()>,
                       parties: &mut Vec<DeltaParty<()>>,
                       in_flight: &mut Vec<PartyMessage>,
                       delivered: &mut Vec<PartyMessage>,
                       drop_ack: bool| {
        let pid = msg.party_id;
        match referee.receive_frame(&msg).expect("well-formed frame") {
            Receipt::Merged | Receipt::MergedVariant | Receipt::Duplicate => {
                if !drop_ack {
                    if let Some(g) = referee.acked_generation(pid) {
                        parties[pid].handle_ack(g);
                    }
                }
            }
            Receipt::NeedResync => {
                // The referee lost this frame's base: the party falls
                // back to a full frame from scratch.
                parties[pid].handle_resync();
                in_flight.push(parties[pid].emit_frame());
            }
        }
        delivered.push(msg);
    };

    for _ in 0..2_000 {
        let all_observed = next_batch
            .iter()
            .zip(batches)
            .all(|(&n, b)| n == b.len());
        let all_acked = parties
            .iter()
            .all(|p| p.acked_generation() == Some(p.generation()) || p.generation() == 0);
        if all_observed && all_acked && in_flight.is_empty() {
            break;
        }
        match splitmix(&mut schedule) % 8 {
            // Observe the next batch somewhere and emit a frame.
            0 | 1 | 2 => {
                let ready: Vec<usize> = (0..parties.len())
                    .filter(|&p| next_batch[p] < batches[p].len())
                    .collect();
                if let Some(&pid) =
                    ready.get(splitmix(&mut schedule) as usize % ready.len().max(1))
                {
                    for &label in &batches[pid][next_batch[pid]] {
                        parties[pid].observe_with(gt_sketch::fold61(label), ());
                    }
                    next_batch[pid] += 1;
                    in_flight.push(parties[pid].emit_frame());
                }
            }
            // Deliver a random in-flight frame (random order = reorder),
            // sometimes losing the ack on the return path.
            3 | 4 | 5 => {
                if !in_flight.is_empty() {
                    let i = splitmix(&mut schedule) as usize % in_flight.len();
                    let msg = in_flight.swap_remove(i);
                    let drop_ack = splitmix(&mut schedule) % 4 == 0;
                    deliver(
                        msg,
                        &mut referee,
                        &mut parties,
                        &mut in_flight,
                        &mut delivered,
                        drop_ack,
                    );
                }
            }
            // Redeliver an already-delivered frame (duplicate).
            6 => {
                if !delivered.is_empty() {
                    let i = splitmix(&mut schedule) as usize % delivered.len();
                    let msg = delivered[i].clone();
                    deliver(
                        msg,
                        &mut referee,
                        &mut parties,
                        &mut in_flight,
                        &mut delivered,
                        true,
                    );
                }
            }
            // Drop an in-flight frame outright: later cumulative deltas
            // (coded against the last *acked* base) cover its changes.
            _ => {
                if !in_flight.is_empty() {
                    let i = splitmix(&mut schedule) as usize % in_flight.len();
                    in_flight.swap_remove(i);
                }
            }
        }
    }

    // Drain: finish observations, then deliver (acking faithfully) and
    // re-emit until every party's final generation is acked.
    for pid in 0..parties.len() {
        while next_batch[pid] < batches[pid].len() {
            for &label in &batches[pid][next_batch[pid]] {
                parties[pid].observe_with(gt_sketch::fold61(label), ());
            }
            next_batch[pid] += 1;
        }
    }
    for _ in 0..200 {
        if let Some(msg) = in_flight.pop() {
            deliver(
                msg,
                &mut referee,
                &mut parties,
                &mut in_flight,
                &mut delivered,
                false,
            );
            continue;
        }
        let Some(pid) = (0..parties.len()).find(|&p| {
            parties[p].generation() > 0
                && parties[p].acked_generation() != Some(parties[p].generation())
        }) else {
            break;
        };
        in_flight.push(parties[pid].emit_frame());
    }
    for p in &parties {
        assert!(
            p.generation() == 0 || p.acked_generation() == Some(p.generation()),
            "drain must converge (party {} at gen {} acked {:?})",
            p.id(),
            p.generation(),
            p.acked_generation()
        );
    }
    (referee, parties)
}

/// One clean full ship of each party's final state into a fresh referee.
fn one_shot_full_ship(parties: &[DeltaParty<()>]) -> RefereeOf<()> {
    let mut fresh: RefereeOf<()> = RefereeOf::new(&small_config(), MASTER_SEED);
    for p in parties {
        let msg = PartyMessage {
            party_id: p.id(),
            payload: encode_full_frame(p.sketch(), 1),
            items_observed: p.sketch().items_observed(),
        };
        let receipt = fresh.receive_frame(&msg).expect("clean full frame");
        assert!(matches!(receipt, Receipt::Merged));
    }
    fresh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any dup/reorder/drop/resync schedule leaves the live union
    /// canonical-bytes identical to a clean one-shot full ship.
    #[test]
    fn any_delivery_schedule_preserves_the_live_union(
        batches in vec(vec(vec(0u64..3_000, 0..120), 1..6), 1..4),
        schedule in any::<u64>(),
    ) {
        let (live, parties) = run_schedule(&batches, schedule);
        let fresh = one_shot_full_ship(&parties);
        prop_assert_eq!(
            encode_sketch(live.union_sketch()),
            encode_sketch(fresh.union_sketch())
        );
        // Exactly-once accounting survives the schedule too.
        let live_items: u64 = parties.iter().map(|p| p.sketch().items_observed()).sum();
        prop_assert_eq!(live.items_reported(), live_items);
    }

    /// Forcing traffic through the resync path (the referee forgets a
    /// party between frames) still converges to the clean union.
    #[test]
    fn resync_after_referee_amnesia_recovers_exactly(
        rounds in vec(vec(0u64..2_000, 1..150), 2..5),
        schedule in any::<u64>(),
    ) {
        let config = small_config();
        let mut schedule = schedule;
        let mut live: RefereeOf<()> = RefereeOf::new(&config, MASTER_SEED);
        let mut party: DeltaParty<()> = DeltaParty::new(0, &config, MASTER_SEED);
        for round in &rounds {
            for &label in round {
                party.observe_with(gt_sketch::fold61(label), ());
            }
            let msg = party.emit_frame();
            // Half the time the frame is lost before the referee sees it.
            if splitmix(&mut schedule) % 2 == 0 {
                continue;
            }
            match live.receive_frame(&msg).expect("well-formed frame") {
                Receipt::Merged | Receipt::MergedVariant | Receipt::Duplicate => {
                    if let Some(g) = live.acked_generation(0) {
                        party.handle_ack(g);
                    }
                }
                Receipt::NeedResync => {
                    party.handle_resync();
                    let full = party.emit_frame();
                    prop_assert!(matches!(
                        live.receive_frame(&full).expect("full resync frame"),
                        Receipt::Merged
                    ));
                    if let Some(g) = live.acked_generation(0) {
                        party.handle_ack(g);
                    }
                }
            }
        }
        // Final flush so the live union covers everything observed.
        loop {
            let msg = party.emit_frame();
            match live.receive_frame(&msg).expect("well-formed frame") {
                Receipt::Merged | Receipt::MergedVariant | Receipt::Duplicate => {
                    if let Some(g) = live.acked_generation(0) {
                        party.handle_ack(g);
                    }
                    break;
                }
                Receipt::NeedResync => party.handle_resync(),
            }
        }
        let fresh = one_shot_full_ship(std::slice::from_ref(&party));
        prop_assert_eq!(
            encode_sketch(live.union_sketch()),
            encode_sketch(fresh.union_sketch())
        );
    }
}
