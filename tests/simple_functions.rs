//! Integration tests for the "simple functions" beyond plain counting:
//! SumDistinct, predicate restriction, fractions, similarity — all checked
//! against the exact oracle on generated workloads.

use gt_sketch::streams::{Distribution, StreamOracle, WorkloadSpec};
use gt_sketch::{merge_all, similarity, DistinctSketch, SketchConfig, SumDistinctSketch};

fn workload(parties: usize, overlap: f64) -> WorkloadSpec {
    WorkloadSpec {
        parties,
        distinct_per_party: 15_000,
        overlap,
        items_per_party: 50_000,
        distribution: Distribution::Zipf(1.0),
        seed: 0xF00D,
    }
}

#[test]
fn sumdistinct_across_parties_matches_oracle() {
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let set = workload(5, 0.4).generate();
    let value_of = |l: u64| l % 10 + 1;

    let sketches: Vec<SumDistinctSketch> = set
        .streams
        .iter()
        .map(|s| {
            let mut sk = SumDistinctSketch::new(&config, 0xC1);
            for &l in s {
                sk.insert(l, value_of(l));
            }
            sk
        })
        .collect();
    let union = merge_all(&sketches).unwrap();

    let oracle = StreamOracle::of_streams(set.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.sum_distinct(value_of) as f64;
    let est = union.estimate_sum().value;
    let rel = (est - truth).abs() / truth;
    // Values in [1,10]: modest inflation over the base ε.
    assert!(rel < 0.15, "sum est {est} truth {truth} rel {rel}");
}

#[test]
fn predicate_counts_match_oracle() {
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let set = workload(4, 0.25).generate();
    let mut union = DistinctSketch::new(&config, 0xC2);
    for s in &set.streams {
        union.extend_labels(s.iter().copied());
    }
    let oracle = StreamOracle::of_streams(set.streams.iter().map(|s| s.as_slice()));

    for modulus in [2u64, 5, 16] {
        let pred = move |l: u64| l.is_multiple_of(modulus);
        let est = union.estimate_distinct_where(pred).value;
        let truth = oracle.distinct_where(pred) as f64;
        let total = oracle.distinct() as f64;
        // Additive guarantee: |est − truth| ≤ ε · F0(total).
        assert!(
            (est - truth).abs() <= 2.0 * 0.05 * total,
            "mod {modulus}: est {est} truth {truth}"
        );
    }
}

#[test]
fn fraction_estimator_tracks_population_share() {
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let set = workload(3, 0.0).generate();
    let mut union = DistinctSketch::new(&config, 0xC3);
    for s in &set.streams {
        union.extend_labels(s.iter().copied());
    }
    let frac = union.estimate_fraction_where(|l| l % 4 != 0);
    assert!((frac - 0.75).abs() < 0.05, "frac {frac}");
}

#[test]
fn similarity_matches_oracle_on_generated_streams() {
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let set = workload(2, 0.5).generate();
    let mut a = DistinctSketch::new(&config, 0xC4);
    let mut b = DistinctSketch::new(&config, 0xC4);
    a.extend_labels(set.streams[0].iter().copied());
    b.extend_labels(set.streams[1].iter().copied());

    let oa = StreamOracle::of_streams([set.streams[0].as_slice()]);
    let ob = StreamOracle::of_streams([set.streams[1].as_slice()]);

    let sim = similarity(&a, &b).unwrap();
    let true_inter = oa.intersection(&ob) as f64;
    let true_jaccard = oa.jaccard(&ob);

    assert!(
        (sim.intersection - true_inter).abs() / true_inter < 0.2,
        "∩ est {} truth {true_inter}",
        sim.intersection
    );
    assert!(
        (sim.jaccard - true_jaccard).abs() < 0.05,
        "J est {} truth {true_jaccard}",
        sim.jaccard
    );
}

#[test]
fn distinct_sample_supports_posthoc_estimators() {
    // Build a union sketch, pull the distinct sample, estimate an
    // aggregate that was never designed into the sketch: the number of
    // distinct labels whose value digit-sum is even.
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let set = workload(4, 0.3).generate();
    let mut union = DistinctSketch::new(&config, 0xC5);
    for s in &set.streams {
        union.extend_labels(s.iter().copied());
    }
    let oracle = StreamOracle::of_streams(set.streams.iter().map(|s| s.as_slice()));

    let digit_sum_even = |l: u64| {
        let mut s = 0u64;
        let mut x = l;
        while x > 0 {
            s += x % 10;
            x /= 10;
        }
        s.is_multiple_of(2)
    };

    let sample = union.distinct_sample(0);
    let est = sample.estimate_sum(|l| if digit_sum_even(l) { 1.0 } else { 0.0 });
    let truth = oracle.distinct_where(digit_sum_even) as f64;
    let rel = (est - truth).abs() / truth;
    // Single-trial HT estimate: loose but must be in the ballpark.
    assert!(rel < 0.3, "est {est} truth {truth} rel {rel}");
}

#[test]
fn weighted_predicate_composition() {
    // Σ value over distinct labels in a sub-population, across parties.
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let set = workload(3, 0.5).generate();
    let value_of = |l: u64| l % 7 + 1;
    let sketches: Vec<SumDistinctSketch> = set
        .streams
        .iter()
        .map(|s| {
            let mut sk = SumDistinctSketch::new(&config, 0xC6);
            for &l in s {
                sk.insert(l, value_of(l));
            }
            sk
        })
        .collect();
    let union = merge_all(&sketches).unwrap();
    let oracle = StreamOracle::of_streams(set.streams.iter().map(|s| s.as_slice()));

    let pred = |l: u64| l.is_multiple_of(3);
    let est = union.inner().estimate_weighted_where(pred, |_, v| v as f64);
    let truth: u64 = oracle.sum_distinct(|l| if pred(l) { value_of(l) } else { 0 });
    let rel = (est - truth as f64).abs() / truth as f64;
    assert!(rel < 0.2, "est {est} truth {truth} rel {rel}");
}
