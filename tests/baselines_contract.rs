//! Cross-crate contract tests for the baseline estimators: every mergeable
//! baseline must be duplicate-insensitive and union-correct, and every
//! estimator must be calibrated at scale — the preconditions for the E6
//! comparison to be fair.

use gt_sketch::baselines::{
    DistinctCounter, ExactDistinct, HyperLogLog, KmvSketch, LinearCounter, LogLogSketch,
    PcsaSketch, ReservoirSample,
};
use gt_sketch::{DistinctSketch, Mergeable, SketchConfig};

fn labels(range: std::ops::Range<u64>) -> Vec<u64> {
    range.map(gt_sketch::fold61).collect()
}

/// Generic calibration check at n = 100k.
fn assert_calibrated<C: DistinctCounter>(mut c: C, tolerance: f64) {
    let n = 100_000u64;
    c.extend_labels(labels(0..n));
    let rel = (c.estimate() - n as f64).abs() / n as f64;
    assert!(
        rel < tolerance,
        "{}: estimate {} rel {rel}",
        c.name(),
        c.estimate()
    );
}

#[test]
fn all_estimators_are_calibrated_at_scale() {
    assert_calibrated(ExactDistinct::new(), 1e-12);
    assert_calibrated(PcsaSketch::new(256, 1), 0.2);
    assert_calibrated(LogLogSketch::new(512, 2), 0.25);
    assert_calibrated(HyperLogLog::new(1024, 6), 0.15);
    assert_calibrated(LinearCounter::new(1 << 20, 3), 0.05);
    assert_calibrated(KmvSketch::new(1024, 4), 0.15);
    assert_calibrated(
        DistinctSketch::new(&SketchConfig::new(0.1, 0.05).unwrap(), 5),
        0.1,
    );
}

/// Generic union check: merge(a, b) must equal one observer of both
/// streams, estimator-exactly.
fn assert_union_correct<C: DistinctCounter + Mergeable + Clone>(make: impl Fn() -> C) {
    let (mut a, mut b, mut whole) = (make(), make(), make());
    let la = labels(0..30_000);
    let lb = labels(15_000..45_000);
    a.extend_labels(la.iter().copied());
    b.extend_labels(lb.iter().copied());
    whole.extend_labels(la.iter().copied());
    whole.extend_labels(lb.iter().copied());
    a.merge_from(&b).unwrap();
    assert_eq!(a.estimate(), whole.estimate(), "{} union broken", a.name());
}

#[test]
fn mergeable_baselines_union_like_single_observers() {
    assert_union_correct(ExactDistinct::new);
    assert_union_correct(|| PcsaSketch::new(128, 7));
    assert_union_correct(|| LogLogSketch::new(128, 8));
    assert_union_correct(|| HyperLogLog::new(128, 18));
    assert_union_correct(|| LinearCounter::new(1 << 18, 9));
    assert_union_correct(|| KmvSketch::new(512, 10));
    assert_union_correct(|| DistinctSketch::new(&SketchConfig::new(0.1, 0.1).unwrap(), 11));
}

/// Generic duplicate-insensitivity check.
fn assert_duplicate_insensitive<C: DistinctCounter>(make: impl Fn() -> C) {
    let (mut once, mut many) = (make(), make());
    let l = labels(0..20_000);
    once.extend_labels(l.iter().copied());
    for _ in 0..5 {
        many.extend_labels(l.iter().copied());
    }
    assert_eq!(once.estimate(), many.estimate(), "{}", once.name());
}

#[test]
fn sketches_are_duplicate_insensitive_but_reservoir_is_not() {
    assert_duplicate_insensitive(ExactDistinct::new);
    assert_duplicate_insensitive(|| PcsaSketch::new(128, 12));
    assert_duplicate_insensitive(|| LogLogSketch::new(128, 13));
    assert_duplicate_insensitive(|| HyperLogLog::new(128, 19));
    assert_duplicate_insensitive(|| LinearCounter::new(1 << 18, 14));
    assert_duplicate_insensitive(|| KmvSketch::new(512, 15));
    assert_duplicate_insensitive(|| DistinctSketch::new(&SketchConfig::new(0.1, 0.1).unwrap(), 16));

    // The strawman: duplication inflates the naive reservoir estimate.
    let l = labels(0..2_000);
    let mut once = ReservoirSample::new(500, 17);
    once.extend_labels(l.iter().copied());
    let mut many = ReservoirSample::new(500, 17);
    for _ in 0..20 {
        many.extend_labels(l.iter().copied());
    }
    assert!(
        many.estimate() > 5.0 * once.estimate(),
        "naive reservoir should blow up: {} vs {}",
        many.estimate(),
        once.estimate()
    );
}

#[test]
fn equal_space_accuracy_ranking_is_sane() {
    // At roughly equal space, every log-space sketch must beat the naive
    // reservoir on a duplicate-heavy stream; this is the qualitative shape
    // E6 quantifies.
    let universe = labels(0..50_000);
    let mut stream = Vec::with_capacity(500_000);
    for i in 0..500_000usize {
        stream.push(universe[(i * 7919) % universe.len()]);
    }
    let truth = 50_000.0;

    let mut gt = DistinctSketch::new(
        &SketchConfig::from_shape(0.1, 0.05, 512, 9, gt_sketch::HashFamilyKind::Pairwise).unwrap(),
        20,
    );
    let mut kmv = KmvSketch::new(4096, 21);
    let mut pcsa = PcsaSketch::new(4096, 22);
    let mut res = ReservoirSample::new(4096, 23);
    for &l in &stream {
        DistinctCounter::insert(&mut gt, l);
        kmv.insert(l);
        pcsa.insert(l);
        res.insert(l);
    }
    let rel = |e: f64| (e - truth).abs() / truth;
    assert!(
        rel(DistinctCounter::estimate(&gt)) < 0.15,
        "gt {}",
        DistinctCounter::estimate(&gt)
    );
    assert!(rel(kmv.estimate()) < 0.15, "kmv {}", kmv.estimate());
    assert!(rel(pcsa.estimate()) < 0.25, "pcsa {}", pcsa.estimate());
    assert!(
        rel(res.estimate()) > 1.0,
        "reservoir should be far off: {}",
        res.estimate()
    );
}

#[test]
fn exact_oracle_agrees_with_streams_oracle() {
    // Two independent ground-truth implementations must agree.
    let l = labels(0..5_000);
    let mut doubled = l.clone();
    doubled.extend_from_slice(&l);
    let mut exact = ExactDistinct::new();
    exact.extend_labels(doubled.iter().copied());
    let oracle = gt_sketch::streams::StreamOracle::of_streams([doubled.as_slice()]);
    assert_eq!(exact.count(), oracle.distinct());
}
