//! Differential harness for the concurrent serving path
//! ([`gt_sketch::ConcurrentSketch`]): whatever the writer count, buffer
//! threshold, or interleaving, the merged state must be **bitwise
//! identical** (canonical wire bytes) to a single sequential observer of
//! the same multiset — coordinated sampling makes the final state
//! interleaving-independent, so any divergence is a propagation bug, not
//! noise.
//!
//! Two layers:
//!
//! * a proptest over *deterministic seeded schedules*: ops are dealt
//!   round-robin to N in-process writer handles with checkpoint flushes,
//!   so every interleaving decision is a pure function of the case seed
//!   and failures replay exactly (persisted to
//!   `concurrent_equivalence.proptest-regressions`);
//! * a real-thread N-writer / M-reader stress test where the schedule is
//!   whatever the OS provides, readers continuously validate snapshot
//!   monotonicity, and only the final state is compared bitwise.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::streams::encode_sketch;
use gt_sketch::{fold61, ConcurrentSketch, DistinctSketch, SketchConfig};

const SEED: u64 = 0xC0_FFEE;

/// Small capacity + trials so level promotions happen on small inputs and
/// the propagation path has to carry real subsampling decisions.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

fn sequential_over(labels: &[u64], config: &SketchConfig) -> DistinctSketch {
    let mut s = DistinctSketch::new(config, SEED);
    s.extend_labels(labels.iter().map(|&l| fold61(l)));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deterministic-schedule differential test. Labels are dealt
    /// round-robin across `writers` handles with a small propagation
    /// threshold, and at every checkpoint (all writers flushed) the
    /// published snapshot must encode to exactly the bytes of a
    /// sequential sketch over the prefix dealt so far. Mid-checkpoint,
    /// snapshots may trail ingestion by at most the sum of writer
    /// buffers — never lead it.
    #[test]
    fn seeded_schedules_match_sequential_at_every_checkpoint(
        labels in vec(0u64..5_000, 1..400),
        writers in 1usize..5,
        threshold in prop_oneof![Just(8u64), Just(32u64), Just(127u64)],
    ) {
        let config = small_config();
        let shared = ConcurrentSketch::new(&config, SEED);
        let mut handles: Vec<_> = (0..writers)
            .map(|_| shared.writer_with_threshold(threshold))
            .collect();

        let checkpoint = 64usize;
        for (i, &label) in labels.iter().enumerate() {
            handles[i % writers].insert(fold61(label));

            // Snapshots never claim items still sitting in writer buffers.
            let buffered: u64 = handles.iter().map(|h| h.buffered()).sum();
            let snap = shared.snapshot();
            prop_assert!(snap.items_observed() + buffered == (i + 1) as u64);

            if (i + 1) % checkpoint == 0 {
                for h in &mut handles {
                    h.flush();
                }
                let snap = shared.snapshot();
                let sequential = sequential_over(&labels[..=i], &config);
                prop_assert_eq!(snap.items_observed(), (i + 1) as u64);
                let (ours, theirs) = (encode_sketch(snap.sketch()), encode_sketch(&sequential));
                prop_assert_eq!(
                    ours.as_ref(),
                    theirs.as_ref(),
                    "checkpoint at item {} diverged from sequential",
                    i + 1
                );
            }
        }

        drop(handles); // Drop flushes the tails.
        let snap = shared.snapshot();
        let sequential = sequential_over(&labels, &config);
        prop_assert_eq!(snap.items_observed(), labels.len() as u64);
        let (ours, theirs) = (encode_sketch(snap.sketch()), encode_sketch(&sequential));
        prop_assert_eq!(ours.as_ref(), theirs.as_ref());
        // Bitwise identity makes the estimates identical too; check the
        // user-facing number anyway so a codec bug can't mask it.
        prop_assert_eq!(
            snap.estimate_distinct().value.to_bits(),
            sequential.estimate_distinct().value.to_bits()
        );
    }
}

/// Seeded per-writer label streams for the real-thread stress test
/// (SplitMix64, same generator the compat proptest RNG uses).
fn stream(writer: usize, len: usize) -> Vec<u64> {
    let mut state = 0x9E37_79B9_0000_0000u64 ^ (writer as u64);
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            fold61(z ^ (z >> 31)) % 200_000
        })
        .collect()
}

/// Real-thread stress: 4 writers race 30k items each through small
/// buffers while 2 readers continuously take snapshots. Readers assert
/// epoch/item monotonicity on every poll (count/ordering assertions only
/// — no timing); after the writers finish, the final state must be
/// bitwise identical to a sequential pass over the concatenated streams.
#[test]
fn threaded_stress_final_state_is_bitwise_sequential() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PER_WRITER: usize = 30_000;

    let config = small_config();
    let shared = ConcurrentSketch::new(&config, SEED);
    let streams: Vec<Vec<u64>> = (0..WRITERS).map(|w| stream(w, PER_WRITER)).collect();
    let writers_done = AtomicUsize::new(0);
    let polls = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for labels in &streams {
            let shared = &shared;
            let writers_done = &writers_done;
            scope.spawn(move |_| {
                let mut w = shared.writer_with_threshold(512);
                w.extend_slice(labels);
                drop(w); // flush the tail before signalling completion
                writers_done.fetch_add(1, Ordering::Release);
            });
        }
        for _ in 0..READERS {
            let shared = &shared;
            let writers_done = &writers_done;
            let polls = &polls;
            scope.spawn(move |_| {
                let mut last_epoch = 0u64;
                let mut last_items = 0u64;
                loop {
                    let done = writers_done.load(Ordering::Acquire) == WRITERS;
                    let snap = shared.snapshot();
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    assert!(
                        snap.items_observed() >= last_items,
                        "coverage went backwards"
                    );
                    assert!(snap.items_observed() <= (WRITERS * PER_WRITER) as u64);
                    last_epoch = snap.epoch();
                    last_items = snap.items_observed();
                    polls.fetch_add(1, Ordering::Relaxed);
                    if done {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    })
    .unwrap();

    assert!(polls.load(Ordering::Relaxed) >= READERS);
    let all: Vec<u64> = streams.concat();
    let mut sequential = DistinctSketch::new(&config, SEED);
    sequential.extend_labels(all.iter().copied());

    let snap = shared.snapshot();
    assert_eq!(snap.items_observed(), all.len() as u64);
    assert_eq!(
        encode_sketch(snap.sketch()).as_ref(),
        encode_sketch(&sequential).as_ref(),
        "concurrent final state diverged from sequential"
    );

    let m = shared.metrics_snapshot();
    assert_eq!(m.items_propagated, all.len() as u64);
    assert!(m.propagations() >= (all.len() / 512) as u64);
}
