//! Deterministic-replay property of the scenario harness: any
//! `ScenarioSpec` run twice with the same master seed must produce
//! bitwise-identical referee canonical bytes, telemetry counters, and
//! latency histograms — all folded into `E2eReport::determinism_key`.
//!
//! The specs here are drawn small (a few parties, tens of ticks) so the
//! whole property sweep stays CI-fast; the determinism contract does not
//! depend on scale.

use proptest::prelude::*;

use gt_sketch::streams::{run_sustained, Distribution, RetryPolicy, ScenarioSpec, TransportSpec};
use gt_sketch::SketchConfig;

/// Build a small sustained spec from raw drawn integers. Every stochastic
/// aspect of the run (workload draws, channel fates) derives from
/// `workload_seed` and the transport seed, both fixed by the draw — so
/// the spec itself is a pure value.
#[allow(clippy::too_many_arguments)]
fn spec_of(
    parties: u64,
    rate: u64,
    duration: u64,
    report_every: u64,
    seed: u64,
    dist_pick: u64,
    fault_pick: u64,
    churn_pick: u64,
) -> ScenarioSpec {
    let parties = 1 + (parties % 4) as usize;
    let duration = 20 + duration % 60;
    let mut b = ScenarioSpec::builder("prop")
        .parties(parties)
        .distinct_per_party(200 + seed % 400)
        .overlap(0.25)
        .distribution(match dist_pick % 3 {
            0 => Distribution::Uniform,
            1 => Distribution::Zipf(1.1),
            _ => Distribution::EachOnce,
        })
        .workload_seed(seed)
        .sustained(1 + rate % 3, duration, 3 + report_every % 12)
        .query_every(7)
        .query_distinct();
    match fault_pick % 3 {
        0 => {}
        1 => {
            b = b.transport(TransportSpec {
                jitter: 2,
                straggle_probability: 0.0,
                ..TransportSpec::lossy(0.2, seed ^ 0xFA17)
            });
            b = b.retry(RetryPolicy::with_budget(4));
        }
        _ => {
            b = b.transport(TransportSpec::reliable(seed ^ 0x0C1A));
        }
    }
    if parties >= 2 {
        match churn_pick % 4 {
            0 => {}
            1 => b = b.crash(1, duration / 2),
            2 => b = b.graceful_leave(1, duration / 2 + 1),
            _ => b = b.join(0, duration / 3),
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_replay_is_bitwise_identical(
        parties in 0u64..100,
        rate in 0u64..100,
        duration in 0u64..100,
        report_every in 0u64..100,
        seed in 0u64..1 << 32,
        dist_pick in 0u64..100,
        fault_pick in 0u64..100,
        churn_pick in 0u64..100,
        master_seed in 0u64..1 << 32,
    ) {
        let spec = spec_of(
            parties, rate, duration, report_every, seed, dist_pick, fault_pick, churn_pick,
        );
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let a = run_sustained(&config, master_seed, &spec);
        let b = run_sustained(&config, master_seed, &spec);
        // One Eq over everything deterministic: canonical union bytes,
        // the full latency histogram, exactly-once counters, transport
        // and referee counts, and every query sample's IEEE bits.
        prop_assert_eq!(a.determinism_key(), b.determinism_key());
        // The witness is not vacuous: the run did real work.
        prop_assert!(a.total_items > 0);
        prop_assert!(!a.union_canonical.is_empty());
    }

    #[test]
    fn master_seed_perturbs_the_union(
        seed in 0u64..1 << 32,
        master_seed in 0u64..1 << 31,
    ) {
        // Complement of the replay property: determinism is not the
        // degenerate "always the same answer" — a different master seed
        // re-keys the sketch hashes and must change the canonical bytes.
        let spec = spec_of(2, 1, 40, 5, seed, 0, 0, 0);
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let a = run_sustained(&config, master_seed, &spec);
        let b = run_sustained(&config, master_seed ^ 0x5EED_0001, &spec);
        prop_assert_ne!(a.union_canonical, b.union_canonical);
        // The virtual-clock accounting is seed-independent on a clean
        // channel: same items, same latency histogram.
        prop_assert_eq!(a.total_items, b.total_items);
        prop_assert_eq!(a.latency, b.latency);
    }
}
