//! End-to-end integration: workload generation → parties on threads →
//! wire codec → referee → estimate, checked against the exact oracle.

use gt_sketch::streams::{run_scenario, Distribution, StreamOracle, WorkloadSpec};
use gt_sketch::SketchConfig;

fn spec(parties: usize, overlap: f64, dist: Distribution) -> WorkloadSpec {
    WorkloadSpec {
        parties,
        distinct_per_party: 20_000,
        overlap,
        items_per_party: 60_000,
        distribution: dist,
        seed: 0xFEED,
    }
}

#[test]
fn union_estimate_accurate_across_overlap_sweep() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    for overlap in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let streams = spec(6, overlap, Distribution::Uniform).generate();
        let report = run_scenario(&config, 0xA1, &streams);
        assert!(
            report.relative_error < 0.1,
            "overlap {overlap}: error {} (est {} truth {})",
            report.relative_error,
            report.estimate,
            report.truth
        );
    }
}

#[test]
fn accuracy_is_insensitive_to_skew() {
    // F0 depends only on the distinct set; heavy skew changes duplication,
    // not the answer. (EachOnce gives the same distinct set with zero
    // duplication as Zipf(1.5) with heavy duplication.)
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut estimates = Vec::new();
    for dist in [
        Distribution::EachOnce,
        Distribution::Uniform,
        Distribution::Zipf(1.0),
        Distribution::Zipf(1.5),
    ] {
        let streams = spec(4, 0.5, dist).generate();
        let report = run_scenario(&config, 0xA2, &streams);
        assert!(
            report.relative_error < 0.1,
            "{dist:?}: {}",
            report.relative_error
        );
        estimates.push((dist, report.estimate, report.truth));
    }
    // All runs share seed + universe structure; the distinct sets differ
    // only by which labels the draws happened to touch.
    for (dist, est, truth) in estimates {
        assert!(
            (est - truth as f64).abs() / truth as f64 <= 0.1,
            "{dist:?} drifted: est {est} truth {truth}"
        );
    }
}

#[test]
fn communication_independent_of_stream_length() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let short = spec(4, 0.5, Distribution::Uniform);
    let long = WorkloadSpec {
        items_per_party: 600_000,
        ..short
    };
    let r_short = run_scenario(&config, 0xA3, &short.generate());
    let r_long = run_scenario(&config, 0xA3, &long.generate());
    // 10× the items; bytes may differ only marginally (longer streams
    // touch more of the universe and items_observed varints grow).
    let ratio = r_long.total_bytes as f64 / r_short.total_bytes as f64;
    assert!(
        ratio < 1.25,
        "bytes grew with stream length: {} -> {} ({ratio:.2}x)",
        r_short.total_bytes,
        r_long.total_bytes
    );
}

#[test]
fn per_party_space_is_logarithmic_in_stream_length() {
    // The in-memory sample ceiling is fixed by the config alone.
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let ceiling = config.max_sample_entries();
    for items in [10_000u64, 100_000, 1_000_000] {
        let mut sketch = gt_sketch::DistinctSketch::new(&config, 1);
        for i in 0..items {
            sketch.insert(gt_sketch::fold61(i % 500_000));
        }
        assert!(sketch.sample_entries() <= ceiling, "items {items}");
    }
}

#[test]
fn naive_per_party_sum_overcounts_but_union_does_not() {
    // The paper's headline comparison: Σ per-party F0 estimates vs the
    // coordinated union, under full overlap.
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let streams = spec(8, 1.0, Distribution::Uniform).generate();
    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct() as f64;

    let mut per_party_sum = 0.0;
    for (i, s) in streams.streams.iter().enumerate() {
        let mut sk = gt_sketch::DistinctSketch::new(&config, 0xA4 + i as u64);
        sk.extend_labels(s.iter().copied());
        per_party_sum += sk.estimate_distinct().value;
    }
    let report = run_scenario(&config, 0xA4, &streams);

    assert!(
        per_party_sum > 6.0 * truth,
        "naive sum should ~8x overcount: {per_party_sum} vs {truth}"
    );
    assert!(
        report.relative_error < 0.1,
        "union error {}",
        report.relative_error
    );
}

#[test]
fn referee_handles_hundreds_of_parties() {
    let config = SketchConfig::new(0.15, 0.1).unwrap();
    let streams = WorkloadSpec {
        parties: 100,
        distinct_per_party: 1_000,
        overlap: 0.2,
        items_per_party: 2_000,
        distribution: Distribution::Uniform,
        seed: 5,
    }
    .generate();
    let report = run_scenario(&config, 0xA5, &streams);
    assert_eq!(report.parties, 100);
    assert!(
        report.relative_error < 0.15,
        "error {}",
        report.relative_error
    );
}

#[test]
fn accuracy_contract_over_many_seeds() {
    // (ε, δ) = (0.15, 0.2): over 25 master seeds at most a handful may
    // exceed ε. With δ = 0.2 the expected failures are 5; allow 9 (a
    // >3σ cushion) so the test is meaningful yet stable.
    let config = SketchConfig::new(0.15, 0.2).unwrap();
    let streams = spec(4, 0.3, Distribution::Uniform).generate();
    let mut failures = 0;
    for seed in 0..25u64 {
        let report = run_scenario(&config, 0xB000 + seed, &streams);
        if report.relative_error > 0.15 {
            failures += 1;
        }
    }
    assert!(failures <= 9, "{failures}/25 seeds exceeded epsilon");
}
