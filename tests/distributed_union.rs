//! End-to-end integration: workload generation → parties on threads →
//! wire codec → referee → estimate, checked against the exact oracle —
//! plus the at-least-once delivery properties: any schedule of duplicated,
//! reordered, or late deliveries must leave the referee in a state
//! bitwise-identical to clean exactly-once delivery.

use proptest::collection::vec;
use proptest::prelude::*;

use gt_sketch::streams::{
    collect_once, encode_sketch, run_scenario, Distribution, Party, PartyMessage, Receipt, Referee,
    RefereeOf, RetryPolicy, StreamOracle, TransportSpec, WorkloadSpec,
};
use gt_sketch::SketchConfig;

fn spec(parties: usize, overlap: f64, dist: Distribution) -> WorkloadSpec {
    WorkloadSpec {
        parties,
        distinct_per_party: 20_000,
        overlap,
        items_per_party: 60_000,
        distribution: dist,
        seed: 0xFEED,
    }
}

#[test]
fn union_estimate_accurate_across_overlap_sweep() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    for overlap in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let streams = spec(6, overlap, Distribution::Uniform).generate();
        let report = run_scenario(&config, 0xA1, &streams);
        assert!(
            report.relative_error < 0.1,
            "overlap {overlap}: error {} (est {} truth {})",
            report.relative_error,
            report.estimate,
            report.truth
        );
    }
}

#[test]
fn accuracy_is_insensitive_to_skew() {
    // F0 depends only on the distinct set; heavy skew changes duplication,
    // not the answer. (EachOnce gives the same distinct set with zero
    // duplication as Zipf(1.5) with heavy duplication.)
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut estimates = Vec::new();
    for dist in [
        Distribution::EachOnce,
        Distribution::Uniform,
        Distribution::Zipf(1.0),
        Distribution::Zipf(1.5),
    ] {
        let streams = spec(4, 0.5, dist).generate();
        let report = run_scenario(&config, 0xA2, &streams);
        assert!(
            report.relative_error < 0.1,
            "{dist:?}: {}",
            report.relative_error
        );
        estimates.push((dist, report.estimate, report.truth));
    }
    // All runs share seed + universe structure; the distinct sets differ
    // only by which labels the draws happened to touch.
    for (dist, est, truth) in estimates {
        assert!(
            (est - truth as f64).abs() / truth as f64 <= 0.1,
            "{dist:?} drifted: est {est} truth {truth}"
        );
    }
}

#[test]
fn communication_independent_of_stream_length() {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let short = spec(4, 0.5, Distribution::Uniform);
    let long = WorkloadSpec {
        items_per_party: 600_000,
        ..short
    };
    let r_short = run_scenario(&config, 0xA3, &short.generate());
    let r_long = run_scenario(&config, 0xA3, &long.generate());
    // 10× the items; bytes may differ only marginally (longer streams
    // touch more of the universe and items_observed varints grow).
    let ratio = r_long.total_bytes as f64 / r_short.total_bytes as f64;
    assert!(
        ratio < 1.25,
        "bytes grew with stream length: {} -> {} ({ratio:.2}x)",
        r_short.total_bytes,
        r_long.total_bytes
    );
}

#[test]
fn per_party_space_is_logarithmic_in_stream_length() {
    // The in-memory sample ceiling is fixed by the config alone.
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let ceiling = config.max_sample_entries();
    for items in [10_000u64, 100_000, 1_000_000] {
        let mut sketch = gt_sketch::DistinctSketch::new(&config, 1);
        for i in 0..items {
            sketch.insert(gt_sketch::fold61(i % 500_000));
        }
        assert!(sketch.sample_entries() <= ceiling, "items {items}");
    }
}

#[test]
fn naive_per_party_sum_overcounts_but_union_does_not() {
    // The paper's headline comparison: Σ per-party F0 estimates vs the
    // coordinated union, under full overlap.
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let streams = spec(8, 1.0, Distribution::Uniform).generate();
    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct() as f64;

    let mut per_party_sum = 0.0;
    for (i, s) in streams.streams.iter().enumerate() {
        let mut sk = gt_sketch::DistinctSketch::new(&config, 0xA4 + i as u64);
        sk.extend_labels(s.iter().copied());
        per_party_sum += sk.estimate_distinct().value;
    }
    let report = run_scenario(&config, 0xA4, &streams);

    assert!(
        per_party_sum > 6.0 * truth,
        "naive sum should ~8x overcount: {per_party_sum} vs {truth}"
    );
    assert!(
        report.relative_error < 0.1,
        "union error {}",
        report.relative_error
    );
}

#[test]
fn referee_handles_hundreds_of_parties() {
    let config = SketchConfig::new(0.15, 0.1).unwrap();
    let streams = WorkloadSpec {
        parties: 100,
        distinct_per_party: 1_000,
        overlap: 0.2,
        items_per_party: 2_000,
        distribution: Distribution::Uniform,
        seed: 5,
    }
    .generate();
    let report = run_scenario(&config, 0xA5, &streams);
    assert_eq!(report.parties, 100);
    assert!(
        report.relative_error < 0.15,
        "error {}",
        report.relative_error
    );
}

// ---------------------------------------------------------------------------
// At-least-once delivery properties
// ---------------------------------------------------------------------------

/// Cheap config so promotions happen even on small generated streams.
fn small_config() -> SketchConfig {
    SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_sketch::HashFamilyKind::Pairwise).unwrap()
}

/// Finished messages for four parties; the last party's stream is forced
/// empty so every schedule also exercises the empty-stream case.
fn four_messages(streams: [&[u64]; 3], seed: u64) -> Vec<PartyMessage> {
    let config = small_config();
    let empty: &[u64] = &[];
    streams
        .iter()
        .copied()
        .chain(std::iter::once(empty))
        .enumerate()
        .map(|(id, s)| {
            let mut p = Party::new(id, &config, seed);
            p.observe_stream(&s.iter().map(|&l| gt_sketch::fold61(l)).collect::<Vec<_>>());
            p.finish()
        })
        .collect()
}

/// Everything the referee's exactly-once contract promises, as one
/// comparable value: canonical union bytes, the exactly-once counters,
/// and the merge metrics. Valid only when both referees merged in the
/// same order — the union *state* is order-independent but process
/// metrics like `merge_entries_absorbed` are path-dependent.
fn referee_state(r: &Referee) -> (Vec<u8>, usize, usize, u64, gt_sketch::MetricsSnapshot) {
    (
        encode_sketch(r.union_sketch()).to_vec(),
        r.messages(),
        r.bytes_received(),
        r.items_reported(),
        r.union_metrics(),
    )
}

/// The order-independent subset of [`referee_state`]: canonical union
/// bytes and exactly-once counters. `merge_calls` is deliberately
/// excluded: the batched collection plane folds each retry round in one
/// union merge, so the count depends on how deliveries clumped into
/// rounds (it is an observability counter, never on the wire).
fn referee_state_order_free(r: &Referee) -> (Vec<u8>, usize, usize, u64) {
    (
        encode_sketch(r.union_sketch()).to_vec(),
        r.messages(),
        r.bytes_received(),
        r.items_reported(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE headline property: an arbitrary at-least-once schedule —
    /// duplicates, reorderings, arbitrary interleavings — yields a union
    /// sketch bitwise-identical to clean single delivery of the same
    /// parties, and the exactly-once counters never double-count.
    #[test]
    fn any_delivery_schedule_equals_clean_single_delivery(
        a in vec(0u64..3_000, 0..300),
        b in vec(0u64..3_000, 0..300),
        c in vec(0u64..3_000, 0..300),
        schedule in vec(0usize..4, 1..24),
    ) {
        let msgs = four_messages([&a, &b, &c], 77);

        // Dirty referee: deliver the raw schedule, redeliveries and all.
        let mut dirty = Referee::new(&small_config(), 77);
        for &i in &schedule {
            let receipt = dirty.receive(&msgs[i]).unwrap();
            prop_assert!(matches!(receipt, Receipt::Merged | Receipt::Duplicate));
        }

        // Clean referee: the same parties, first occurrence only.
        let mut clean = Referee::new(&small_config(), 77);
        let mut seen = [false; 4];
        let mut first_occurrences = 0usize;
        for &i in &schedule {
            if !seen[i] {
                seen[i] = true;
                first_occurrences += 1;
                prop_assert_eq!(clean.receive(&msgs[i]).unwrap(), Receipt::Merged);
            }
        }

        prop_assert_eq!(referee_state(&dirty), referee_state(&clean));
        prop_assert_eq!(
            dirty.telemetry().duplicates_suppressed,
            schedule.len() - first_occurrences
        );
        prop_assert_eq!(dirty.telemetry().accepted, first_occurrences);
        prop_assert_eq!(
            dirty.estimate_distinct().value,
            clean.estimate_distinct().value
        );
    }

    /// Delivery order is irrelevant: any permutation of the parties leaves
    /// canonical union bytes identical to natural order.
    #[test]
    fn delivery_order_is_irrelevant(
        a in vec(0u64..3_000, 0..300),
        b in vec(0u64..3_000, 0..300),
        c in vec(0u64..3_000, 0..300),
        keys in vec(0u64..1_000_000, 4..5),
    ) {
        let msgs = four_messages([&a, &b, &c], 91);
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by_key(|&i| keys[i]);

        let mut natural = Referee::new(&small_config(), 91);
        let mut shuffled = Referee::new(&small_config(), 91);
        for i in 0..4 {
            natural.receive(&msgs[i]).unwrap();
            shuffled.receive(&msgs[order[i]]).unwrap();
        }
        prop_assert_eq!(
            referee_state_order_free(&natural),
            referee_state_order_free(&shuffled)
        );
    }

    /// The collection plane never invents data: whatever subset of parties
    /// the collector heard — via acks, retransmits, or late straggler
    /// deliveries — its referee is bitwise-identical to a clean referee fed
    /// exactly that subset once.
    #[test]
    fn lossy_collection_equals_clean_delivery_of_heard_subset(
        a in vec(0u64..3_000, 0..300),
        b in vec(0u64..3_000, 0..300),
        c in vec(0u64..3_000, 0..300),
        drop_pct in 0u32..90,
        seed in 0u64..1_000,
        budget in 1usize..6,
    ) {
        let msgs = four_messages([&a, &b, &c], 13);
        let spec = TransportSpec {
            jitter: 2,
            straggle_probability: 0.2,
            ..TransportSpec::lossy(f64::from(drop_pct) / 100.0, seed)
        };
        let (report, referee) = collect_once(
            &small_config(),
            13,
            &msgs,
            spec,
            RetryPolicy::with_budget(budget),
        );

        let mut clean = Referee::new(&small_config(), 13);
        for msg in &msgs {
            if referee.has_heard(msg.party_id) {
                clean.receive(msg).unwrap();
            }
        }
        prop_assert_eq!(
            referee_state_order_free(&referee),
            referee_state_order_free(&clean)
        );

        // Attempt accounting stays coherent under any loss schedule.
        prop_assert!(report.parties_acked() <= msgs.len());
        prop_assert!(referee.parties_heard() >= report.parties_acked());
        prop_assert!(report.rounds <= budget);
        let partial = referee.estimate_distinct_partial(msgs.len());
        prop_assert_eq!(partial.parties_heard, referee.parties_heard());
        prop_assert!(partial.coverage() >= 0.0 && partial.coverage() <= 1.0);
    }

    /// Payload-carrying (weighted u64) sketches obey the same idempotence
    /// contract: k-fold redelivery changes nothing.
    #[test]
    fn weighted_payload_redelivery_is_idempotent(
        a in vec(0u64..2_000, 1..200),
        b in vec(0u64..2_000, 1..200),
        redeliveries in 1usize..5,
    ) {
        use gt_sketch::SumDistinctSketch;
        let config = small_config();
        let mut once: RefereeOf<u64> = RefereeOf::new(&config, 7);
        let mut noisy: RefereeOf<u64> = RefereeOf::new(&config, 7);
        for (id, labels) in [(0usize, &a), (1, &b)] {
            let mut s = SumDistinctSketch::new(&config, 7);
            for &l in labels.iter() {
                s.insert(gt_sketch::fold61(l), l % 5 + 1);
            }
            let msg = PartyMessage {
                party_id: id,
                payload: encode_sketch(s.inner()),
                items_observed: s.inner().items_observed(),
            };
            prop_assert_eq!(once.receive(&msg).unwrap(), Receipt::Merged);
            prop_assert_eq!(noisy.receive(&msg).unwrap(), Receipt::Merged);
            for _ in 0..redeliveries {
                prop_assert_eq!(noisy.receive(&msg).unwrap(), Receipt::Duplicate);
            }
        }
        prop_assert_eq!(
            encode_sketch(noisy.union_sketch()),
            encode_sketch(once.union_sketch())
        );
        prop_assert_eq!(noisy.items_reported(), once.items_reported());
        prop_assert_eq!(noisy.telemetry().duplicates_suppressed, 2 * redeliveries);
        let w = |_k: u64, v: u64| v as f64;
        prop_assert_eq!(
            noisy.union_sketch().estimate_weighted(w),
            once.union_sketch().estimate_weighted(w)
        );
    }
}

#[test]
fn accuracy_contract_over_many_seeds() {
    // (ε, δ) = (0.15, 0.2): over 25 master seeds at most a handful may
    // exceed ε. With δ = 0.2 the expected failures are 5; allow 9 (a
    // >3σ cushion) so the test is meaningful yet stable.
    let config = SketchConfig::new(0.15, 0.2).unwrap();
    let streams = spec(4, 0.3, Distribution::Uniform).generate();
    let mut failures = 0;
    for seed in 0..25u64 {
        let report = run_scenario(&config, 0xB000 + seed, &streams);
        if report.relative_error > 0.15 {
            failures += 1;
        }
    }
    assert!(failures <= 9, "{failures}/25 seeds exceeded epsilon");
}
