//! Degraded-mode queries under mid-run party churn: coverage is
//! monotone in parties heard, partial queries never panic on
//! zero-coverage windows, and a churned-out party's last acked summary
//! counts exactly once no matter how often it is redelivered.

use gt_sketch::streams::{
    run_sustained, Party, Receipt, Referee, RetryPolicy, ScenarioSpec, TransportSpec,
};
use gt_sketch::{SetExpr, SketchConfig};

fn config() -> SketchConfig {
    SketchConfig::new(0.1, 0.1).unwrap()
}

#[test]
fn coverage_is_monotone_in_parties_heard() {
    let config = config();
    let t = 6;
    let mut referee = Referee::new(&config, 9);
    let expr = SetExpr::leaf(0)
        .union(SetExpr::leaf(1))
        .union(SetExpr::leaf(5));

    // Zero parties heard: every partial query must answer, not panic.
    let none = referee.estimate_distinct_partial(t);
    assert_eq!(none.parties_heard, 0);
    assert_eq!(none.coverage(), 0.0);
    assert!(!none.is_complete());
    assert_eq!(none.estimate.value, 0.0, "empty union estimates zero");
    let q = referee
        .query_partial(&expr)
        .expect("partial expr at zero coverage");
    assert_eq!(q.coverage(), 0.0);
    let j = referee
        .query_jaccard_partial(&SetExpr::leaf(0), &SetExpr::leaf(1))
        .expect("partial jaccard at zero coverage");
    assert_eq!(j.coverage(), 0.0);

    // Hearing parties one at a time: coverage strictly climbs, the
    // distinct estimate never decreases (unions only grow), and the
    // expression query's coverage tracks its referenced leaves.
    let mut last_cov = 0.0;
    let mut last_est = 0.0;
    for id in 0..t {
        let mut party = Party::new(id, &config, 9);
        let stream: Vec<u64> = (0..2_000u64).map(|i| i * (t as u64) + id as u64).collect();
        party.observe_stream(&stream);
        referee.receive(&party.finish()).expect("clean delivery");

        let partial = referee.estimate_distinct_partial(t);
        assert_eq!(partial.parties_heard, id + 1);
        assert!(partial.coverage() > last_cov, "coverage must climb");
        assert!(partial.estimate.value >= last_est, "union only grows");
        last_cov = partial.coverage();
        last_est = partial.estimate.value;

        let q = referee.query_partial(&expr).expect("partial expr");
        let heard_leaves = [0usize, 1, 5].iter().filter(|&&l| l <= id).count();
        assert_eq!(q.parties_heard, heard_leaves);
        assert_eq!(q.parties_referenced, 3);
    }
    assert_eq!(last_cov, 1.0);
    assert!(referee.estimate_distinct_partial(t).is_complete());
}

#[test]
fn churned_out_partys_last_summary_counts_exactly_once() {
    let config = config();
    let mut referee = Referee::new(&config, 21);

    // Party 0 ships its summary, then "churns out" — but the collection
    // plane keeps redelivering the same payload (ack-loss retransmits,
    // stragglers). Every redelivery must be deduplicated.
    let mut party = Party::new(0, &config, 21);
    let stream: Vec<u64> = (0..3_000u64).collect();
    party.observe_stream(&stream);
    let msg = party.finish();

    assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
    let canonical = gt_sketch::streams::encode_sketch(referee.union_sketch());
    let estimate = referee.estimate_distinct().value;
    for _ in 0..5 {
        assert_eq!(referee.receive(&msg).unwrap(), Receipt::Duplicate);
    }
    assert_eq!(
        gt_sketch::streams::encode_sketch(referee.union_sketch()),
        canonical,
        "redelivery must not perturb the union"
    );
    assert_eq!(
        referee.estimate_distinct().value.to_bits(),
        estimate.to_bits()
    );
    assert_eq!(referee.telemetry().accepted, 1);
    assert_eq!(referee.telemetry().duplicates(), 5);
}

#[test]
fn sustained_churn_coverage_tracks_active_parties() {
    // Mid-run churn in the sustained engine: the degraded-mode distinct
    // samples must report coverage against the parties active at query
    // time, staying in [0, 1] throughout, and reach full coverage once
    // every active party has been heard.
    let spec = ScenarioSpec::builder("churny")
        .parties(4)
        .distinct_per_party(600)
        .workload_seed(31)
        .sustained(2, 60, 10)
        .crash(1, 25)
        .graceful_leave(2, 35)
        .join(3, 30)
        .query_every(5)
        .query_distinct()
        .build();
    let report = run_sustained(&config(), 3, &spec);
    assert!(!report.distinct_samples.is_empty());
    for s in &report.distinct_samples {
        assert!(s.coverage >= 0.0 && s.coverage <= 1.0, "{s:?}");
        assert!(s.parties_heard <= s.parties_expected, "{s:?}");
        assert!(s.estimate >= 0.0);
    }
    // Crashed and departed parties were heard before leaving, the
    // joiner after joining: the final sample covers everyone.
    let last = report.distinct_samples.last().unwrap();
    assert_eq!(last.parties_expected, 4);
    assert_eq!(last.coverage, 1.0);
    assert_eq!(report.party_coverage, 1.0);
    // The crash loses its unflushed tail and nothing else.
    assert!(report.item_coverage < 1.0);
    assert!(report.item_coverage > 0.9);
    assert_eq!(
        report.referee.accepted, 4,
        "each party counted exactly once"
    );
}

#[test]
fn zero_coverage_window_under_total_loss_never_panics() {
    // A channel that drops everything with a one-shot policy: no party
    // is ever heard, every query window has zero coverage, and the
    // report must still be well-formed (0/0 conventions, no panics).
    let spec = ScenarioSpec::builder("blackout")
        .parties(3)
        .distinct_per_party(400)
        .workload_seed(41)
        .sustained(2, 40, 10)
        .transport(TransportSpec {
            jitter: 0,
            straggle_probability: 0.0,
            ..TransportSpec::lossy(1.0, 7)
        })
        .retry(RetryPolicy::one_shot())
        .query_every(10)
        .query_distinct()
        .build();
    let report = run_sustained(&config(), 5, &spec);
    assert!(report.total_items > 0);
    assert_eq!(report.items_acked, 0);
    assert_eq!(report.item_coverage, 0.0);
    assert_eq!(report.party_coverage, 0.0, "senders existed, none heard");
    assert_eq!(report.latency.count(), 0);
    assert_eq!(report.latency.p999(), 0, "empty histogram quantiles are 0");
    for s in &report.distinct_samples {
        assert_eq!(s.parties_heard, 0);
        assert_eq!(s.coverage, 0.0);
        assert_eq!(s.estimate, 0.0);
    }
    assert_eq!(report.final_estimate, 0.0);
    assert!(report.transport.dropped > 0);
}
