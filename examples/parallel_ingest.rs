//! Multicore ingestion: the distributed-streams model as a parallelism
//! pattern on one machine.
//!
//! Coordinated sketches merge losslessly, so "split the input across
//! threads, sketch locally, merge" produces *bit-identical* state to a
//! sequential pass — parallel speedup with zero accuracy cost. This
//! example measures it both ways:
//!
//! * [`gt_sketch::parallel::build_parallel`] — batch: chunk a slice.
//! * [`gt_sketch::ShardedSketch`] — online: concurrent writers, labels
//!   routed to shards.
//!
//! Run with: `cargo run --release --example parallel_ingest`

use std::time::Instant;

use gt_sketch::parallel::build_parallel;
use gt_sketch::{ShardedSketch, SketchConfig};

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available parallelism: {cores} core(s)");
    if cores == 1 {
        println!("(single-core host: expect NO speedup — the demonstration is that");
        println!(" parallel chunk+merge is BIT-IDENTICAL to sequential, at any thread count)\n");
    }

    let config = SketchConfig::new(0.02, 0.01).expect("valid config");
    let master_seed = 0x9A7A;
    let n_items = 8_000_000u64;
    let n_distinct = 2_000_000u64;

    println!("generating {n_items} items over {n_distinct} distinct labels...");
    let labels: Vec<u64> = (0..n_items)
        .map(|i| gt_sketch::fold61(i % n_distinct))
        .collect();

    // --- batch: sequential vs parallel build ---------------------------
    let t0 = Instant::now();
    let sequential = build_parallel(&config, master_seed, &labels, 1).unwrap();
    let t_seq = t0.elapsed();

    println!("\nthreads  time      speedup  estimate (truth {n_distinct})");
    println!(
        "{:>7}  {:>8.1?}  {:>6.2}x  {:.0}",
        1,
        t_seq,
        1.0,
        sequential.estimate_distinct().value
    );

    for threads in [2, 4, 8] {
        let t0 = Instant::now();
        let parallel = build_parallel(&config, master_seed, &labels, threads).unwrap();
        let dt = t0.elapsed();
        // Accuracy cost of parallelism: none. Same samples, same estimate.
        assert_eq!(
            parallel.estimate_distinct().value,
            sequential.estimate_distinct().value,
            "parallel build must be bit-identical"
        );
        println!(
            "{:>7}  {:>8.1?}  {:>6.2}x  {:.0}  (identical state: verified)",
            threads,
            dt,
            t_seq.as_secs_f64() / dt.as_secs_f64(),
            parallel.estimate_distinct().value
        );
    }

    // --- online: concurrent writers into a sharded sketch --------------
    println!("\nonline sharded ingest (8 writers):");
    let sharded = ShardedSketch::new(&config, master_seed, 16);
    let t0 = Instant::now();
    crossbeam::scope(|scope| {
        for chunk in labels.chunks(labels.len().div_ceil(8)) {
            let sharded = &sharded;
            scope.spawn(move |_| {
                for &l in chunk {
                    sharded.insert(l);
                }
            });
        }
    })
    .unwrap();
    let dt = t0.elapsed();
    let snap = sharded.snapshot().unwrap();
    println!(
        "  {:.1?}  estimate {:.0}  ({:.1} M items/s)",
        dt,
        snap.estimate_distinct().value,
        n_items as f64 / dt.as_secs_f64() / 1e6
    );

    // The sharded result is also mergeable with the batch-built sketch —
    // they are all parties in the same coordinated universe.
    let combined = snap.merged(&sequential).unwrap();
    let rel = (combined.estimate_distinct().value - n_distinct as f64).abs() / n_distinct as f64;
    println!(
        "\nsharded ∪ batch estimate: {:.0} (rel err {:.2}%)",
        combined.estimate_distinct().value,
        rel * 100.0
    );
    assert!(rel < 0.02, "outside contract: {rel}");
}
