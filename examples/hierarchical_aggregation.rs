//! Tree-structured collection: regional collectors between monitors and
//! the root.
//!
//! A flat referee needs a message from every monitor; at ISP scale you
//! aggregate per-PoP, then per-region, then globally. Coordinated
//! sketches make every tier exact: the union of sketches IS a sketch, so
//! intermediate collectors merge their children and forward one
//! fixed-size message — per-link traffic never grows with fan-in, and the
//! root's answer equals the flat answer bit for bit.
//!
//! Run with: `cargo run --release --example hierarchical_aggregation`

use gt_sketch::streams::{aggregate_tree, FlowWorkload, Party, Referee};
use gt_sketch::SketchConfig;

fn main() {
    // 64 link monitors, synthetic NetFlow-style traffic.
    let workload = FlowWorkload {
        monitors: 64,
        flows_per_monitor: 10_000,
        transit_fraction: 0.3,
        records_per_monitor: 50_000,
        skew: 1.1,
        seed: 0x7EE,
    };
    let config = SketchConfig::new(0.1, 0.05).expect("valid config");
    let master_seed = 0xAB5EED;

    println!("generating traffic for {} monitors...", workload.monitors);
    let streams = workload.generate();

    // Every monitor sketches its own records and emits ONE message.
    let messages: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(id, records)| {
            let mut party = Party::new(id, &config, master_seed);
            for rec in records {
                party.observe(rec.label());
            }
            party.finish()
        })
        .collect();
    let msg_bytes = messages[0].bytes();

    // Flat collection (every monitor talks to the root directly).
    let mut flat = Referee::new(&config, master_seed);
    for m in &messages {
        flat.receive(m).expect("coordinated message");
    }
    println!(
        "\nflat referee:  estimate {:.0}, root receives {} messages / {} bytes",
        flat.estimate_distinct().value,
        flat.messages(),
        flat.bytes_received()
    );

    // Tree collection: monitors -> PoP collectors (fanout 8) -> root.
    let report = aggregate_tree(&config, master_seed, messages, 8).expect("coordinated tree");
    println!(
        "\ntree (fanout 8): estimate {:.0}, {} tiers",
        report.estimate.value, report.tiers
    );
    for (tier, (msgs, bytes)) in report
        .messages_per_tier
        .iter()
        .zip(report.bytes_per_tier.iter())
        .enumerate()
    {
        println!(
            "  tier {tier}: {msgs:>3} messages, {bytes:>9} bytes total ({} bytes/message)",
            bytes / msgs
        );
    }

    println!(
        "\nroot now receives {} messages instead of 64; every link carries ~{} bytes",
        report.messages_per_tier[1], msg_bytes
    );
    assert_eq!(
        report.estimate.value,
        flat.estimate_distinct().value,
        "tree aggregation must be lossless"
    );
    println!("tree answer == flat answer: verified");
}
