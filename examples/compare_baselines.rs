//! Side-by-side comparison of every distinct counter in the workspace on
//! one duplicate-heavy stream: accuracy, space, and what each can and
//! cannot answer.
//!
//! Run with: `cargo run --release --example compare_baselines`

use gt_sketch::baselines::{
    DistinctCounter, ExactDistinct, HyperLogLog, KmvSketch, LinearCounter, LogLogSketch,
    PcsaSketch, ReservoirSample,
};
use gt_sketch::{DistinctSketch, SketchConfig};

fn main() {
    // 1M distinct flow labels, each observed ~12 times, shuffled — a
    // scale where log-space sketches separate clearly from the exact set.
    let distinct = 1_000_000u64;
    let reps = 12u64;
    println!("stream: {distinct} distinct labels x ~{reps} observations each");
    let universe: Vec<u64> = (0..distinct).map(gt_sketch::fold61).collect();
    let mut stream = Vec::with_capacity((distinct * reps) as usize);
    for rep in 0..reps {
        for i in 0..universe.len() {
            let idx =
                (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(rep) as usize % universe.len();
            stream.push(universe[idx]);
        }
    }

    let config = SketchConfig::new(0.05, 0.01).expect("valid config");
    let truth = distinct as f64;

    struct Row {
        name: &'static str,
        estimate: f64,
        bytes: usize,
        queries: &'static str,
    }
    let mut rows: Vec<Row> = Vec::new();

    macro_rules! run {
        ($name:expr, $counter:expr, $queries:expr) => {{
            let mut c = $counter;
            for &l in &stream {
                c.insert(l);
            }
            rows.push(Row {
                name: $name,
                estimate: c.estimate(),
                bytes: c.summary_bytes(),
                queries: $queries,
            });
        }};
    }

    run!(
        "gt-sketch (this paper)",
        DistinctSketch::new(&config, 7),
        "F0, union, SumDistinct, predicates, similarity, samples"
    );
    run!(
        "exact hash set",
        ExactDistinct::new(),
        "everything, at linear space"
    );
    run!("fm-pcsa (1985)", PcsaSketch::new(4096, 1), "F0, union");
    run!("loglog (2003)", LogLogSketch::new(4096, 2), "F0, union");
    run!("hyperloglog (2007)", HyperLogLog::new(4096, 3), "F0, union");
    run!(
        "linear counting (1990)",
        LinearCounter::new(1 << 21, 4),
        "F0, union (range-limited)"
    );
    run!(
        "kmv / bottom-k",
        KmvSketch::new(4096, 5),
        "F0, union, similarity"
    );
    run!(
        "reservoir + naive scale-up",
        ReservoirSample::new(4096, 6),
        "uniform ITEM sample only"
    );

    println!(
        "\n{:<28} {:>12} {:>9} {:>10}  answers",
        "algorithm", "estimate", "rel err", "space"
    );
    for r in &rows {
        let rel = (r.estimate - truth).abs() / truth;
        println!(
            "{:<28} {:>12.0} {:>8.2}% {:>10}  {}",
            r.name,
            r.estimate,
            rel * 100.0,
            format_bytes(r.bytes),
            r.queries
        );
    }

    println!(
        "\ntruth: {truth:.0} distinct labels ({} observations)",
        stream.len()
    );
    println!("note: the reservoir row is the paper's motivating failure, not a contender");
}

fn format_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}
