//! Comparing two streams without storing them: intersection, difference
//! and Jaccard similarity from coordinated samples.
//!
//! Two datacenter egress taps each see a stream of client IPs. Security
//! wants to know, at the end of the day: how many clients hit BOTH
//! datacenters (suspicious multi-homing), how many are exclusive to each,
//! and how similar the populations are — without shipping IP lists around.
//!
//! Run with: `cargo run --release --example stream_similarity`

use gt_sketch::{similarity, DistinctSketch, SketchConfig};

fn client_label(id: u64) -> u64 {
    gt_sketch::fold61(id)
}

fn main() {
    let config = SketchConfig::new(0.05, 0.01).expect("valid config");
    let master_seed = 0xD15C;

    // Ground truth design: DC-A sees clients [0, 80k), DC-B sees
    // [60k, 120k). Intersection 20k, union 120k, Jaccard = 1/6.
    let mut dc_a = DistinctSketch::new(&config, master_seed);
    let mut dc_b = DistinctSketch::new(&config, master_seed);
    for id in 0u64..80_000 {
        dc_a.insert(client_label(id));
        dc_a.insert(client_label(id)); // repeated visits are free
    }
    for id in 60_000u64..120_000 {
        dc_b.insert(client_label(id));
    }

    let sim = similarity(&dc_a, &dc_b).expect("coordinated sketches");

    println!(
        "clients at both DCs (truth 20000):   {:.0}",
        sim.intersection
    );
    println!("union of client bases (truth 120000): {:.0}", sim.union);
    println!(
        "only DC-A (truth 60000):              {:.0}",
        sim.difference_a_minus_b
    );
    println!(
        "only DC-B (truth 40000):              {:.0}",
        sim.difference_b_minus_a
    );
    println!("jaccard (truth 0.1667):               {:.4}", sim.jaccard);

    // Why coordination matters: the same query from two INDEPENDENTLY
    // seeded sketches is meaningless — and the API refuses to run it.
    let foreign = DistinctSketch::new(&config, 0xBAD5EED);
    assert!(
        similarity(&dc_a, &foreign).is_err(),
        "uncoordinated compare must fail"
    );
    println!("\nuncoordinated comparison correctly rejected: SeedMismatch");

    // Drill-down with predicates on the union sketch: which of the shared
    // clients come from the "internal" id range?
    let union = dc_a.merged(&dc_b).expect("coordinated");
    let internal: std::collections::HashSet<u64> = (0u64..1_000).map(client_label).collect();
    let internal_est = union.estimate_distinct_where(|l| internal.contains(&l));
    println!(
        "distinct internal clients seen anywhere (truth 1000): {:.0}",
        internal_est.value
    );

    assert!((sim.jaccard - 1.0 / 6.0).abs() < 0.05);
    assert!((sim.intersection - 20_000.0).abs() < 4_000.0);
}
