//! Sketch-ops observability walkthrough: what the metrics layer sees.
//!
//! Run with: `cargo run --release --example sketch_stats`
//!
//! Every `GtSketch` carries zero-dependency atomic counters recording what
//! its trials did — insert outcomes, level promotions, merge accounting,
//! and payload reconciliations on both the local and the union path. This
//! example drives a small two-site scenario plus a referee round-trip and
//! prints the counters human-readably and as JSON.

use gt_sketch::streams::{DeltaParty, Party, Receipt, Referee, RefereeOf};
use gt_sketch::{DistinctSketch, SketchConfig};

fn main() {
    let config = SketchConfig::new(0.1, 0.05).expect("valid (eps, delta)");
    let master_seed = 0x0B5E_57A7;

    // Two sites with overlapping streams.
    let mut site_a = DistinctSketch::new(&config, master_seed);
    let mut site_b = DistinctSketch::new(&config, master_seed);
    site_a.extend_labels((0..30_000u64).map(gt_sketch::fold61));
    site_b.extend_labels((15_000..45_000u64).map(gt_sketch::fold61));

    println!("--- site A ---\n{}\n", site_a.metrics_snapshot());
    println!("--- site B ---\n{}\n", site_b.metrics_snapshot());

    // The union path: merge accounting lands on the receiving sketch.
    let union = site_a.merged(&site_b).expect("coordinated");
    let m = union.metrics_snapshot();
    println!("--- union (A <- B) ---\n{m}\n");
    println!("union as JSON: {}\n", m.to_json());
    println!(
        "estimate {:.0} over {} merge-absorbed entries, {} reconciliations, {} promotions\n",
        union.estimate_distinct().value,
        m.merge_entries_absorbed,
        m.merge_reconciliations,
        m.level_promotions,
    );

    // The full referee round-trip: wire-encode both sites, decode and
    // union at the referee, and read its per-stage telemetry.
    let mut referee = Referee::new(&config, master_seed);
    for (id, range) in [0..30_000u64, 15_000..45_000].into_iter().enumerate() {
        let mut party = Party::new(id, &config, master_seed);
        for l in range {
            party.observe(gt_sketch::fold61(l));
        }
        referee.receive(&party.finish()).expect("intact message");
    }
    let t = referee.telemetry();
    println!(
        "referee: {} accepted, {} rejected, decode {:?}, merge {:?}",
        t.accepted,
        t.rejected(),
        t.decode_time,
        t.merge_time,
    );
    println!(
        "referee union metrics: {}",
        referee.union_metrics().to_json()
    );

    // The incremental delta plane: after the first full ship, a party's
    // frame carries only what changed since the referee's last ack, and
    // the referee's incrementally maintained live union stays bitwise
    // identical to a fresh decode of full ships. The per-side counters
    // show the frame mix and how many wire bytes the deltas saved.
    let mut live: RefereeOf<()> = RefereeOf::new(&config, master_seed);
    let mut delta_party: DeltaParty<()> = DeltaParty::new(0, &config, master_seed);
    for round in 0..5u64 {
        for l in (round * 6_000)..(round + 1) * 6_000 {
            delta_party.observe_with(gt_sketch::fold61(l), ());
        }
        let frame = delta_party.emit_frame();
        match live.receive_frame(&frame).expect("intact frame") {
            Receipt::Merged => {
                let acked = live.acked_generation(0).expect("just merged");
                delta_party.handle_ack(acked);
            }
            other => panic!("clean channel never returns {other:?}"),
        }
    }
    let ps = delta_party.stats();
    let dt = live.delta_telemetry();
    println!(
        "\n--- delta plane (1 party, 5 reporting rounds) ---\n\
         party emitted {} full + {} delta frames ({} + {} bytes)\n\
         referee applied {} full + {} delta ({} resyncs, {} duplicates), acked generation {:?}\n\
         live union estimate {:.0} after {} frames",
        ps.full_frames,
        ps.delta_frames,
        ps.full_bytes,
        ps.delta_bytes,
        dt.full_frames,
        dt.delta_frames,
        dt.resyncs_requested,
        dt.duplicate_frames,
        live.acked_generation(0),
        live.estimate_distinct().value,
        dt.frames_applied(),
    );
    assert_eq!(ps.full_frames, 1, "only the first ship is full");
    assert_eq!(live.acked_generation(0), Some(5));

    // The keyed multi-tenant store: per-key sketches behind one sharded
    // ingest path, with a byte budget tight enough here that eviction,
    // spill, and restore all fire. Its snapshot is a consistent cut —
    // the three tiers always sum to the key count exactly.
    let store = gt_sketch::store::DistinctStore::new(
        &config,
        master_seed,
        gt_sketch::store::StoreOptions::default()
            .with_byte_budget(256 << 10)
            .with_hot_threshold(128),
    )
    .expect("store construction");
    let keyed: Vec<(u64, u64)> = (0..120_000u64)
        .map(|i| (i % 500, gt_sketch::fold61(i)))
        .collect();
    store.extend(&keyed).expect("keyed ingest");
    for key in (0..500).step_by(7) {
        store.estimate(key).expect("keyed query");
    }
    let s = store.metrics_snapshot();
    println!("\n--- keyed store (500 tenants, 256 KiB budget) ---\n{s}");
    println!("store as JSON: {}", s.to_json());
    assert_eq!(s.resident_keys + s.pinned_keys + s.spilled_keys, s.keys);
}
