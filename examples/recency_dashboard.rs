//! Recency queries: "how many distinct clients were active since t?" —
//! answered at ANY t, after the fact, from one sketch per site.
//!
//! A security dashboard wants active-distinct-client counts for "last
//! hour", "last day", "since the incident started" — cutoffs that are not
//! known while the streams are being observed. `RecencySketch` attaches
//! each label's latest arrival time to the coordinated sample (merged by
//! max across duplicates, parties, and out-of-order delivery), so every
//! cutoff becomes a post-hoc predicate query.
//!
//! Run with: `cargo run --release --example recency_dashboard`

use gt_sketch::{RecencySketch, SketchConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const HOUR: u64 = 3_600;

fn main() {
    let config = SketchConfig::new(0.05, 0.01).expect("valid config");
    let master_seed = 0x71E5EED;

    // Two sites, 24 hours of events. Client activity decays: client i is
    // active in hour h with probability that drops off per client cohort.
    let mut site_a = RecencySketch::new(&config, master_seed);
    let mut site_b = RecencySketch::new(&config, master_seed);
    let mut rng = SmallRng::seed_from_u64(7);

    let clients = 50_000u64;
    let mut truth_latest = vec![0u64; clients as usize]; // exact latest per client
    for hour in 0..24u64 {
        // Earlier cohorts churn out: cohort c is active in hour h with
        // probability ~ exp decay by cohort distance.
        for c in 0..clients {
            let cohort = c / (clients / 24).max(1); // cohort 0..23
            let active_p = if cohort <= hour { 0.08 } else { 0.0 };
            if rng.gen_bool(active_p) {
                // Events are delivered out of order within the hour.
                let ts = hour * HOUR + rng.gen_range(0..HOUR);
                let label = gt_sketch::fold61(c);
                if rng.gen_bool(0.6) {
                    site_a.insert(label, ts);
                } else {
                    site_b.insert(label, ts);
                }
                truth_latest[c as usize] = truth_latest[c as usize].max(ts + 1);
            }
        }
    }

    let union = site_a.merged(&site_b).expect("coordinated sketches");
    println!("events observed: {}", union.items_observed());
    println!(
        "{:<22} {:>10} {:>10} {:>8}",
        "window", "estimate", "truth", "err"
    );
    for (name, since) in [
        ("all time", 0u64),
        ("last 12 hours", 12 * HOUR),
        ("last 3 hours", 21 * HOUR),
        ("last hour", 23 * HOUR),
    ] {
        let est = union.estimate_distinct_since(since).value;
        let truth = truth_latest.iter().filter(|&&t| t > since).count() as f64;
        let err = if truth > 0.0 {
            (est - truth).abs() / truth
        } else {
            0.0
        };
        println!("{name:<22} {est:>10.0} {truth:>10.0} {:>7.2}%", err * 100.0);
        assert!(
            (est - truth).abs() <= 0.05 * truth_latest.iter().filter(|&&t| t > 0).count() as f64,
            "additive bound violated for {name}"
        );
    }
    println!("\n(cutoffs chosen AFTER observation; out-of-order events handled by max-merge)");
}
