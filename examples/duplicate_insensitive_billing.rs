//! SumDistinct in anger: duplicate-insensitive aggregation across sites.
//!
//! A CDN bills customers for *provisioned capacity*: every distinct
//! (customer, resource) pair carries a reservation in MB, and the same
//! pair may be touched by many edge sites, many times. The bill is
//!
//!     Σ over DISTINCT pairs of reservation(pair)
//!
//! A plain sum over observations re-bills every duplicate; coordinated
//! sampling gets the duplicate-insensitive sum in logarithmic space and
//! merges across sites for free.
//!
//! Run with: `cargo run --release --example duplicate_insensitive_billing`

use gt_sketch::{merge_all, SketchConfig, SumDistinctSketch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic reservation size for a resource pair: 1..=256 MB.
fn reservation_mb(pair: u64) -> u64 {
    (gt_sketch::mix64(pair) % 256) + 1
}

fn main() {
    let config = SketchConfig::new(0.05, 0.01).expect("valid config");
    let master_seed = 0xB111;
    let sites = 12;
    let distinct_pairs_per_site = 30_000u64;
    let touches_per_site = 500_000u64; // heavy duplication: ~17x per pair

    let mut rng = SmallRng::seed_from_u64(99);
    let mut site_sketches = Vec::new();
    let mut naive_total_mb = 0u64; // what a "sum every observation" meter reports
    let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    for site in 0..sites {
        let mut sketch = SumDistinctSketch::new(&config, master_seed);
        // Each site serves a window of the pair space; neighbours overlap 50%.
        let base = site as u64 * distinct_pairs_per_site / 2;
        for _ in 0..touches_per_site {
            let pair_id = base + rng.gen_range(0..distinct_pairs_per_site);
            let label = gt_sketch::fold61(pair_id);
            let mb = reservation_mb(label);
            sketch.insert(label, mb);
            naive_total_mb += mb;
            truth.entry(label).or_insert(mb);
        }
        site_sketches.push(sketch);
    }

    let union = merge_all(&site_sketches).expect("coordinated sketches");
    let billed = union.estimate_sum();
    let true_mb: u64 = truth.values().sum();

    println!(
        "sites: {sites}   observations: {}",
        sites as u64 * touches_per_site
    );
    println!("distinct (customer, resource) pairs: {}", truth.len());
    println!();
    println!("true provisioned capacity:     {true_mb} MB");
    println!("sketch bill (SumDistinct):     {billed}");
    println!(
        "relative error:                {:.2}%",
        (billed.value - true_mb as f64).abs() / true_mb as f64 * 100.0
    );
    println!();
    println!(
        "naive per-observation meter:   {naive_total_mb} MB  ({:.1}x overbilled)",
        naive_total_mb as f64 / true_mb as f64
    );
    println!(
        "distinct pairs (free with the same sketch): {:.0}  (truth {})",
        union.estimate_distinct().value,
        truth.len()
    );
    println!(
        "mean reservation per pair:     {:.1} MB (truth {:.1} MB)",
        union.estimate_mean_value(),
        true_mb as f64 / truth.len() as f64
    );

    let rel = (billed.value - true_mb as f64).abs() / true_mb as f64;
    // Values span [1, 256] MB, so the error budget inflates by ~R/v̄ ≈ 2
    // relative to the distinct-count contract (see sumdistinct docs).
    assert!(rel < 0.2, "billing estimate outside expected band: {rel}");
}
