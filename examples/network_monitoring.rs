//! The paper's motivating deployment: distributed network monitors.
//!
//! Eight link monitors each observe their own packet stream (flows appear
//! on multiple links: routing overlap). Each monitor keeps a logarithmic-
//! space sketch, and after its observation window ships ONE message to a
//! collector, which answers: *how many distinct flows crossed the network?*
//!
//! The example also shows why the obvious alternatives fail:
//! adding up per-link distinct counts overcounts shared flows, and
//! counting packets overcounts by the duplication factor.
//!
//! Run with: `cargo run --release --example network_monitoring`

use gt_sketch::streams::party::Party;
use gt_sketch::streams::{run_scenario, Distribution, Referee, StreamOracle, WorkloadSpec};
use gt_sketch::SketchConfig;

fn main() {
    // Synthetic traffic: 8 monitors, 50k flows visible per link, 30% of
    // flows traverse every link, Zipf(1.1)-skewed packet counts (a few
    // elephant flows dominate), 400k packets per link.
    let spec = WorkloadSpec {
        parties: 8,
        distinct_per_party: 50_000,
        overlap: 0.30,
        items_per_party: 400_000,
        distribution: Distribution::Zipf(1.1),
        seed: 2026,
    };
    let traffic = spec.generate();
    let config = SketchConfig::new(0.1, 0.05).expect("valid config");
    let master_seed = 0x5EED;

    println!("== observation phase (one thread per monitor) ==");
    let report = run_scenario(&config, master_seed, &traffic);
    println!(
        "monitors: {}   packets: {}   throughput: {:.1} M packets/s",
        report.parties,
        report.total_items,
        report.throughput() / 1e6
    );

    println!("\n== collector ==");
    println!("distinct flows (truth):    {}", report.truth);
    println!("distinct flows (sketch):   {:.0}", report.estimate);
    println!(
        "relative error:            {:.2}%",
        report.relative_error * 100.0
    );
    println!(
        "communication: {} bytes total ({} bytes/monitor) for {} packets observed",
        report.total_bytes,
        report.total_bytes / report.parties,
        report.total_items
    );
    println!(
        "  (shipping raw flow sets instead: ~{} bytes; raw packets: ~{} bytes)",
        report.truth * 8,
        report.total_items * 8
    );

    // --- What the naive approaches would report -------------------------
    println!("\n== naive alternatives ==");
    let per_link_sum: f64 = traffic
        .streams
        .iter()
        .map(|s| StreamOracle::of_streams([s.as_slice()]).distinct() as f64)
        .sum();
    println!(
        "sum of per-link distinct counts: {per_link_sum:.0} ({:.1}x overcount — shared flows recounted)",
        per_link_sum / report.truth as f64
    );
    println!(
        "total packet count:              {} ({:.1}x overcount — duplicates recounted)",
        report.total_items,
        report.total_items as f64 / report.truth as f64
    );

    // --- Incremental collection with explicit messages ------------------
    // The runner hides the plumbing; here is the same flow by hand, e.g.
    // for integrating with a real transport.
    println!("\n== manual party/referee wiring ==");
    let mut referee = Referee::new(&config, master_seed);
    for (id, stream) in traffic.streams.iter().enumerate().take(3) {
        let mut party = Party::new(id, &config, master_seed);
        party.observe_stream(stream);
        let msg = party.finish();
        println!("monitor {} sent {} bytes", id, msg.bytes());
        referee.receive(&msg).expect("coordinated message");
    }
    println!(
        "collector estimate over first 3 links: {}",
        referee.estimate_distinct()
    );

    assert!(
        report.relative_error < 0.1,
        "outside the (eps, delta) contract"
    );
}
