//! Quick start: distinct counting over the union of two streams.
//!
//! Run with: `cargo run --release --example quickstart`

use gt_sketch::{DistinctSketch, SketchConfig};

fn main() {
    // Accuracy contract: ±5% relative error with 99% confidence.
    let config = SketchConfig::new(0.05, 0.01).expect("valid (eps, delta)");
    println!(
        "config: eps=5% delta=1% -> {} trials x {} sample slots = {} KiB ceiling",
        config.trials(),
        config.capacity(),
        config.max_sample_entries() * 8 / 1024,
    );

    // The coordination token: every party must use the same master seed
    // (and config). This is the ONLY setup the parties share.
    let master_seed = 0xC0FFEE;

    // Two independent observers (different machines, different threads —
    // anything). Their streams overlap heavily and contain duplicates.
    let mut site_a = DistinctSketch::new(&config, master_seed);
    let mut site_b = DistinctSketch::new(&config, master_seed);

    for label in 0u64..60_000 {
        site_a.insert(label);
        site_a.insert(label); // duplicates are free
    }
    for label in 40_000u64..100_000 {
        site_b.insert(label);
    }

    // Local views.
    println!("site A estimate: {}", site_a.estimate_distinct());
    println!("site B estimate: {}", site_b.estimate_distinct());

    // The union: lossless merge — exactly what one observer of both
    // streams would hold. Truth is 100_000 distinct labels.
    let union = site_a.merged(&site_b).expect("same config + seed");
    let est = union.estimate_distinct();
    println!("union estimate:  {est}");
    println!(
        "truth 100000, relative error {:.2}%",
        (est.value - 100_000.0).abs() / 1_000.0
    );

    // Post-hoc analytics on the same sketch: predicate-restricted counts.
    let even = union.estimate_distinct_where(|label| label % 2 == 0);
    println!("distinct even labels: {even}");

    assert!((est.value - 100_000.0).abs() < 5_000.0, "outside contract");
}
