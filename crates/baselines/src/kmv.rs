//! K-Minimum-Values (bottom-k) distinct counting — the *descendant* of
//! coordinated sampling.
//!
//! Keep the `k` smallest distinct hash values seen; if the k-th smallest
//! is `v` (normalized to `[0,1]`), then `n̂ = (k − 1)/v`. Where the GT
//! sketch thresholds the hash's *trailing-zero level* (a power-of-two
//! grid), KMV thresholds its *value* — a continuous refinement of the same
//! idea, later generalized into Apache DataSketches' Theta sketch. Two
//! KMV sketches with the same hash merge by unioning their value sets and
//! re-truncating to `k`, exactly mirroring the GT referee's
//! subsample-then-union.
//!
//! Included per the novelty note to show the GT estimator matches its
//! modern descendant at equal space (E6).

use crate::traits::DistinctCounter;
use gt_core::{Mergeable, Result, SketchError};
use gt_hash::{FamilySeed, HashFamily, HashFamilyKind, LevelHasher, P61};
use std::collections::BTreeSet;

/// A bottom-k sketch over the seeded pairwise hash family.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KmvSketch {
    /// The up-to-`k` smallest distinct hash values.
    values: BTreeSet<u64>,
    k: usize,
    hasher: HashFamily,
    seed: u64,
}

impl KmvSketch {
    /// Create a sketch keeping the `k ≥ 2` minimum hash values.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "KMV needs k >= 2 (estimator uses k-1)");
        KmvSketch {
            values: BTreeSet::new(),
            k,
            hasher: HashFamilyKind::Pairwise.build(FamilySeed(seed ^ 0x04B0_77B2)),
            seed,
        }
    }

    /// The configured k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of retained values (≤ k).
    pub fn retained(&self) -> usize {
        self.values.len()
    }
}

impl DistinctCounter for KmvSketch {
    fn insert(&mut self, label: u64) {
        let h = self.hasher.hash_label(label);
        if self.values.len() < self.k {
            self.values.insert(h);
        } else {
            let max = *self.values.iter().next_back().expect("non-empty at k");
            if h < max && self.values.insert(h) {
                self.values.remove(&max);
            }
        }
    }

    fn estimate(&self) -> f64 {
        if self.values.len() < self.k {
            // Sketch not yet full: the retained set is exact.
            return self.values.len() as f64;
        }
        let kth = *self.values.iter().next_back().expect("full") as f64;
        let v = kth / P61 as f64; // normalize to (0, 1)
        (self.k as f64 - 1.0) / v
    }

    fn summary_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "kmv"
    }
}

impl Mergeable for KmvSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.seed != other.seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.k != other.k {
            return Err(SketchError::ConfigMismatch {
                detail: format!("k {} vs {}", self.k, other.k),
            });
        }
        self.values.extend(other.values.iter().copied());
        while self.values.len() > self.k {
            let max = *self.values.iter().next_back().expect("non-empty");
            self.values.remove(&max);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn exact_below_k() {
        let mut s = KmvSketch::new(256, 1);
        s.extend_labels(labels(0..100));
        assert_eq!(s.estimate(), 100.0);
        assert_eq!(s.retained(), 100);
    }

    #[test]
    fn estimate_tracks_cardinality() {
        let mut s = KmvSketch::new(1024, 2);
        let n = 100_000u64;
        s.extend_labels(labels(0..n));
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        // SE ≈ 1/√k ≈ 3.1%.
        assert!(rel < 0.15, "estimate {} rel {rel}", s.estimate());
    }

    #[test]
    fn duplicate_insensitive() {
        let mut once = KmvSketch::new(128, 3);
        let mut many = KmvSketch::new(128, 3);
        once.extend_labels(labels(0..10_000));
        for _ in 0..4 {
            many.extend_labels(labels(0..10_000));
        }
        assert_eq!(once.values, many.values);
    }

    #[test]
    fn merge_matches_single_observer() {
        let mut a = KmvSketch::new(128, 4);
        let mut b = KmvSketch::new(128, 4);
        let mut whole = KmvSketch::new(128, 4);
        a.extend_labels(labels(0..20_000));
        b.extend_labels(labels(10_000..40_000));
        whole.extend_labels(labels(0..40_000));
        a.merge_from(&b).unwrap();
        assert_eq!(a.values, whole.values);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = KmvSketch::new(128, 1);
        assert!(a.merge_from(&KmvSketch::new(128, 2)).is_err());
        assert!(a.merge_from(&KmvSketch::new(64, 1)).is_err());
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_below_two_rejected() {
        KmvSketch::new(1, 1);
    }

    #[test]
    fn retained_never_exceeds_k() {
        let mut s = KmvSketch::new(64, 5);
        s.extend_labels(labels(0..5_000));
        assert_eq!(s.retained(), 64);
    }
}
