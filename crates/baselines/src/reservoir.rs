//! Uniform reservoir sampling — the paper's motivating *negative* example.
//!
//! A reservoir holds a uniform sample of the stream's **items** (with
//! multiplicity), which is the wrong object for distinct-value questions:
//!
//! 1. **Duplication bias.** Heavy labels dominate the sample, so the
//!    naive scale-up estimator `distinct(sample) · N / |sample|` wildly
//!    overcounts duplicate-heavy streams (and is not fixable without
//!    knowing the duplication structure — exactly what we don't have).
//! 2. **No union.** Two reservoirs drawn with independent randomness
//!    cannot be combined into a uniform sample of the union of *distinct
//!    labels*; concatenating them re-weights by stream length and double
//!    counts the overlap.
//!
//! The implementation is a textbook Algorithm-R reservoir. Its
//! `DistinctCounter::estimate` implements the naive scale-up so that
//! experiments E5/E6 can plot how wrong it is; the doc comments say so
//! loudly. It deliberately does **not** implement `Mergeable`.

use crate::traits::DistinctCounter;
use gt_hash::SeedRng;
use std::collections::HashSet;

/// A uniform (per-item) reservoir sample of the stream.
#[derive(Clone, Debug)]
pub struct ReservoirSample {
    sample: Vec<u64>,
    capacity: usize,
    items_seen: u64,
    rng: SeedRng,
}

impl ReservoirSample {
    /// Create a reservoir holding `capacity ≥ 1` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        ReservoirSample {
            sample: Vec::with_capacity(capacity),
            capacity,
            items_seen: 0,
            rng: SeedRng::from_seed(seed ^ 0x5E5E_0112),
        }
    }

    /// The sampled items (with multiplicity, as drawn).
    pub fn sample(&self) -> &[u64] {
        &self.sample
    }

    /// Stream length observed so far.
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Number of *distinct* labels within the sample.
    pub fn distinct_in_sample(&self) -> usize {
        self.sample.iter().collect::<HashSet<_>>().len()
    }
}

impl DistinctCounter for ReservoirSample {
    fn insert(&mut self, label: u64) {
        self.items_seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(label);
        } else {
            let j = self.rng.below(self.items_seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = label;
            }
        }
    }

    /// The **naive scale-up estimator** — known-biased, kept for the E5/E6
    /// demonstrations: `distinct(sample) · N / |sample|` assumes every
    /// label appears once, so duplicate-heavy streams are overcounted by
    /// up to the duplication factor.
    fn estimate(&self) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let d = self.distinct_in_sample() as f64;
        d * self.items_seen as f64 / self.sample.len() as f64
    }

    fn summary_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "reservoir-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_uniform_over_items() {
        // Insert 0..n once each; every item should appear in the sample
        // with probability capacity/n (check the mean occupancy of a
        // bucketed range).
        let n = 10_000u64;
        let cap = 1_000usize;
        let mut counts = [0u32; 10];
        for seed in 0..30 {
            let mut r = ReservoirSample::new(cap, seed);
            r.extend_labels(0..n);
            for &x in r.sample() {
                counts[(x / (n / 10)) as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        let expect = total as f64 / 10.0;
        for (bucket, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "bucket {bucket}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn sample_never_exceeds_capacity() {
        let mut r = ReservoirSample::new(100, 1);
        r.extend_labels(0..100_000);
        assert_eq!(r.sample().len(), 100);
        assert_eq!(r.items_seen(), 100_000);
    }

    #[test]
    fn exact_when_stream_fits() {
        let mut r = ReservoirSample::new(1_000, 2);
        r.extend_labels(0..500);
        assert_eq!(r.estimate(), 500.0);
    }

    #[test]
    fn naive_estimator_overcounts_duplicated_streams() {
        // 1000 distinct labels, each repeated 50 times. The naive
        // estimator lands near 50·1000, not 1000 — this documented failure
        // is the point of the baseline.
        let mut r = ReservoirSample::new(500, 3);
        for rep in 0..50 {
            let _ = rep;
            r.extend_labels(0..1_000);
        }
        let est = r.estimate();
        assert!(est > 10_000.0, "naive estimate should overcount, got {est}");
    }

    #[test]
    fn empty_reservoir_estimates_zero() {
        let r = ReservoirSample::new(10, 4);
        assert_eq!(r.estimate(), 0.0);
        assert_eq!(r.distinct_in_sample(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        ReservoirSample::new(0, 1);
    }
}
