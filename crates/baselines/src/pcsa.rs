//! Flajolet–Martin probabilistic counting with stochastic averaging
//! (PCSA, 1985) — the state of the art the paper compared against.
//!
//! Each of `m` bitmaps records, for the labels routed to it, which
//! trailing-zero levels have been seen. The estimator is
//! `m · 2^{R̄} / φ`, where `R̄` is the mean over bitmaps of the lowest
//! *unset* bit index and `φ ≈ 0.77351` is the Flajolet–Martin bias
//! correction constant. Standard error ≈ `0.78 / √m`.
//!
//! Strengths: mergeable by bitmap OR, very small. Weaknesses relative to
//! coordinated sampling: keeps no labels (no predicate / similarity /
//! SumDistinct queries), error floor fixed at build time, and a
//! multiplicative bias at small cardinalities (visible in E6).

use crate::traits::DistinctCounter;
use gt_core::{Mergeable, Result, SketchError};
use gt_hash::{FamilySeed, HashFamily, HashFamilyKind, LevelHasher};

/// Bits per bitmap; levels ≥ 64 cannot occur for 61-bit hash outputs.
const BITMAP_BITS: u8 = 61;

/// The Flajolet–Martin φ constant (bias correction).
const PHI: f64 = 0.77351;

/// A PCSA sketch with `m` bitmaps.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PcsaSketch {
    /// One u64 bitmap per stochastic-averaging bucket.
    bitmaps: Vec<u64>,
    hasher: HashFamily,
    seed: u64,
    /// log2(m): low output bits route to a bucket.
    bucket_bits: u32,
}

impl PcsaSketch {
    /// Create a sketch with `m` bitmaps (rounded up to a power of two),
    /// hashing with the seeded pairwise family.
    pub fn new(m: usize, seed: u64) -> Self {
        let m = m.max(1).next_power_of_two();
        let bucket_bits = m.trailing_zeros();
        assert!(bucket_bits < 32, "at most 2^31 bitmaps");
        PcsaSketch {
            bitmaps: vec![0u64; m],
            hasher: HashFamilyKind::Pairwise.build(FamilySeed(seed ^ 0x9C5A_11E0)),
            seed,
            bucket_bits,
        }
    }

    /// Number of bitmaps.
    pub fn bitmap_count(&self) -> usize {
        self.bitmaps.len()
    }

    /// Index of the lowest zero bit of a bitmap (the `R` statistic).
    fn lowest_zero(bitmap: u64) -> u32 {
        (!bitmap).trailing_zeros()
    }
}

impl DistinctCounter for PcsaSketch {
    fn insert(&mut self, label: u64) {
        let h = self.hasher.hash_label(label);
        let bucket = (h & ((1u64 << self.bucket_bits) - 1)) as usize;
        let rest = h >> self.bucket_bits;
        let level = if rest == 0 {
            BITMAP_BITS as u32 - 1
        } else {
            rest.trailing_zeros().min(BITMAP_BITS as u32 - 1)
        };
        self.bitmaps[bucket] |= 1u64 << level;
    }

    fn estimate(&self) -> f64 {
        let m = self.bitmaps.len() as f64;
        let mean_r: f64 = self
            .bitmaps
            .iter()
            .map(|&b| Self::lowest_zero(b) as f64)
            .sum::<f64>()
            / m;
        m * 2f64.powf(mean_r) / PHI
    }

    fn summary_bytes(&self) -> usize {
        self.bitmaps.len() * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "fm-pcsa"
    }
}

impl Mergeable for PcsaSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.seed != other.seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.bitmaps.len() != other.bitmaps.len() {
            return Err(SketchError::ConfigMismatch {
                detail: format!("bitmaps {} vs {}", self.bitmaps.len(), other.bitmaps.len()),
            });
        }
        for (a, b) in self.bitmaps.iter_mut().zip(other.bitmaps.iter()) {
            *a |= b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn empty_sketch_estimates_near_zero() {
        let s = PcsaSketch::new(64, 1);
        // All-zero bitmaps: R = 0 per bitmap → estimate = m/φ ≈ 83, the
        // documented small-range bias of plain PCSA.
        assert!(s.estimate() < 100.0);
    }

    #[test]
    fn estimate_tracks_cardinality_at_scale() {
        let mut s = PcsaSketch::new(256, 2);
        let n = 100_000u64;
        s.extend_labels(labels(0..n));
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        // SE ≈ 0.78/√256 ≈ 4.9%; allow 4 SEs.
        assert!(rel < 0.2, "estimate {} rel {rel}", s.estimate());
    }

    #[test]
    fn duplicate_insensitive() {
        let mut once = PcsaSketch::new(64, 3);
        let mut many = PcsaSketch::new(64, 3);
        once.extend_labels(labels(0..10_000));
        for _ in 0..5 {
            many.extend_labels(labels(0..10_000));
        }
        assert_eq!(once.estimate(), many.estimate());
        assert_eq!(once.bitmaps, many.bitmaps);
    }

    #[test]
    fn merge_is_bitmap_or_and_matches_single_observer() {
        let mut a = PcsaSketch::new(64, 4);
        let mut b = PcsaSketch::new(64, 4);
        let mut whole = PcsaSketch::new(64, 4);
        a.extend_labels(labels(0..5_000));
        b.extend_labels(labels(2_500..7_500));
        whole.extend_labels(labels(0..7_500));
        a.merge_from(&b).unwrap();
        assert_eq!(a.bitmaps, whole.bitmaps);
    }

    #[test]
    fn merge_rejects_mismatched_instances() {
        let mut a = PcsaSketch::new(64, 1);
        let b = PcsaSketch::new(64, 2);
        assert_eq!(a.merge_from(&b), Err(SketchError::SeedMismatch));
        let c = PcsaSketch::new(128, 1);
        assert!(matches!(
            a.merge_from(&c),
            Err(SketchError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn m_rounds_to_power_of_two() {
        assert_eq!(PcsaSketch::new(100, 1).bitmap_count(), 128);
        assert_eq!(PcsaSketch::new(1, 1).bitmap_count(), 1);
    }

    #[test]
    fn summary_is_small_and_fixed() {
        let mut s = PcsaSketch::new(64, 5);
        let before = s.summary_bytes();
        s.extend_labels(labels(0..100_000));
        assert_eq!(s.summary_bytes(), before);
        assert_eq!(before, 64 * 8);
    }

    #[test]
    fn lowest_zero_statistic() {
        assert_eq!(PcsaSketch::lowest_zero(0b0), 0);
        assert_eq!(PcsaSketch::lowest_zero(0b1), 1);
        assert_eq!(PcsaSketch::lowest_zero(0b1011), 2);
        assert_eq!(PcsaSketch::lowest_zero(u64::MAX), 64);
    }
}
