//! # gt-baselines — comparator algorithms for the evaluation
//!
//! Every algorithm the experiments compare the Gibbons–Tirthapura sketch
//! against, implemented from scratch behind one trait so harnesses are
//! generic:
//!
//! * [`exact`] — a hash-set counter: ground truth and the memory ceiling.
//! * [`pcsa`] — Flajolet–Martin *Probabilistic Counting with Stochastic
//!   Averaging* (1985): the standard of the paper's era. Mergeable (bitmap
//!   OR) but keeps no labels, so it cannot answer predicate/similarity
//!   queries, and its relative error is fixed by its bitmap count.
//! * [`loglog`] — Durand–Flajolet LogLog (the direction the field took
//!   after the paper; HyperLogLog's direct ancestor). Tiny space,
//!   mergeable (register max), same no-labels limitation.
//! * [`hyperloglog`] — full HyperLogLog with harmonic mean and the
//!   small-range linear-counting correction: the modern endpoint of that
//!   lineage.
//! * [`linear_counting`] — Whang et al. linear counting: excellent at small
//!   cardinalities, linear space in the range it can count.
//! * [`kmv`] — K-Minimum-Values / bottom-k: the *descendant* of this
//!   paper's coordinated sampling (per the novelty note, what Apache
//!   DataSketches' Theta sketch generalizes). Mergeable, keeps hashed
//!   values.
//! * [`reservoir`] — uniform reservoir sampling: the strawman the paper's
//!   introduction dismisses. Deliberately included to *demonstrate* (E5)
//!   that uncoordinated samples are biased for distinct counting and do
//!   not union.
//!
//! All randomized baselines draw their hash functions from
//! `gt-hash`'s seeded pairwise family, so equal-seed instances are
//! coordinated where the algorithm supports it and comparisons are
//! apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod hyperloglog;
pub mod kmv;
pub mod linear_counting;
pub mod loglog;
pub mod pcsa;
pub mod reservoir;
pub mod traits;

pub use exact::ExactDistinct;
pub use hyperloglog::HyperLogLog;
pub use kmv::KmvSketch;
pub use linear_counting::LinearCounter;
pub use loglog::LogLogSketch;
pub use pcsa::PcsaSketch;
pub use reservoir::ReservoirSample;
pub use traits::DistinctCounter;
