//! Exact distinct counting with a hash set — ground truth for every
//! experiment, and the space ceiling the sketches are measured against.

use crate::traits::DistinctCounter;
use gt_core::{Mergeable, Result};
use std::collections::HashSet;

/// Exact distinct counter (stores every distinct label).
#[derive(Clone, Debug, Default)]
pub struct ExactDistinct {
    labels: HashSet<u64>,
}

impl ExactDistinct {
    /// Create an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact distinct count.
    pub fn count(&self) -> u64 {
        self.labels.len() as u64
    }

    /// Whether a label was observed.
    pub fn contains(&self, label: u64) -> bool {
        self.labels.contains(&label)
    }

    /// Iterate over the distinct labels.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.labels.iter().copied()
    }
}

impl DistinctCounter for ExactDistinct {
    fn insert(&mut self, label: u64) {
        self.labels.insert(label);
    }

    fn estimate(&self) -> f64 {
        self.labels.len() as f64
    }

    fn summary_bytes(&self) -> usize {
        // Conservative: capacity × (key + ~1 byte control metadata), the
        // layout of a swiss-table HashSet.
        self.labels.capacity() * (std::mem::size_of::<u64>() + 1)
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

impl Mergeable for ExactDistinct {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        self.labels.extend(other.labels.iter().copied());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct_not_total() {
        let mut e = ExactDistinct::new();
        for _ in 0..5 {
            for l in 0..10 {
                e.insert(l);
            }
        }
        assert_eq!(e.count(), 10);
        assert_eq!(e.estimate(), 10.0);
    }

    #[test]
    fn merge_is_set_union() {
        let mut a = ExactDistinct::new();
        let mut b = ExactDistinct::new();
        a.extend_labels(0..100);
        b.extend_labels(50..150);
        a.merge_from(&b).unwrap();
        assert_eq!(a.count(), 150);
    }

    #[test]
    fn space_grows_linearly() {
        let mut e = ExactDistinct::new();
        e.extend_labels(0..100_000);
        assert!(e.summary_bytes() >= 100_000 * 8);
    }

    #[test]
    fn contains_and_iter() {
        let mut e = ExactDistinct::new();
        e.extend_labels([3, 1, 4]);
        assert!(e.contains(4));
        assert!(!e.contains(2));
        let mut v: Vec<u64> = e.iter().collect();
        v.sort_unstable();
        assert_eq!(v, vec![1, 3, 4]);
    }
}
