//! Durand–Flajolet LogLog counting — where the field went *after* the
//! paper (HyperLogLog's direct ancestor), included to situate the GT
//! sketch on the modern space/accuracy frontier.
//!
//! `m` registers each remember the maximum "rank" (1 + trailing zeros)
//! seen among the labels routed to them; the estimate is
//! `α_m · m · 2^{mean register}`. Standard error ≈ `1.30 / √m` — worse
//! per register than HyperLogLog's harmonic mean but the same structure.
//! Like PCSA it is mergeable (register-wise max) and label-free.

use crate::traits::DistinctCounter;
use gt_core::{Mergeable, Result, SketchError};
use gt_hash::{FamilySeed, HashFamily, HashFamilyKind, LevelHasher};

/// A LogLog sketch with `m` one-byte registers.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LogLogSketch {
    registers: Vec<u8>,
    hasher: HashFamily,
    seed: u64,
    bucket_bits: u32,
}

/// The asymptotic `α` constant of LogLog (`≈ 0.39701` as `m → ∞`);
/// adequate for `m ≥ 64`, which the constructor enforces.
const ALPHA_INF: f64 = 0.39701;

impl LogLogSketch {
    /// Create a sketch with `m ≥ 64` registers (rounded up to a power of
    /// two; the asymptotic bias constant is only valid for large `m`).
    pub fn new(m: usize, seed: u64) -> Self {
        let m = m.max(64).next_power_of_two();
        LogLogSketch {
            registers: vec![0u8; m],
            hasher: HashFamilyKind::Pairwise.build(FamilySeed(seed ^ 0x1061_0610)),
            seed,
            bucket_bits: m.trailing_zeros(),
        }
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }
}

impl DistinctCounter for LogLogSketch {
    fn insert(&mut self, label: u64) {
        let h = self.hasher.hash_label(label);
        let bucket = (h & ((1u64 << self.bucket_bits) - 1)) as usize;
        let rest = h >> self.bucket_bits;
        let rank = if rest == 0 {
            61
        } else {
            rest.trailing_zeros() as u8 + 1
        };
        if rank > self.registers[bucket] {
            self.registers[bucket] = rank;
        }
    }

    fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mean: f64 = self.registers.iter().map(|&r| r as f64).sum::<f64>() / m;
        ALPHA_INF * m * 2f64.powf(mean)
    }

    fn summary_bytes(&self) -> usize {
        self.registers.len()
    }

    fn name(&self) -> &'static str {
        "loglog"
    }
}

impl Mergeable for LogLogSketch {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.seed != other.seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.registers.len() != other.registers.len() {
            return Err(SketchError::ConfigMismatch {
                detail: format!(
                    "registers {} vs {}",
                    self.registers.len(),
                    other.registers.len()
                ),
            });
        }
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn estimate_tracks_large_cardinalities() {
        let mut s = LogLogSketch::new(512, 1);
        let n = 200_000u64;
        s.extend_labels(labels(0..n));
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        // SE ≈ 1.3/√512 ≈ 5.7%; allow ~4 SEs.
        assert!(rel < 0.25, "estimate {} rel {rel}", s.estimate());
    }

    #[test]
    fn duplicate_insensitive() {
        let mut once = LogLogSketch::new(64, 2);
        let mut many = LogLogSketch::new(64, 2);
        once.extend_labels(labels(0..50_000));
        for _ in 0..3 {
            many.extend_labels(labels(0..50_000));
        }
        assert_eq!(once.registers, many.registers);
    }

    #[test]
    fn merge_is_register_max() {
        let mut a = LogLogSketch::new(64, 3);
        let mut b = LogLogSketch::new(64, 3);
        let mut whole = LogLogSketch::new(64, 3);
        a.extend_labels(labels(0..30_000));
        b.extend_labels(labels(15_000..60_000));
        whole.extend_labels(labels(0..60_000));
        a.merge_from(&b).unwrap();
        assert_eq!(a.registers, whole.registers);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = LogLogSketch::new(64, 1);
        assert!(a.merge_from(&LogLogSketch::new(64, 9)).is_err());
        assert!(a.merge_from(&LogLogSketch::new(128, 1)).is_err());
    }

    #[test]
    fn space_is_one_byte_per_register() {
        let s = LogLogSketch::new(256, 4);
        assert_eq!(s.summary_bytes(), 256);
    }

    #[test]
    fn minimum_register_count_enforced() {
        assert_eq!(LogLogSketch::new(1, 1).register_count(), 64);
    }
}
