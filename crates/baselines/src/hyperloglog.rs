//! HyperLogLog (Flajolet–Fusy–Gandouet–Meunier 2007) — the modern
//! endpoint of the FM → LogLog lineage, included so the frontier (E6)
//! spans the whole design space the GT paper sits in.
//!
//! `m` registers hold the max rank per bucket; the estimate uses the
//! **harmonic** mean, `α_m · m² / Σ 2^{-M_j}`, with the two standard
//! corrections: linear counting below `2.5 m` (the small-range hole that
//! plain LogLog falls into — visible in E6's 64 KiB row) and the
//! large-range correction being unnecessary here (61-bit hash space).
//! Standard error ≈ `1.04 / √m`. Mergeable by register-wise max; keeps no
//! labels, so no predicate/similarity/SumDistinct queries.

use crate::traits::DistinctCounter;
use gt_core::{Mergeable, Result, SketchError};
use gt_hash::{FamilySeed, HashFamily, HashFamilyKind, LevelHasher};

/// A HyperLogLog sketch with `m` one-byte registers.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    hasher: HashFamily,
    seed: u64,
    bucket_bits: u32,
}

impl HyperLogLog {
    /// Create a sketch with `m ≥ 16` registers (rounded up to a power of
    /// two).
    pub fn new(m: usize, seed: u64) -> Self {
        let m = m.max(16).next_power_of_two();
        HyperLogLog {
            registers: vec![0u8; m],
            hasher: HashFamilyKind::Pairwise.build(FamilySeed(seed ^ 0x4177_0607)),
            seed,
            bucket_bits: m.trailing_zeros(),
        }
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The bias-correction constant `α_m`.
    fn alpha(m: usize) -> f64 {
        match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }
}

impl DistinctCounter for HyperLogLog {
    fn insert(&mut self, label: u64) {
        let h = self.hasher.hash_label(label);
        let bucket = (h & ((1u64 << self.bucket_bits) - 1)) as usize;
        let rest = h >> self.bucket_bits;
        let rank = if rest == 0 {
            61
        } else {
            rest.trailing_zeros() as u8 + 1
        };
        if rank > self.registers[bucket] {
            self.registers[bucket] = rank;
        }
    }

    fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let harmonic: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = Self::alpha(self.registers.len()) * m * m / harmonic;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    fn summary_bytes(&self) -> usize {
        self.registers.len()
    }

    fn name(&self) -> &'static str {
        "hyperloglog"
    }
}

impl Mergeable for HyperLogLog {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.seed != other.seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.registers.len() != other.registers.len() {
            return Err(SketchError::ConfigMismatch {
                detail: format!(
                    "registers {} vs {}",
                    self.registers.len(),
                    other.registers.len()
                ),
            });
        }
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn accurate_at_scale() {
        let mut s = HyperLogLog::new(1024, 1);
        let n = 300_000u64;
        s.extend_labels(labels(0..n));
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        // SE ≈ 1.04/√1024 ≈ 3.3%; allow ~4 SEs.
        assert!(rel < 0.13, "estimate {} rel {rel}", s.estimate());
    }

    #[test]
    fn small_range_correction_handles_tiny_counts() {
        // This is the regime plain LogLog gets wrong.
        let mut s = HyperLogLog::new(4096, 2);
        s.extend_labels(labels(0..100));
        let rel = (s.estimate() - 100.0).abs() / 100.0;
        assert!(rel < 0.15, "estimate {}", s.estimate());
    }

    #[test]
    fn empty_estimates_zero() {
        let s = HyperLogLog::new(64, 3);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn duplicate_insensitive_and_mergeable() {
        let mut a = HyperLogLog::new(256, 4);
        let mut b = HyperLogLog::new(256, 4);
        let mut whole = HyperLogLog::new(256, 4);
        a.extend_labels(labels(0..20_000));
        a.extend_labels(labels(0..20_000)); // dup
        b.extend_labels(labels(10_000..40_000));
        whole.extend_labels(labels(0..40_000));
        a.merge_from(&b).unwrap();
        assert_eq!(a.registers, whole.registers);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = HyperLogLog::new(64, 1);
        assert!(a.merge_from(&HyperLogLog::new(64, 2)).is_err());
        assert!(a.merge_from(&HyperLogLog::new(128, 1)).is_err());
    }

    #[test]
    fn minimum_register_count() {
        assert_eq!(HyperLogLog::new(1, 1).register_count(), 16);
    }

    #[test]
    fn beats_plain_loglog_in_the_small_range() {
        let n = 1_000u64;
        let mut hll = HyperLogLog::new(4096, 5);
        let mut ll = crate::loglog::LogLogSketch::new(4096, 5);
        hll.extend_labels(labels(0..n));
        ll.extend_labels(labels(0..n));
        let hll_err = (hll.estimate() - n as f64).abs() / n as f64;
        let ll_err = (ll.estimate() - n as f64).abs() / n as f64;
        assert!(
            hll_err < ll_err,
            "hll {hll_err} should beat loglog {ll_err} at n << m"
        );
    }
}
