//! The common interface all distinct-counting baselines implement, so the
//! experiment harness can sweep algorithms generically.

pub use gt_core::Mergeable;

/// A streaming distinct-count estimator.
///
/// ```
/// use gt_baselines::{DistinctCounter, HyperLogLog, KmvSketch, PcsaSketch};
/// fn run(mut c: impl DistinctCounter) -> f64 {
///     c.extend_labels((0..50_000u64).map(gt_hash::fold61));
///     c.estimate()
/// }
/// for est in [run(PcsaSketch::new(256, 1)), run(KmvSketch::new(1024, 2)), run(HyperLogLog::new(1024, 3))] {
///     assert!((est - 50_000.0).abs() < 0.2 * 50_000.0, "{est}");
/// }
/// ```
pub trait DistinctCounter {
    /// Observe one label from `[0, 2^61 − 1)`.
    fn insert(&mut self, label: u64);

    /// Current estimate of the number of distinct labels observed.
    fn estimate(&self) -> f64;

    /// Bytes of summary state (for equal-space comparisons, E6). Counts
    /// the resident summary, not transient buffers.
    fn summary_bytes(&self) -> usize;

    /// A short stable name for tables.
    fn name(&self) -> &'static str;

    /// Observe every label from an iterator.
    fn extend_labels(&mut self, labels: impl IntoIterator<Item = u64>)
    where
        Self: Sized,
    {
        for l in labels {
            self.insert(l);
        }
    }
}

impl DistinctCounter for gt_core::DistinctSketch {
    fn insert(&mut self, label: u64) {
        gt_core::DistinctSketch::insert(self, label);
    }

    fn estimate(&self) -> f64 {
        self.estimate_distinct().value
    }

    fn summary_bytes(&self) -> usize {
        self.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "gt-sketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::SketchConfig;

    #[test]
    fn gt_sketch_implements_the_trait() {
        let mut s = gt_core::DistinctSketch::new(&SketchConfig::new(0.1, 0.1).unwrap(), 1);
        DistinctCounter::extend_labels(&mut s, (0..100).map(gt_hash::fold61));
        assert_eq!(DistinctCounter::estimate(&s), 100.0);
        assert!(s.summary_bytes() > 0);
        assert_eq!(DistinctCounter::name(&s), "gt-sketch");
    }
}
