//! Linear counting (Whang, Vander-Zanden & Taylor 1990).
//!
//! Hash each label into a bitmap of `m` bits; estimate
//! `n̂ = −m · ln(V)` where `V` is the fraction of bits still zero.
//! Extremely accurate while the bitmap is sparse, useless once it
//! saturates (`V → 0`), and the bitmap must scale *linearly* with the
//! cardinality — the contrast that motivates logarithmic-space sketches.
//! Mergeable by bitmap OR.

use crate::traits::DistinctCounter;
use gt_core::{Mergeable, Result, SketchError};
use gt_hash::{FamilySeed, HashFamily, HashFamilyKind, LevelHasher};

/// A linear-counting bitmap.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LinearCounter {
    words: Vec<u64>,
    bits: usize,
    hasher: HashFamily,
    seed: u64,
}

impl LinearCounter {
    /// Create a counter with `bits` bitmap bits (rounded up to a multiple
    /// of 64, minimum 64).
    pub fn new(bits: usize, seed: u64) -> Self {
        let bits = bits.max(64).next_multiple_of(64);
        LinearCounter {
            words: vec![0u64; bits / 64],
            bits,
            hasher: HashFamilyKind::Pairwise.build(FamilySeed(seed ^ 0x11EA_C017)),
            seed,
        }
    }

    /// Bitmap size in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of zero bits remaining.
    pub fn zero_bits(&self) -> usize {
        self.bits
            - self
                .words
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Whether the bitmap has saturated (estimate undefined / infinite).
    pub fn is_saturated(&self) -> bool {
        self.zero_bits() == 0
    }
}

impl DistinctCounter for LinearCounter {
    fn insert(&mut self, label: u64) {
        let h = self.hasher.hash_label(label);
        let bit = (h % self.bits as u64) as usize;
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    fn estimate(&self) -> f64 {
        let v = self.zero_bits() as f64 / self.bits as f64;
        if v == 0.0 {
            // Saturated: report the (finite) estimate for a single
            // remaining zero bit as a floor, flagged via is_saturated().
            return self.bits as f64 * (self.bits as f64).ln();
        }
        -(self.bits as f64) * v.ln()
    }

    fn summary_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "linear-counting"
    }
}

impl Mergeable for LinearCounter {
    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.seed != other.seed {
            return Err(SketchError::SeedMismatch);
        }
        if self.bits != other.bits {
            return Err(SketchError::ConfigMismatch {
                detail: format!("bits {} vs {}", self.bits, other.bits),
            });
        }
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(range: std::ops::Range<u64>) -> impl Iterator<Item = u64> {
        range.map(gt_hash::fold61)
    }

    #[test]
    fn accurate_in_the_sparse_regime() {
        let mut c = LinearCounter::new(1 << 16, 1);
        let n = 10_000u64; // load factor ~0.15
        c.extend_labels(labels(0..n));
        let rel = (c.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 0.03, "estimate {} rel {rel}", c.estimate());
    }

    #[test]
    fn empty_estimates_zero() {
        let c = LinearCounter::new(1024, 2);
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.zero_bits(), 1024);
    }

    #[test]
    fn saturation_is_detected() {
        let mut c = LinearCounter::new(64, 3);
        c.extend_labels(labels(0..10_000));
        assert!(c.is_saturated());
        assert!(c.estimate().is_finite());
    }

    #[test]
    fn duplicate_insensitive() {
        let mut once = LinearCounter::new(4096, 4);
        let mut many = LinearCounter::new(4096, 4);
        once.extend_labels(labels(0..500));
        for _ in 0..7 {
            many.extend_labels(labels(0..500));
        }
        assert_eq!(once.words, many.words);
    }

    #[test]
    fn merge_is_bitmap_or() {
        let mut a = LinearCounter::new(4096, 5);
        let mut b = LinearCounter::new(4096, 5);
        let mut whole = LinearCounter::new(4096, 5);
        a.extend_labels(labels(0..300));
        b.extend_labels(labels(200..600));
        whole.extend_labels(labels(0..600));
        a.merge_from(&b).unwrap();
        assert_eq!(a.words, whole.words);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = LinearCounter::new(4096, 1);
        assert!(a.merge_from(&LinearCounter::new(4096, 2)).is_err());
        assert!(a.merge_from(&LinearCounter::new(8192, 1)).is_err());
    }

    #[test]
    fn bits_round_to_word_multiple() {
        assert_eq!(LinearCounter::new(100, 1).bits(), 128);
        assert_eq!(LinearCounter::new(1, 1).bits(), 64);
    }
}
