//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on its
//! public types for downstream consumers, but nothing in-tree serializes
//! through serde (the wire format is the hand-rolled codec in
//! `gt-streams`). The build environment has no registry access, so these
//! derives expand to nothing: the derive positions stay valid and the
//! trait bounds stay satisfiable without pulling in the real crate.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
