//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std mutex is
//! transparently recovered, matching parking_lot's "no poisoning"
//! contract). Only the `Mutex` surface the workspace uses is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u64);
        *m.lock() += 2;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }
}
