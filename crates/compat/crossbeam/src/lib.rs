//! Offline stand-in for `crossbeam`.
//!
//! Built on std: [`scope`] wraps `std::thread::scope` (returning
//! `thread::Result` like crossbeam does, with child panics surfacing as
//! `Err` rather than unwinding), [`channel::unbounded`] wraps
//! `std::sync::mpsc::channel`, and [`utils::CachePadded`] is an alignment
//! wrapper. Only the surface the workspace uses is provided.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle namespace (mirrors `crossbeam::thread`).
pub mod thread {
    /// A scope for spawning borrowing threads; passed to the [`super::scope`]
    /// closure and to every spawned child closure.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread; joinable for its result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. Crossbeam passes the scope
        /// back into the child closure so children can themselves spawn.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }
}

/// Run `f` with a thread scope. All spawned threads are joined before this
/// returns. Returns `Err` if any unjoined child (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: FnOnce(&thread::Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&thread::Scope { inner: s }))
    }))
}

/// MPMC-ish channels (mirrors `crossbeam::channel` for the unbounded,
/// single-consumer usage in this workspace).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Utility types (mirrors `crossbeam::utils`).
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent values never share
    /// a cache line (matches crossbeam's x86_64 alignment).
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value`.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap into the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("child panicked"))
                .sum::<u64>()
        })
        .expect("scope panicked");
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_is_an_err() {
        let out = scope(|s| {
            let _ = s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .expect("scope panicked");
        assert_eq!(n, 42);
    }

    #[test]
    fn channel_fifo() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn cache_padded_alignment() {
        let padded = utils::CachePadded::new(3u8);
        assert_eq!(*padded, 3);
        assert_eq!(std::mem::align_of_val(&padded), 128);
    }
}
