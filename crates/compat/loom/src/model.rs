//! The exhaustive schedule explorer.
//!
//! A model is a closure producing fresh shared state `S` plus a vector of
//! [`Actor`]s. The explorer enumerates every interleaving of the actors'
//! step sequences via depth-first search with full replay: each schedule
//! rebuilds the model from scratch and re-executes the recorded choice
//! prefix, then extends it greedily until no actor can move. This is the
//! same replay discipline real `loom` uses, which is why models must be
//! deterministic — a step may depend only on actor-local and shared state,
//! never on wall-clock time or ambient randomness.

/// One thread of a concurrency model: a deterministic sequence of atomic
/// steps over shared state `S`.
pub trait Actor<S> {
    /// Whether the actor's next step can run given the current shared state.
    ///
    /// Return `false` to model blocking (e.g. waiting on a mutex another
    /// actor holds). The explorer never schedules a disabled actor, which
    /// both prunes impossible interleavings and lets it detect deadlock:
    /// a state where no unfinished actor is enabled.
    fn enabled(&self, _shared: &S) -> bool {
        true
    }

    /// Whether the actor has no steps left.
    fn finished(&self) -> bool;

    /// Execute the actor's next atomic step.
    ///
    /// Called only when `!finished()` and `enabled()` returned `true` for
    /// the current state. Must be deterministic.
    fn step(&mut self, shared: &mut S);
}

/// Caps on the exploration, so an over-wide model fails loudly instead of
/// hanging the test suite.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum number of complete schedules to execute before giving up
    /// (reported via [`Report::truncated`]).
    pub max_schedules: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        // Protocol models in this workspace are sized to ~10^4 schedules;
        // an order of magnitude of headroom keeps runtimes in seconds while
        // still catching accidental exponential blowups.
        ExploreLimits {
            max_schedules: 200_000,
        }
    }
}

/// What the exploration covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Complete schedules executed (including those ending in deadlock).
    pub schedules: usize,
    /// Schedules that ended with unfinished-but-disabled actors.
    pub deadlocks: usize,
    /// Longest schedule, in steps.
    pub max_depth: usize,
    /// True if `max_schedules` was hit before the space was exhausted.
    pub truncated: bool,
}

/// A decision point along the current schedule: which actors were runnable
/// and which branch the DFS is currently taking.
struct Frame {
    choices: Vec<usize>,
    pos: usize,
}

/// Runnable actor indices in the given state.
fn runnable<S>(actors: &[Box<dyn Actor<S>>], shared: &S) -> Vec<usize> {
    actors
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.finished() && a.enabled(shared))
        .map(|(i, _)| i)
        .collect()
}

/// Exhaustively explore every interleaving of the model produced by `mk`.
///
/// `mk` is invoked once per schedule and must return an identical fresh
/// model each time. `on_complete` is invoked with the final shared state of
/// every schedule in which all actors finished (deadlocked schedules are
/// counted in the report instead). Violations found by `on_complete` — or
/// recorded inside `S` by the actors themselves — should be accumulated by
/// the caller and asserted once after `explore` returns.
pub fn explore<S, F, C>(mut mk: F, mut on_complete: C, limits: ExploreLimits) -> Report
where
    F: FnMut() -> (S, Vec<Box<dyn Actor<S>>>),
    C: FnMut(&S),
{
    let mut report = Report::default();
    let mut stack: Vec<Frame> = Vec::new();

    loop {
        // Replay the committed prefix on a fresh model.
        let (mut shared, mut actors) = mk();
        for frame in &stack {
            let actor = frame.choices[frame.pos];
            debug_assert!(
                !actors[actor].finished() && actors[actor].enabled(&shared),
                "model is nondeterministic: replayed choice is not runnable"
            );
            actors[actor].step(&mut shared);
        }

        // Extend greedily, always taking the first runnable actor, recording
        // each decision point so backtracking can take the siblings later.
        loop {
            let choices = runnable(&actors, &shared);
            if choices.is_empty() {
                report.schedules += 1;
                report.max_depth = report.max_depth.max(stack.len());
                if actors.iter().all(|a| a.finished()) {
                    on_complete(&shared);
                } else {
                    report.deadlocks += 1;
                }
                break;
            }
            let actor = choices[0];
            stack.push(Frame { choices, pos: 0 });
            actors[actor].step(&mut shared);
        }

        if report.schedules >= limits.max_schedules {
            report.truncated = true;
            return report;
        }

        // Backtrack to the deepest decision point with an untried sibling.
        loop {
            match stack.last_mut() {
                None => return report,
                Some(top) => {
                    top.pos += 1;
                    if top.pos < top.choices.len() {
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An actor that takes `n` steps, each bumping a per-actor counter in
    /// the shared state.
    struct Noop {
        id: usize,
        left: u32,
    }
    impl Actor<Vec<u32>> for Noop {
        fn finished(&self) -> bool {
            self.left == 0
        }
        fn step(&mut self, shared: &mut Vec<u32>) {
            shared[self.id] += 1;
            self.left -= 1;
        }
    }

    type NoopModel = (Vec<u32>, Vec<Box<dyn Actor<Vec<u32>>>>);

    fn noops(steps: &[u32]) -> NoopModel {
        let actors = steps
            .iter()
            .enumerate()
            .map(|(id, &left)| Box::new(Noop { id, left }) as Box<dyn Actor<Vec<u32>>>)
            .collect();
        (vec![0; steps.len()], actors)
    }

    #[test]
    fn schedule_count_is_multinomial() {
        // Interleavings of step sequences of lengths (2, 3): C(5,2) = 10.
        let mut completions = 0usize;
        let report = explore(
            || noops(&[2, 3]),
            |s| {
                completions += 1;
                assert_eq!(s, &vec![2, 3]);
            },
            ExploreLimits::default(),
        );
        assert_eq!(report.schedules, 10);
        assert_eq!(completions, 10);
        assert_eq!(report.deadlocks, 0);
        assert_eq!(report.max_depth, 5);
        assert!(!report.truncated);

        // Three single-step actors: 3! = 6.
        let report = explore(|| noops(&[1, 1, 1]), |_| {}, ExploreLimits::default());
        assert_eq!(report.schedules, 6);
    }

    #[test]
    fn truncation_is_reported() {
        let report = explore(
            || noops(&[2, 3]),
            |_| {},
            ExploreLimits { max_schedules: 4 },
        );
        assert!(report.truncated);
        assert_eq!(report.schedules, 4);
    }

    /// A split read-modify-write: the classic lost-update race.
    struct RacyIncr {
        staged: Option<u64>,
        left: u32,
    }
    #[derive(Default)]
    struct Cell {
        value: u64,
    }
    impl Actor<Cell> for RacyIncr {
        fn finished(&self) -> bool {
            self.left == 0
        }
        fn step(&mut self, shared: &mut Cell) {
            match self.staged.take() {
                None => self.staged = Some(shared.value),
                Some(v) => shared.value = v + 1,
            }
            self.left -= 1;
        }
    }

    #[test]
    fn finds_lost_update() {
        let mut outcomes = Vec::new();
        explore(
            || {
                let actors: Vec<Box<dyn Actor<Cell>>> = vec![
                    Box::new(RacyIncr {
                        staged: None,
                        left: 2,
                    }),
                    Box::new(RacyIncr {
                        staged: None,
                        left: 2,
                    }),
                ];
                (Cell::default(), actors)
            },
            |s| outcomes.push(s.value),
            ExploreLimits::default(),
        );
        // Both the correct outcome and the lost update must be witnessed.
        assert!(outcomes.contains(&2));
        assert!(outcomes.contains(&1));
    }

    /// Lock-protected increment: `enabled` models mutex blocking.
    struct LockedIncr {
        holding: bool,
        left: u32,
    }
    #[derive(Default)]
    struct Locked {
        held_by: Option<usize>,
        value: u64,
    }
    impl LockedIncr {
        fn id(&self) -> usize {
            self.left as usize % 2
        }
    }
    impl Actor<Locked> for LockedIncr {
        fn enabled(&self, shared: &Locked) -> bool {
            self.holding || shared.held_by.is_none()
        }
        fn finished(&self) -> bool {
            self.left == 0
        }
        fn step(&mut self, shared: &mut Locked) {
            if !self.holding {
                shared.held_by = Some(self.id());
                self.holding = true;
            } else {
                shared.value += 1;
                shared.held_by = None;
                self.holding = false;
            }
            self.left -= 1;
        }
    }

    #[test]
    fn mutex_enabledness_prunes_and_never_loses_updates() {
        let mut outcomes = Vec::new();
        let report = explore(
            || {
                let actors: Vec<Box<dyn Actor<Locked>>> = vec![
                    Box::new(LockedIncr {
                        holding: false,
                        left: 2,
                    }),
                    Box::new(LockedIncr {
                        holding: false,
                        left: 2,
                    }),
                ];
                (Locked::default(), actors)
            },
            |s| outcomes.push(s.value),
            ExploreLimits::default(),
        );
        // Acquire/release pairs cannot interleave, so only 2 schedules
        // survive pruning (A's critical section first, or B's).
        assert_eq!(report.schedules, 2);
        assert_eq!(report.deadlocks, 0);
        assert!(outcomes.iter().all(|&v| v == 2));
    }

    /// Two locks acquired in opposite orders: the textbook deadlock.
    struct OrderedLocker {
        first: usize,
        second: usize,
        acquired: usize,
    }
    #[derive(Default)]
    struct TwoLocks {
        held: [bool; 2],
    }
    impl Actor<TwoLocks> for OrderedLocker {
        fn enabled(&self, shared: &TwoLocks) -> bool {
            let want = if self.acquired == 0 {
                self.first
            } else {
                self.second
            };
            !shared.held[want]
        }
        fn finished(&self) -> bool {
            self.acquired == 2
        }
        fn step(&mut self, shared: &mut TwoLocks) {
            let want = if self.acquired == 0 {
                self.first
            } else {
                self.second
            };
            shared.held[want] = true;
            self.acquired += 1;
        }
    }

    #[test]
    fn detects_deadlock() {
        let report = explore(
            || {
                let actors: Vec<Box<dyn Actor<TwoLocks>>> = vec![
                    Box::new(OrderedLocker {
                        first: 0,
                        second: 1,
                        acquired: 0,
                    }),
                    Box::new(OrderedLocker {
                        first: 1,
                        second: 0,
                        acquired: 0,
                    }),
                ];
                (TwoLocks::default(), actors)
            },
            |_| {},
            ExploreLimits::default(),
        );
        assert!(report.deadlocks > 0);
    }
}
