//! Offline stand-in for `loom`: an exhaustive stateless model checker for
//! actor-step concurrency models.
//!
//! The real `loom` crate intercepts `std::sync` primitives and explores every
//! interleaving permitted by the C11 memory model. This workspace forbids
//! `unsafe` and has no registry access, so we vendor the part of loom's value
//! we actually need: *exhaustive schedule enumeration with enabledness
//! pruning*. A protocol under test is expressed as a set of [`Actor`]s, each a
//! deterministic sequence of atomic steps over shared state `S`. The
//! [`explore`] driver enumerates every interleaving of those step sequences
//! (every way to merge the per-actor programs), replaying the model from
//! scratch along each schedule, exactly like loom's DFS-with-replay engine.
//!
//! Because steps mutate `S` under the checker's control, the model is
//! sequentially consistent — which matches the system under test: the real
//! propagation/snapshot protocol in `gt-core::concurrent` does every shared
//! write under a `Mutex`, and `forbid(unsafe_code)` keeps weaker orderings
//! out of reach. What the checker buys us is coverage of *logical* races:
//! stale reads between lock regions, lost updates, non-monotone publication,
//! deadlock.
//!
//! Invariant violations should be recorded *into* the shared state (e.g. a
//! `violations: Vec<String>` field) rather than asserted with `panic!`, so a
//! negative test (a deliberately buggy model) can assert that the checker
//! *does* find the bug.
//!
//! ```
//! use loom::model::{explore, Actor, ExploreLimits};
//!
//! struct Counter { value: u64 }
//! struct Incr { steps_left: u32, staged: Option<u64> }
//! impl Actor<Counter> for Incr {
//!     fn finished(&self) -> bool { self.steps_left == 0 }
//!     fn step(&mut self, s: &mut Counter) {
//!         // Read-modify-write split across two steps: racy by design.
//!         match self.staged.take() {
//!             None => self.staged = Some(s.value),
//!             Some(v) => s.value = v + 1,
//!         }
//!         self.steps_left -= 1;
//!     }
//! }
//!
//! let mut lost_update_seen = false;
//! let report = explore(
//!     || {
//!         (Counter { value: 0 }, vec![
//!             Box::new(Incr { steps_left: 2, staged: None }) as Box<dyn Actor<Counter>>,
//!             Box::new(Incr { steps_left: 2, staged: None }),
//!         ])
//!     },
//!     |s| {
//!         if s.value != 2 { lost_update_seen = true; }
//!     },
//!     ExploreLimits::default(),
//! );
//! assert_eq!(report.schedules, 6); // C(4, 2) interleavings of 2+2 steps
//! assert!(lost_update_seen); // the checker found the lost update
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;

pub use model::{explore, Actor, ExploreLimits, Report};
