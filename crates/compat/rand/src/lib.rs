//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no registry access, so this crate provides
//! the (small) slice of the rand API the workspace actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range` (half-open and inclusive integer ranges),
//! and `gen_bool`. The generator is xoroshiro128+ seeded via SplitMix64 —
//! deterministic for a given seed, statistically solid for workload
//! synthesis and fault injection (its only jobs here), and explicitly
//! **not** the upstream `SmallRng` stream (seeds produce different
//! sequences than rand 0.8 would).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a single `u64` via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from all bits ("standard" distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value in the range; panics on an empty range, matching
    /// upstream rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128) - (start as i128) + 1;
                assert!(span > 0, "cannot sample empty range");
                ((start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing RNG extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`. Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoroshiro128+).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s0 = splitmix64(&mut sm);
            let mut s1 = splitmix64(&mut sm);
            if s0 == 0 && s1 == 0 {
                s1 = 0x9E37_79B9_7F4A_7C15; // xoroshiro state must be nonzero
            }
            SmallRng { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let result = s0.wrapping_add(s1);
            s1 ^= s0;
            self.s0 = s0.rotate_left(24) ^ s1 ^ (s1 << 16);
            self.s1 = s1.rotate_left(37);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let mut c = SmallRng::seed_from_u64(43);
            assert_ne!(a.next_u64(), c.next_u64());
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..10_000 {
                let x = rng.gen_range(4usize..17);
                assert!((4..17).contains(&x));
                let y = rng.gen_range(0u64..=3);
                assert!(y <= 3);
                let z: f64 = rng.gen();
                assert!((0.0..1.0).contains(&z));
            }
        }

        #[test]
        #[should_panic(expected = "empty range")]
        fn empty_range_panics() {
            let mut rng = SmallRng::seed_from_u64(1);
            let _ = rng.gen_range(4usize..4);
        }

        #[test]
        fn gen_bool_tracks_probability() {
            let mut rng = SmallRng::seed_from_u64(11);
            let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
            assert!((20_000..30_000).contains(&hits), "hits {hits}");
            assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
            let mut rng = SmallRng::seed_from_u64(12);
            assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
        }
    }
}
