//! Case execution: a deterministic runner with rejection support.

use crate::strategy::Strategy;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's preconditions (`prop_assume!`) did not hold; try another.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; identical seeds generate identical case streams.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Executes a property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `test` on `config.cases` accepted cases drawn from `strategy`.
    /// Panics (failing the enclosing `#[test]`) on the first failure,
    /// printing the generated input since there is no shrinking.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        // Fixed seed: failures reproduce exactly on re-run.
        let mut rng = TestRng::from_seed(0xC0FF_EE00_5EED_1234);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(self.config.cases).saturating_mul(64).max(4096);
        while accepted < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "gave up after {attempts} attempts: only {accepted}/{} cases \
                 passed the prop_assume! filters",
                self.config.cases
            );
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest case #{} failed: {}\n  input: {}",
                    accepted + 1,
                    msg,
                    shown
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4, mut z in 1u64.., w in any::<u8>()) {
            z = z.wrapping_add(0); // exercise the `mut` binding form
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 1);
            let _ = w;
        }

        #[test]
        fn assume_filters(v in 0u64..10, _pad in crate::collection::vec(0u64..5, 0..3)) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let strat = prop_oneof![
            4 => (0u64..10, 0u64..10).prop_map(|(a, b)| a + b),
            1 => Just(999u64),
        ];
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        let mut saw_sum = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                999 => saw_just = true,
                v => {
                    assert!(v < 19);
                    saw_sum = true;
                }
            }
        }
        assert!(saw_sum && saw_just);
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run(&(0u64..100,), |(x,)| {
            prop_assert!(x < 2, "x was {}", x);
            Ok(())
        });
    }
}
