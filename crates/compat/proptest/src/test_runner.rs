//! Case execution: a deterministic runner with rejection support and
//! upstream-style `*.proptest-regressions` seed persistence.

use std::path::{Path, PathBuf};

use crate::strategy::Strategy;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
    /// Source file of the property (the [`crate::proptest!`] macro fills
    /// this with `file!()`). When set, the runner replays seeds from the
    /// sibling `<stem>.proptest-regressions` file before generating fresh
    /// cases, and appends the failing seed there when a case fails —
    /// mirroring upstream's failure persistence.
    pub source_file: Option<&'static str>,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            source_file: None,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's preconditions (`prop_assume!`) did not hold; try another.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; identical seeds generate identical case streams.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Executes a property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `test` on `config.cases` accepted cases drawn from `strategy`.
    /// Panics (failing the enclosing `#[test]`) on the first failure,
    /// printing the generated input since there is no shrinking.
    ///
    /// Every case is generated from its own 64-bit seed, so a failing
    /// case is identified by one `cc <seed>` token. When
    /// `config.source_file` is set, seeds stored in the sibling
    /// `<stem>.proptest-regressions` file are replayed **before** any
    /// fresh cases, and a fresh failure appends its seed there (check the
    /// file in so everyone replays it — same contract as upstream).
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let regressions = self.config.source_file.map(regressions_path);

        // Replay phase: stored failure seeds first.
        if let Some(path) = &regressions {
            for seed in load_seeds(path) {
                let value = strategy.generate(&mut TestRng::from_seed(seed));
                let shown = format!("{value:?}");
                match test(value) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "stored regression cc {seed:016x} (from {}) failed again: {msg}\n  \
                         input: {shown}",
                        path.display()
                    ),
                }
            }
        }

        // Fresh phase: deterministic per-attempt seeds, so failures
        // reproduce exactly on re-run even without the regressions file.
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(self.config.cases).saturating_mul(64).max(4096);
        while accepted < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "gave up after {attempts} attempts: only {accepted}/{} cases \
                 passed the prop_assume! filters",
                self.config.cases
            );
            let seed = case_seed(attempts);
            let value = strategy.generate(&mut TestRng::from_seed(seed));
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    let persisted = regressions
                        .as_deref()
                        .map(|path| persist_seed(path, seed, &shown))
                        .unwrap_or_default();
                    panic!(
                        "proptest case #{} failed: {}\n  input: {}\n  seed: cc {:016x}{}",
                        accepted + 1,
                        msg,
                        shown,
                        seed,
                        persisted,
                    )
                }
            }
        }
    }
}

/// Base for the deterministic per-attempt case seeds.
const BASE_SEED: u64 = 0xC0FF_EE00_5EED_1234;

/// The seed for fresh attempt `n` (SplitMix64 step keeps seeds well
/// spread even though attempt indices are sequential).
fn case_seed(attempt: u64) -> u64 {
    BASE_SEED ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// `tests/foo.rs` → `tests/foo.proptest-regressions` (upstream's naming).
fn regressions_path(source_file: &str) -> PathBuf {
    Path::new(source_file).with_extension("proptest-regressions")
}

/// Parse stored seeds: lines of the form `cc <16-hex-digit seed> # ...`.
/// Comment lines and upstream-format 256-bit hashes (which this shim
/// cannot replay) are skipped silently.
fn load_seeds(path: &Path) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            (token.len() == 16).then(|| u64::from_str_radix(token, 16).ok())?
        })
        .collect()
}

/// Append a failing seed to the regressions file (creating it with the
/// upstream header if absent), deduplicating against stored seeds.
/// Returns a human-readable note for the panic message; persistence
/// failures are reported in the note rather than masking the test panic.
fn persist_seed(path: &Path, seed: u64, input: &str) -> String {
    if load_seeds(path).contains(&seed) {
        return format!("\n  (already stored in {})", path.display());
    }
    if !path
        .parent()
        .is_none_or(|p| p.as_os_str().is_empty() || p.exists())
    {
        return format!("\n  (NOT persisted: {} has no parent dir)", path.display());
    }
    let mut contents = match std::fs::read_to_string(path) {
        Ok(existing) => existing,
        Err(_) => concat!(
            "# Seeds for failure cases proptest has generated in the past. It is\n",
            "# automatically read and these particular cases re-run before any\n",
            "# novel cases are generated.\n",
            "#\n",
            "# It is recommended to check this file in to source control so that\n",
            "# everyone who runs the test benefits from these saved cases.\n",
        )
        .to_string(),
    };
    if !contents.is_empty() && !contents.ends_with('\n') {
        contents.push('\n');
    }
    let shown: String = input.chars().take(160).collect();
    contents.push_str(&format!("cc {seed:016x} # failing input: {shown}\n"));
    match std::fs::write(path, contents) {
        Ok(()) => format!("\n  (seed persisted to {})", path.display()),
        Err(e) => format!("\n  (NOT persisted to {}: {e})", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4, mut z in 1u64.., w in any::<u8>()) {
            z = z.wrapping_add(0); // exercise the `mut` binding form
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 1);
            let _ = w;
        }

        #[test]
        fn assume_filters(v in 0u64..10, _pad in crate::collection::vec(0u64..5, 0..3)) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let strat = prop_oneof![
            4 => (0u64..10, 0u64..10).prop_map(|(a, b)| a + b),
            1 => Just(999u64),
        ];
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        let mut saw_sum = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                999 => saw_just = true,
                v => {
                    assert!(v < 19);
                    saw_sum = true;
                }
            }
        }
        assert!(saw_sum && saw_just);
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run(&(0u64..100,), |(x,)| {
            prop_assert!(x < 2, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn regressions_path_swaps_extension() {
        assert_eq!(
            crate::test_runner::regressions_path("tests/concurrent_equivalence.rs"),
            std::path::PathBuf::from("tests/concurrent_equivalence.proptest-regressions")
        );
    }

    #[test]
    fn load_seeds_parses_ours_and_skips_upstream_hashes() {
        let dir = std::env::temp_dir().join(format!("proptest-compat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("parse.proptest-regressions");
        std::fs::write(
            &path,
            "# header comment\n\
             cc 00000000deadbeef # a seed this shim wrote\n\
             cc 3f4a1d0a8d1b49f12f47a1b6a3bb9d72ba7c2ed0f0a2b98d35b8aa66d6fbc8d5 # upstream hash\n\
             not a cc line\n\
             cc nothexnothexnotx # unparseable\n",
        )
        .unwrap();
        assert_eq!(crate::test_runner::load_seeds(&path), vec![0xdead_beef]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failing_case_persists_seed_and_is_replayed_first() {
        let dir = std::env::temp_dir().join(format!("proptest-compat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let source = dir.join("persisted_case.rs");
        let source_str: &'static str =
            Box::leak(source.to_str().unwrap().to_string().into_boxed_str());
        let regressions = crate::test_runner::regressions_path(source_str);
        let _ = std::fs::remove_file(&regressions);

        let config = ProptestConfig {
            cases: 32,
            source_file: Some(source_str),
        };

        // First run: some case fails; its seed must be written out.
        let failing_input = std::cell::RefCell::new(None::<u64>);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TestRunner::new(config.clone()).run(&(0u64..1000,), |(x,)| {
                if x >= 700 {
                    *failing_input.borrow_mut() = Some(x);
                    return Err(TestCaseError::fail("x too big"));
                }
                Ok(())
            });
        }));
        assert!(
            result.is_err(),
            "a case in [700, 1000) must eventually fail"
        );
        let failing_input = failing_input.borrow().expect("recorded before failing");
        let stored = std::fs::read_to_string(&regressions).expect("file written");
        assert!(stored.contains("cc "), "{stored}");
        assert!(stored.starts_with("# Seeds for failure cases"));
        let seeds = crate::test_runner::load_seeds(&regressions);
        assert_eq!(seeds.len(), 1);

        // Second run with a now-passing property: the stored seed is
        // replayed FIRST and regenerates the exact failing input.
        let replayed = std::cell::RefCell::new(Vec::new());
        TestRunner::new(config.clone()).run(&(0u64..1000,), |(x,)| {
            replayed.borrow_mut().push(x);
            Ok(())
        });
        assert_eq!(replayed.borrow()[0], failing_input);
        // Replays run on top of the configured fresh cases.
        assert_eq!(replayed.borrow().len() as u32, config.cases + 1);

        // Third run still failing: panic names the stored regression, and
        // the seed is not duplicated in the file.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            TestRunner::new(config.clone()).run(&(0u64..1000,), |(x,)| {
                prop_assert!(x < 700, "x too big");
                Ok(())
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("stored regression cc "), "{msg}");
        assert_eq!(crate::test_runner::load_seeds(&regressions).len(), 1);

        let _ = std::fs::remove_file(&regressions);
    }
}
