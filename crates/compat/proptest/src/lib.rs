//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assume!`] / [`prop_oneof!`]
//! macros, integer-range / `any` / tuple / `Just` / `prop_map` /
//! [`collection::vec`] strategies, and a [`test_runner::TestRunner`] that
//! samples cases from a **deterministic** RNG: every case has its own
//! 64-bit seed, so failures reproduce run-to-run and are identified by a
//! single `cc <seed>` token. `tests/*.proptest-regressions` files are
//! honoured like upstream — stored seeds are replayed before fresh cases
//! and a fresh failure appends its seed to the file (check it in). The
//! one difference from upstream: no shrinking — the failing input is
//! printed in full instead, and regressions worth a narrative are also
//! ported into ordinary `#[test]`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element from `elem`, length uniform in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Property-test entry point. Accepts the upstream form: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(args in
/// strategies) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Wire regression persistence to this property's source file,
            // like upstream's macro does.
            let config = $crate::test_runner::ProptestConfig {
                source_file: ::core::option::Option::Some(::core::file!()),
                ..config
            };
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
}

/// Fail the current case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discard the current case (generate a fresh one) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
