//! Value-generation strategies: deterministic sampling without shrinking.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter mapping generated values through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Panics if all weights are 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Types with a canonical full-range strategy (mirrors `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range {self:?}");
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128) - (start as i128) + 1;
                assert!(span > 0, "cannot sample empty range {self:?}");
                ((start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128) - (self.start as i128) + 1;
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
);
