//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so
//! `#[derive(serde::Serialize, serde::Deserialize)]` positions across the
//! workspace keep compiling without registry access. See
//! `serde_derive/src/lib.rs` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
