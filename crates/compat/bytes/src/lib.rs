//! Offline stand-in for `bytes` 1.x.
//!
//! Provides [`Bytes`] (cheaply cloneable shared byte buffer), [`BytesMut`]
//! (append-only builder), and the [`Buf`] / [`BufMut`] trait surface the
//! wire codec uses: big-endian `get_*` / `put_*` for u8/u32/u64/f64 plus
//! cursor-style `remaining` / `has_remaining`. Semantics match upstream
//! for this subset (including panics on buffer underrun).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation. Panics if the range is out
    /// of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Read side of a byte cursor (big-endian, like upstream `bytes`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume and return the next `n` bytes as a slice.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte. Panics on underrun.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Consume a big-endian `u32`. Panics on underrun.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Consume a big-endian `u64`. Panics on underrun.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Consume a big-endian `f64`. Panics on underrun.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let start = self.start;
        self.start += n;
        &self.data[start..self.start]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// A growable byte buffer (append-only subset of upstream `BytesMut`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write side of a byte builder (big-endian, like upstream `bytes`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64` (IEEE-754 bits).
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0x4754_5301);
        b.put_u64(u64::MAX - 3);
        b.put_f64(0.25);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0x4754_5301);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f64(), 0.25);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).to_vec(), vec![2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }
}
