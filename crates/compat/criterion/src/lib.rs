//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate provides
//! the benchmark API surface the workspace's `benches/` use —
//! `criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId` —
//! backed by a simple wall-clock runner: each benchmark runs
//! `sample_size` timed batches and prints min / median / mean per
//! iteration (plus throughput when declared). No statistical analysis,
//! HTML reports, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement kinds (only wall time is supported).
pub mod measurement {
    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Declared work-per-iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver; collects configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: PhantomData::<&mut Criterion>,
            _measurement: PhantomData,
        }
    }
}

/// A named set of benchmarks sharing throughput declarations.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Declare how much work one iteration performs (reported as rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no externally supplied input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), |b| f(b));
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into(), |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}

    fn run_one(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let label = format!("{}/{}", self.name, id.id);
        if samples.is_empty() {
            println!("{label}: no iterations recorded");
            return;
        }
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" ({:.3e} elem/s)", n as f64 / median),
            Some(Throughput::Bytes(n)) => format!(" ({:.3e} B/s)", n as f64 / median),
            None => String::new(),
        };
        println!(
            "{label}: min {} median {} mean {}{rate}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3}s")
    } else if seconds >= 1e-3 {
        format!("{:.3}ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3}µs", seconds * 1e6)
    } else {
        format!("{:.1}ns", seconds * 1e9)
    }
}

/// Times closures; passed to every benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `f` (one batch per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Define a benchmark group entry point (named-config and positional forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(c: &mut Criterion) {
        let mut group = c.benchmark_group("squares");
        group.throughput(Throughput::Elements(1));
        group.bench_function("direct", |b| b.iter(|| black_box(7u64) * 7));
        group.bench_with_input(BenchmarkId::from_parameter(9u64), &9u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = square
    );

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
