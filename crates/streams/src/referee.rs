//! The referee role: receive party messages, answer queries about the
//! union — **idempotent under at-least-once delivery**.
//!
//! The referee validates and decodes each message (rejecting anything
//! uncoordinated or corrupt), merges it into its running union sketch,
//! and keeps byte-level communication accounting for experiment E9 plus
//! per-stage telemetry ([`RefereeTelemetry`]).
//!
//! ## At-least-once delivery
//!
//! A retrying collection plane (see [`crate::collector`]) redelivers
//! messages: a straggler from attempt 1 can arrive after attempt 2, and a
//! lost ack makes a party retransmit bytes the referee already merged.
//! The referee therefore deduplicates on `(party_id, payload
//! fingerprint)` before decoding: a byte-identical redelivery is
//! suppressed — no decode, no merge, no counter change — and only
//! counted in [`RefereeTelemetry::duplicates_suppressed`]. This keeps
//! `messages`, `bytes_received`, and `items_reported` **exactly-once**
//! per party, and the union sketch (plus its ops metrics) bitwise
//! identical to a clean single delivery, which
//! `tests/distributed_union.rs` proves over arbitrary schedules.
//!
//! The fingerprint is well defined because the codec is canonical (sorted
//! samples, minimal varints — see [`crate::codec::payload_fingerprint`]).
//! A message from an already-heard party whose bytes *differ* but still
//! decode to a valid coordinated sketch (e.g. a bit flip in a don't-care
//! position) is merged — set-union semantics make that safe — but not
//! re-counted; see [`Receipt::MergedVariant`].

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gt_core::{Estimate, GtSketch, SketchConfig};

use crate::codec::{decode_sketch, payload_fingerprint, CodecError, WirePayload};
use crate::party::PartyMessage;

/// Per-stage accounting of everything the referee was handed.
///
/// Fate counts derive from here plus the channel's own drop counter (see
/// `crate::faults`): `accepted + duplicates() + rejected() == deliveries
/// the referee saw`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefereeTelemetry {
    /// First accepted message per party: decoded, validated, merged, and
    /// counted (exactly-once).
    pub accepted: usize,
    /// Byte-identical redeliveries suppressed before decode.
    pub duplicates_suppressed: usize,
    /// Same party, different bytes, still valid: merged under set-union
    /// semantics but not re-counted.
    pub duplicates_merged: usize,
    /// Rejects: buffer ended before the message did.
    pub rejected_truncated: usize,
    /// Rejects: magic/version word mismatch.
    pub rejected_bad_magic: usize,
    /// Rejects: invalid enum tag byte.
    pub rejected_bad_tag: usize,
    /// Rejects: varint/delta value outside its domain (including
    /// non-canonical over-long varints).
    pub rejected_malformed: usize,
    /// Rejects: decoded but failed sketch validation (bad seed, sample
    /// invariant violation, config mismatch).
    pub rejected_sketch: usize,
    /// Time spent decoding payloads (successful and failed).
    pub decode_time: Duration,
    /// Time spent merging decoded sketches into the union.
    pub merge_time: Duration,
}

impl RefereeTelemetry {
    /// Total rejected messages, all reasons.
    pub fn rejected(&self) -> usize {
        self.rejected_truncated
            + self.rejected_bad_magic
            + self.rejected_bad_tag
            + self.rejected_malformed
            + self.rejected_sketch
    }

    /// Total redeliveries from already-heard parties, suppressed or
    /// variant-merged.
    pub fn duplicates(&self) -> usize {
        self.duplicates_suppressed + self.duplicates_merged
    }

    /// Total receive attempts recorded.
    pub fn attempts(&self) -> usize {
        self.accepted + self.duplicates() + self.rejected()
    }

    fn record_reject(&mut self, err: &CodecError) {
        match err {
            CodecError::Truncated => self.rejected_truncated += 1,
            CodecError::BadMagic(_) => self.rejected_bad_magic += 1,
            CodecError::BadTag(_) => self.rejected_bad_tag += 1,
            CodecError::Malformed(_) => self.rejected_malformed += 1,
            CodecError::Sketch(_) => self.rejected_sketch += 1,
        }
    }
}

/// What the referee did with one delivered message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Receipt {
    /// First accepted message from this party: merged and counted.
    Merged,
    /// Byte-identical redelivery of an already-accepted payload:
    /// suppressed before decode; no state or counter changed.
    Duplicate,
    /// Same party, different bytes, still a valid coordinated sketch:
    /// merged (set-union semantics make re-merging safe) but the party's
    /// `messages`/`bytes_received`/`items_reported` stay exactly-once.
    MergedVariant,
}

/// A degraded-mode answer: the estimate plus how much of the fleet it
/// actually covers.
///
/// When the collection plane exhausts its retry budget, the `(ε, δ)`
/// contract still holds — but for the union of the parties *heard*, not
/// the full fleet. Callers inspect [`PartialEstimate::is_complete`] /
/// [`PartialEstimate::coverage`] before treating the value as the full
/// union.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialEstimate {
    /// `(ε, δ)`-estimate of the distinct labels in the union of the
    /// parties heard so far.
    pub estimate: Estimate,
    /// Distinct parties whose message was accepted.
    pub parties_heard: usize,
    /// Parties the caller expected to hear from.
    pub parties_expected: usize,
    /// Items those parties reported observing (exactly-once).
    pub items_reported: u64,
}

impl PartialEstimate {
    /// Whether every expected party was heard (the estimate covers the
    /// full union).
    pub fn is_complete(&self) -> bool {
        self.parties_heard >= self.parties_expected
    }

    /// Fraction of expected parties heard, in `[0, 1]` (1 when none were
    /// expected).
    pub fn coverage(&self) -> f64 {
        if self.parties_expected == 0 {
            1.0
        } else {
            (self.parties_heard as f64 / self.parties_expected as f64).min(1.0)
        }
    }
}

/// The central aggregator of the distributed-streams model, generic over
/// the sketch payload it unions (labels only, `u64` weights, ...).
///
/// Most code wants the label-only alias [`Referee`].
#[derive(Clone, Debug)]
pub struct RefereeOf<V: WirePayload> {
    master_seed: u64,
    union: GtSketch<V>,
    messages: usize,
    bytes_received: usize,
    items_reported: u64,
    /// Accepted payload fingerprints per party; the first entry is the
    /// party's first accepted message, later entries are merged variants.
    accepted_payloads: HashMap<usize, Vec<u64>>,
    telemetry: RefereeTelemetry,
}

/// The referee for plain distinct-count sketches (no payload).
pub type Referee = RefereeOf<()>;

impl<V: WirePayload> RefereeOf<V> {
    /// Create a referee expecting sketches built from `(config,
    /// master_seed)`.
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        RefereeOf {
            master_seed,
            union: GtSketch::new(config, master_seed),
            messages: 0,
            bytes_received: 0,
            items_reported: 0,
            accepted_payloads: HashMap::new(),
            telemetry: RefereeTelemetry::default(),
        }
    }

    /// Receive one delivery: dedup, decode, validate, union.
    ///
    /// Safe to call any number of times with redeliveries of the same
    /// message — see the module docs on at-least-once idempotence.
    pub fn receive(&mut self, msg: &PartyMessage) -> Result<Receipt, CodecError> {
        let fingerprint = payload_fingerprint(&msg.payload);
        let prior = self.accepted_payloads.get(&msg.party_id);
        if prior.is_some_and(|fps| fps.contains(&fingerprint)) {
            self.telemetry.duplicates_suppressed += 1;
            return Ok(Receipt::Duplicate);
        }
        let heard_before = prior.is_some();

        let decode_start = Instant::now();
        let decoded = decode_sketch::<V>(msg.payload.clone()).and_then(|sketch| {
            if sketch.master_seed() == self.master_seed {
                Ok(sketch)
            } else {
                Err(CodecError::Sketch(gt_core::SketchError::SeedMismatch))
            }
        });
        self.telemetry.decode_time += decode_start.elapsed();
        let sketch = match decoded {
            Ok(sketch) => sketch,
            Err(e) => {
                self.telemetry.record_reject(&e);
                return Err(e);
            }
        };
        let merge_start = Instant::now();
        let merged = self.union.merge_from(&sketch);
        self.telemetry.merge_time += merge_start.elapsed();
        if let Err(e) = merged {
            let e = CodecError::from(e);
            self.telemetry.record_reject(&e);
            return Err(e);
        }
        self.accepted_payloads
            .entry(msg.party_id)
            .or_default()
            .push(fingerprint);
        if heard_before {
            self.telemetry.duplicates_merged += 1;
            Ok(Receipt::MergedVariant)
        } else {
            self.telemetry.accepted += 1;
            self.messages += 1;
            self.bytes_received += msg.bytes();
            self.items_reported += msg.items_observed;
            Ok(Receipt::Merged)
        }
    }

    /// Per-stage telemetry: decode outcomes by reason, duplicate counts,
    /// and phase timings.
    pub fn telemetry(&self) -> &RefereeTelemetry {
        &self.telemetry
    }

    /// Observability counters of the union sketch itself (merge entry
    /// accounting, reconciliations, promotions).
    pub fn union_metrics(&self) -> gt_core::MetricsSnapshot {
        self.union.metrics_snapshot()
    }

    /// `(ε, δ)`-estimate of the distinct labels in the union of all
    /// received streams.
    pub fn estimate_distinct(&self) -> Estimate {
        self.union.estimate_distinct()
    }

    /// Degraded-mode query: the estimate together with coverage, for
    /// callers that must know whether the `(ε, δ)` contract applies to
    /// the full union or only the parties heard.
    pub fn estimate_distinct_partial(&self, parties_expected: usize) -> PartialEstimate {
        PartialEstimate {
            estimate: self.union.estimate_distinct(),
            parties_heard: self.parties_heard(),
            parties_expected,
            items_reported: self.items_reported,
        }
    }

    /// The merged union sketch (for similarity/predicate/weighted
    /// queries).
    pub fn union_sketch(&self) -> &GtSketch<V> {
        &self.union
    }

    /// Distinct parties with at least one accepted message.
    pub fn parties_heard(&self) -> usize {
        self.accepted_payloads.len()
    }

    /// Whether this party already has an accepted message.
    pub fn has_heard(&self, party_id: usize) -> bool {
        self.accepted_payloads.contains_key(&party_id)
    }

    /// Messages accepted so far, exactly-once per party (redeliveries are
    /// deduplicated, not counted).
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Total bytes received and merged, exactly-once per party — the
    /// scenario's communication cost net of retransmissions. (Retransmit
    /// traffic is accounted by the transport, not here.)
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Total items the parties reported observing, exactly-once per
    /// party.
    pub fn items_reported(&self) -> u64 {
        self.items_reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_sketch;
    use crate::party::Party;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn labels(range: std::ops::Range<u64>) -> Vec<u64> {
        range.map(gt_hash::fold61).collect()
    }

    fn message(party: usize, range: std::ops::Range<u64>, seed: u64) -> PartyMessage {
        let mut p = Party::new(party, &cfg(), seed);
        p.observe_stream(&labels(range));
        p.finish()
    }

    #[test]
    fn referee_unions_party_messages() {
        let config = cfg();
        let mut referee = Referee::new(&config, 5);
        for p in 0..4usize {
            let mut party = Party::new(p, &config, 5);
            // Overlapping ranges; union = [0, 250 + 150·3) = 700 labels,
            // under the per-trial capacity so the union estimate is exact.
            party.observe_stream(&labels(p as u64 * 150..p as u64 * 150 + 250));
            assert_eq!(referee.receive(&party.finish()).unwrap(), Receipt::Merged);
        }
        assert_eq!(referee.messages(), 4);
        assert_eq!(referee.parties_heard(), 4);
        assert_eq!(referee.estimate_distinct().value, 700.0);
        assert!(referee.bytes_received() > 0);
        assert_eq!(referee.items_reported(), 4 * 250);
    }

    #[test]
    fn redelivery_is_suppressed_exactly_once() {
        let mut referee = Referee::new(&cfg(), 5);
        let msg = message(0, 0..300, 5);
        assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
        let snapshot = (
            encode_sketch(referee.union_sketch()),
            referee.messages(),
            referee.bytes_received(),
            referee.items_reported(),
            referee.union_metrics(),
        );
        for round in 1..=5usize {
            assert_eq!(referee.receive(&msg).unwrap(), Receipt::Duplicate);
            assert_eq!(referee.telemetry().duplicates_suppressed, round);
        }
        // Bitwise-identical union, exactly-once counters, untouched
        // sketch-ops metrics: redelivery changed *nothing* but the
        // duplicate counter.
        assert_eq!(encode_sketch(referee.union_sketch()), snapshot.0);
        assert_eq!(referee.messages(), snapshot.1);
        assert_eq!(referee.bytes_received(), snapshot.2);
        assert_eq!(referee.items_reported(), snapshot.3);
        assert_eq!(referee.union_metrics(), snapshot.4);
        assert_eq!(referee.telemetry().accepted, 1);
        assert_eq!(referee.telemetry().attempts(), 6);
    }

    #[test]
    fn variant_payload_merges_without_recounting() {
        // Same party sends two different-but-valid payloads (e.g. a
        // retransmit raced a sketch that kept observing). The union
        // absorbs both; the exactly-once counters bill the party once.
        let mut referee = Referee::new(&cfg(), 5);
        let first = message(7, 0..200, 5);
        let second = message(7, 0..350, 5);
        assert_eq!(referee.receive(&first).unwrap(), Receipt::Merged);
        assert_eq!(referee.receive(&second).unwrap(), Receipt::MergedVariant);
        assert_eq!(referee.messages(), 1);
        assert_eq!(referee.parties_heard(), 1);
        assert_eq!(referee.items_reported(), first.items_observed);
        assert_eq!(referee.bytes_received(), first.bytes());
        assert_eq!(referee.telemetry().duplicates_merged, 1);
        // Both payloads' labels are in the union.
        assert_eq!(referee.estimate_distinct().value, 350.0);
        // Redelivering either exact payload is now suppressed.
        assert_eq!(referee.receive(&first).unwrap(), Receipt::Duplicate);
        assert_eq!(referee.receive(&second).unwrap(), Receipt::Duplicate);
    }

    #[test]
    fn partial_estimate_reports_coverage() {
        let mut referee = Referee::new(&cfg(), 5);
        referee.receive(&message(0, 0..400, 5)).unwrap();
        referee.receive(&message(1, 200..600, 5)).unwrap();
        let partial = referee.estimate_distinct_partial(4);
        assert_eq!(partial.parties_heard, 2);
        assert_eq!(partial.parties_expected, 4);
        assert!(!partial.is_complete());
        assert_eq!(partial.coverage(), 0.5);
        assert_eq!(partial.estimate.value, 600.0);
        assert_eq!(partial.items_reported, 800);

        referee.receive(&message(2, 0..100, 5)).unwrap();
        referee.receive(&message(3, 0..100, 5)).unwrap();
        let partial = referee.estimate_distinct_partial(4);
        assert!(partial.is_complete());
        assert_eq!(partial.coverage(), 1.0);
    }

    #[test]
    fn referee_rejects_foreign_seeds() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 2); // wrong seed
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());
        assert_eq!(referee.messages(), 0);
        assert_eq!(referee.parties_heard(), 0);
    }

    #[test]
    fn referee_rejects_corrupt_payloads() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());
    }

    #[test]
    fn rejected_message_can_be_retried_clean() {
        // A corrupt delivery must not poison the party: the intact
        // retransmit of the same message is accepted afterwards.
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        let msg = party.finish();
        let mut corrupt = msg.clone();
        let mut raw = corrupt.payload.to_vec();
        raw.truncate(raw.len() / 2);
        corrupt.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&corrupt).is_err());
        assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
        assert_eq!(referee.messages(), 1);
        assert_eq!(referee.telemetry().rejected(), 1);
    }

    #[test]
    fn empty_referee_estimates_zero() {
        let referee = Referee::new(&cfg(), 9);
        assert_eq!(referee.estimate_distinct().value, 0.0);
        assert_eq!(referee.bytes_received(), 0);
        assert_eq!(referee.parties_heard(), 0);
        assert_eq!(*referee.telemetry(), RefereeTelemetry::default());
        let partial = referee.estimate_distinct_partial(0);
        assert!(partial.is_complete());
        assert_eq!(partial.coverage(), 1.0);
    }

    #[test]
    fn telemetry_classifies_accepts_and_rejects() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);

        // One good message.
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        referee.receive(&party.finish()).unwrap();

        // One truncated message.
        let mut party = Party::new(1, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());

        // One foreign-seed message (decodes, fails sketch validation).
        let mut party = Party::new(2, &config, 99);
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());

        let t = referee.telemetry();
        assert_eq!(t.accepted, 1);
        assert_eq!(t.rejected_sketch, 1);
        assert_eq!(t.rejected(), 2);
        assert_eq!(t.duplicates(), 0);
        // Count-based (not timing-based — coarse platform clocks can
        // round a fast decode to zero): every receive call is accounted
        // for in exactly one bucket.
        assert_eq!(t.attempts(), 3);
        assert_eq!(t.rejected_bad_magic + t.rejected_bad_tag, 0);
    }

    #[test]
    fn payload_referee_unions_weighted_sketches() {
        use gt_core::SumDistinctSketch;
        let config = cfg();
        let mut referee: RefereeOf<u64> = RefereeOf::new(&config, 8);
        // Two parties observe overlapping (label, weight) streams.
        for (id, range) in [(0usize, 0u64..300), (1, 150..450)] {
            let mut s = SumDistinctSketch::new(&config, 8);
            for i in range {
                s.insert(gt_hash::fold61(i), i % 7 + 1);
            }
            let msg = PartyMessage {
                party_id: id,
                payload: encode_sketch(s.inner()),
                items_observed: s.inner().items_observed(),
            };
            assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
            // Redelivery of a weighted payload dedups too.
            assert_eq!(referee.receive(&msg).unwrap(), Receipt::Duplicate);
        }
        let expected: f64 = (0u64..450).map(|i| (i % 7 + 1) as f64).sum();
        let estimated = referee.union_sketch().estimate_weighted(|_, v| v as f64);
        assert!(
            (estimated - expected).abs() / expected < 0.1,
            "weighted union {estimated} vs {expected}"
        );
        assert_eq!(referee.telemetry().duplicates_suppressed, 2);
    }

    #[test]
    fn union_metrics_reflect_merges() {
        let config = cfg();
        let mut referee = Referee::new(&config, 4);
        for p in 0..3usize {
            let mut party = Party::new(p, &config, 4);
            party.observe_stream(&labels(p as u64 * 100..p as u64 * 100 + 150));
            referee.receive(&party.finish()).unwrap();
        }
        let m = referee.union_metrics();
        assert_eq!(m.merge_calls, 3);
        assert!(m.merge_entries_absorbed > 0);
        // Overlapping ranges: both sides sampled some labels.
        assert!(m.merge_reconciliations > 0);
    }
}
