//! The referee role: receive party messages, answer queries about the
//! union — **idempotent under at-least-once delivery**.
//!
//! The referee validates and decodes each message (rejecting anything
//! uncoordinated or corrupt), merges it into its running union sketch,
//! and keeps byte-level communication accounting for experiment E9 plus
//! per-stage telemetry ([`RefereeTelemetry`]).
//!
//! ## At-least-once delivery
//!
//! A retrying collection plane (see [`crate::collector`]) redelivers
//! messages: a straggler from attempt 1 can arrive after attempt 2, and a
//! lost ack makes a party retransmit bytes the referee already merged.
//! The referee therefore deduplicates on `(party_id, payload
//! fingerprint)` before decoding: a byte-identical redelivery is
//! suppressed — no decode, no merge, no counter change — and only
//! counted in [`RefereeTelemetry::duplicates_suppressed`]. This keeps
//! `messages`, `bytes_received`, and `items_reported` **exactly-once**
//! per party, and the union sketch (plus its ops metrics) bitwise
//! identical to a clean single delivery, which
//! `tests/distributed_union.rs` proves over arbitrary schedules.
//!
//! The fingerprint is well defined because the codec is canonical (sorted
//! samples, minimal varints — see [`crate::codec::payload_fingerprint`]).
//! A message from an already-heard party whose bytes *differ* but still
//! decode to a valid coordinated sketch (e.g. a bit flip in a don't-care
//! position) is merged — set-union semantics make that safe — but not
//! re-counted; see [`Receipt::MergedVariant`].

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gt_core::{
    apply_delta, merge_tree, Estimate, ExprContext, ExpressionEstimate, GtSketch, JaccardEstimate,
    SetExpr, SketchConfig, SketchError,
};

use crate::codec::{
    decode_frame, decode_sketch, decode_sketch_into, encode_sketch, payload_fingerprint,
    CodecError, DecodeScratch, Frame, WirePayload,
};
use crate::party::PartyMessage;

/// Generations of applied-state fingerprints retained per party for
/// delta-base validation; a delta whose base predates the window forces
/// a resync (safe: the party falls back to a full frame). Matches the
/// party side's own snapshot retention bound.
const MAX_FP_HISTORY: usize = 64;

/// Histogram bucket labels for [`RefereeTelemetry::summaries_per_batch`]:
/// bucket `i` counts batches whose size fell in the `i`-th range.
pub const BATCH_BUCKET_LABELS: [&str; 5] = ["1", "2-4", "5-16", "17-64", "65+"];

/// Map a batch size to its [`BATCH_BUCKET_LABELS`] bucket index.
pub fn batch_size_bucket(summaries: usize) -> usize {
    match summaries {
        0..=1 => 0,
        2..=4 => 1,
        5..=16 => 2,
        17..=64 => 3,
        _ => 4,
    }
}

/// Per-stage accounting of everything the referee was handed.
///
/// Fate counts derive from here plus the channel's own drop counter (see
/// `crate::faults`): `accepted + duplicates() + rejected() == deliveries
/// the referee saw`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefereeTelemetry {
    /// First accepted message per party: decoded, validated, merged, and
    /// counted (exactly-once).
    pub accepted: usize,
    /// Byte-identical redeliveries suppressed before decode.
    pub duplicates_suppressed: usize,
    /// Same party, different bytes, still valid: merged under set-union
    /// semantics but not re-counted.
    pub duplicates_merged: usize,
    /// Rejects: buffer ended before the message did.
    pub rejected_truncated: usize,
    /// Rejects: magic/version word mismatch.
    pub rejected_bad_magic: usize,
    /// Rejects: invalid enum tag byte.
    pub rejected_bad_tag: usize,
    /// Rejects: varint/delta value outside its domain (including
    /// non-canonical over-long varints).
    pub rejected_malformed: usize,
    /// Rejects: decoded but failed sketch validation (bad seed, sample
    /// invariant violation, config mismatch).
    pub rejected_sketch: usize,
    /// Time spent decoding payloads (successful and failed).
    pub decode_time: Duration,
    /// Time spent merging decoded sketches into the union.
    pub merge_time: Duration,
    /// Batched receive calls ([`RefereeOf::receive_batch`] with a
    /// non-empty slice); per-message [`RefereeOf::receive`] never counts
    /// here.
    pub batches: usize,
    /// Histogram of batch sizes (messages per batch), bucketed per
    /// [`BATCH_BUCKET_LABELS`].
    pub summaries_per_batch: [usize; 5],
}

impl RefereeTelemetry {
    /// Total rejected messages, all reasons.
    pub fn rejected(&self) -> usize {
        self.rejected_truncated
            + self.rejected_bad_magic
            + self.rejected_bad_tag
            + self.rejected_malformed
            + self.rejected_sketch
    }

    /// Total redeliveries from already-heard parties, suppressed or
    /// variant-merged.
    pub fn duplicates(&self) -> usize {
        self.duplicates_suppressed + self.duplicates_merged
    }

    /// Total receive attempts recorded.
    pub fn attempts(&self) -> usize {
        self.accepted + self.duplicates() + self.rejected()
    }

    fn record_reject(&mut self, err: &CodecError) {
        match err {
            CodecError::Truncated => self.rejected_truncated += 1,
            CodecError::BadMagic(_) => self.rejected_bad_magic += 1,
            CodecError::BadTag(_) => self.rejected_bad_tag += 1,
            CodecError::Malformed(_) => self.rejected_malformed += 1,
            CodecError::Sketch(_) => self.rejected_sketch += 1,
        }
    }
}

/// What the referee did with one delivered message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Receipt {
    /// First accepted message from this party: merged and counted.
    Merged,
    /// Byte-identical redelivery of an already-accepted payload:
    /// suppressed before decode; no state or counter changed.
    Duplicate,
    /// Same party, different bytes, still a valid coordinated sketch:
    /// merged (set-union semantics make re-merging safe) but the party's
    /// `messages`/`bytes_received`/`items_reported` stay exactly-once.
    MergedVariant,
    /// A delta frame whose base generation is unknown to the referee (or
    /// whose base fingerprint disagrees with the state the referee
    /// applied at that generation): nothing was merged, and the caller
    /// must route a resync notice back to the party so it falls back to
    /// a full frame. Only [`RefereeOf::receive_frame`] produces this.
    NeedResync,
}

/// Delta-plane accounting: what the continuous-monitoring frame path
/// ([`RefereeOf::receive_frame`]) did with the frames it was handed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaPlaneTelemetry {
    /// Delta frames validated against their base and applied.
    pub delta_frames: u64,
    /// Full frames applied (initial ships and post-resync re-keys).
    pub full_frames: u64,
    /// Wire bytes of applied delta frames.
    pub delta_bytes: u64,
    /// Wire bytes of applied full frames.
    pub full_bytes: u64,
    /// Delta frames refused for an unknown or mismatched base
    /// (each one is a resync request back to the party).
    pub resyncs_requested: u64,
    /// Frames suppressed as duplicates (byte-identical redelivery, or a
    /// reordered frame at or below the party's applied watermark).
    pub duplicate_frames: u64,
}

impl DeltaPlaneTelemetry {
    /// Total frames applied, both kinds.
    pub fn frames_applied(&self) -> u64 {
        self.delta_frames + self.full_frames
    }

    /// Total wire bytes applied, both kinds.
    pub fn bytes_applied(&self) -> u64 {
        self.delta_bytes + self.full_bytes
    }
}

/// Per-party state of the continuous-monitoring frame path.
#[derive(Clone, Debug, Default)]
struct PartyDeltaState {
    /// Highest applied generation; frames at or below it are duplicates.
    watermark: u64,
    /// Cumulative items the party last reported, for exactly-once
    /// `items_reported` accounting across refreshing frames.
    items: u64,
    /// `(generation, canonical-bytes fingerprint)` of recently applied
    /// states, newest last — the base-validation window for incoming
    /// delta frames (bounded by [`MAX_FP_HISTORY`]).
    history: Vec<(u64, u64)>,
}

/// A degraded-mode answer: the estimate plus how much of the fleet it
/// actually covers.
///
/// When the collection plane exhausts its retry budget, the `(ε, δ)`
/// contract still holds — but for the union of the parties *heard*, not
/// the full fleet. Callers inspect [`PartialEstimate::is_complete`] /
/// [`PartialEstimate::coverage`] before treating the value as the full
/// union.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialEstimate {
    /// `(ε, δ)`-estimate of the distinct labels in the union of the
    /// parties heard so far.
    pub estimate: Estimate,
    /// Distinct parties whose message was accepted.
    pub parties_heard: usize,
    /// Parties the caller expected to hear from.
    pub parties_expected: usize,
    /// Items those parties reported observing (exactly-once).
    pub items_reported: u64,
}

impl PartialEstimate {
    /// Whether every expected party was heard (the estimate covers the
    /// full union).
    pub fn is_complete(&self) -> bool {
        self.parties_heard >= self.parties_expected
    }

    /// Fraction of expected parties heard, in `[0, 1]` (1 when none were
    /// expected).
    pub fn coverage(&self) -> f64 {
        if self.parties_expected == 0 {
            1.0
        } else {
            (self.parties_heard as f64 / self.parties_expected as f64).min(1.0)
        }
    }
}

/// A degraded-mode expression answer: the estimate plus how many of the
/// parties the expression references were actually heard.
///
/// Produced by [`RefereeOf::query_partial`]. Unheard referenced parties
/// are evaluated as **empty streams** — consistent with
/// [`RefereeOf::estimate_distinct_partial`], where the union estimate
/// likewise covers only the parties heard. Monotone operators (∪, ∩)
/// therefore under-report at partial coverage, while a difference
/// `A ∖ B` with `B` unheard over-reports; callers inspect
/// [`PartialExpressionEstimate::is_complete`] before treating the value
/// as the full-fleet answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialExpressionEstimate {
    /// Expression estimate over the parties heard (unheard leaves empty).
    pub estimate: ExpressionEstimate,
    /// Referenced parties with an accepted message.
    pub parties_heard: usize,
    /// Distinct parties the expression references.
    pub parties_referenced: usize,
}

impl PartialExpressionEstimate {
    /// Whether every referenced party was heard (the estimate is the
    /// full-coverage answer).
    pub fn is_complete(&self) -> bool {
        self.parties_heard >= self.parties_referenced
    }

    /// Fraction of referenced parties heard, in `[0, 1]` (1 when the
    /// expression references none).
    pub fn coverage(&self) -> f64 {
        if self.parties_referenced == 0 {
            1.0
        } else {
            (self.parties_heard as f64 / self.parties_referenced as f64).min(1.0)
        }
    }
}

/// A degraded-mode Jaccard answer: the similarity estimate plus how many
/// of the parties the two expressions reference were actually heard.
///
/// Produced by [`RefereeOf::query_jaccard_partial`]. Unheard referenced
/// parties evaluate as **empty streams**, exactly as in
/// [`RefereeOf::query_partial`]; coverage is counted over the union of
/// both expressions' referenced parties.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialJaccardEstimate {
    /// Jaccard estimate over the parties heard (unheard leaves empty).
    pub estimate: JaccardEstimate,
    /// Referenced parties with an accepted message.
    pub parties_heard: usize,
    /// Distinct parties the two expressions reference.
    pub parties_referenced: usize,
}

impl PartialJaccardEstimate {
    /// Whether every referenced party was heard (the estimate is the
    /// full-coverage answer).
    pub fn is_complete(&self) -> bool {
        self.parties_heard >= self.parties_referenced
    }

    /// Fraction of referenced parties heard, in `[0, 1]` (1 when the
    /// expressions reference none).
    pub fn coverage(&self) -> f64 {
        if self.parties_referenced == 0 {
            1.0
        } else {
            (self.parties_heard as f64 / self.parties_referenced as f64).min(1.0)
        }
    }
}

/// The central aggregator of the distributed-streams model, generic over
/// the sketch payload it unions (labels only, `u64` weights, ...).
///
/// Most code wants the label-only alias [`Referee`].
///
/// Besides the running union, the referee retains each party's own
/// merged summary (one sketch per party heard — logarithmic space each,
/// the same order as the messages themselves), which is what powers the
/// set-expression query API ([`RefereeOf::query`]) over the fleet.
#[derive(Clone, Debug)]
pub struct RefereeOf<V: WirePayload> {
    master_seed: u64,
    union: GtSketch<V>,
    messages: usize,
    bytes_received: usize,
    items_reported: u64,
    /// Accepted payload fingerprints per party; the first entry is the
    /// party's first accepted message, later entries are merged variants.
    accepted_payloads: HashMap<usize, Vec<u64>>,
    /// Per-party retained summaries: the union of every accepted payload
    /// from that party (variants merge in). Feeds the expression engine.
    /// The frame path *replaces* a party's entry instead (cumulative
    /// snapshots supersede, they don't accumulate).
    party_sketches: HashMap<usize, GtSketch<V>>,
    /// Per-party watermark + base-fingerprint window of the frame path.
    delta_state: HashMap<usize, PartyDeltaState>,
    telemetry: RefereeTelemetry,
    delta_telemetry: DeltaPlaneTelemetry,
    /// Pooled scratch sketches for [`RefereeOf::receive_batch`]: messages
    /// decode into these in place (no per-message sketch allocation), and
    /// the pool only ever grows to the historical maximum of accepted
    /// messages per batch.
    decode_arena: Vec<GtSketch<V>>,
    /// Reusable decode buffers shared across the arena.
    scratch: DecodeScratch<V>,
}

/// The referee for plain distinct-count sketches (no payload).
pub type Referee = RefereeOf<()>;

impl<V: WirePayload> RefereeOf<V> {
    /// Create a referee expecting sketches built from `(config,
    /// master_seed)`.
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        RefereeOf {
            master_seed,
            union: GtSketch::new(config, master_seed),
            messages: 0,
            bytes_received: 0,
            items_reported: 0,
            accepted_payloads: HashMap::new(),
            party_sketches: HashMap::new(),
            delta_state: HashMap::new(),
            telemetry: RefereeTelemetry::default(),
            delta_telemetry: DeltaPlaneTelemetry::default(),
            decode_arena: Vec::new(),
            scratch: DecodeScratch::new(),
        }
    }

    /// Receive one delivery: dedup, decode, validate, union.
    ///
    /// Safe to call any number of times with redeliveries of the same
    /// message — see the module docs on at-least-once idempotence.
    pub fn receive(&mut self, msg: &PartyMessage) -> Result<Receipt, CodecError> {
        let fingerprint = payload_fingerprint(&msg.payload);
        let prior = self.accepted_payloads.get(&msg.party_id);
        if prior.is_some_and(|fps| fps.contains(&fingerprint)) {
            self.telemetry.duplicates_suppressed += 1;
            return Ok(Receipt::Duplicate);
        }

        let decode_start = Instant::now();
        let decoded = decode_sketch::<V>(msg.payload.clone()).and_then(|sketch| {
            if sketch.master_seed() == self.master_seed {
                Ok(sketch)
            } else {
                Err(CodecError::Sketch(gt_core::SketchError::SeedMismatch))
            }
        });
        self.telemetry.decode_time += decode_start.elapsed();
        let sketch = match decoded {
            Ok(sketch) => sketch,
            Err(e) => {
                self.telemetry.record_reject(&e);
                return Err(e);
            }
        };
        let merge_start = Instant::now();
        let merged = self.union.merge_from(&sketch);
        self.telemetry.merge_time += merge_start.elapsed();
        if let Err(e) = merged {
            let e = CodecError::from(e);
            self.telemetry.record_reject(&e);
            return Err(e);
        }
        absorb_party_sketch(&mut self.party_sketches, msg.party_id, sketch);
        Ok(self.commit_accepted(msg.party_id, fingerprint, msg.bytes(), msg.items_observed))
    }

    /// Receive one continuous-monitoring **frame** (see
    /// [`crate::codec::Frame`]): a full cumulative snapshot, or a delta
    /// coded against a previously acked base.
    ///
    /// The live union is maintained incrementally and stays **bitwise
    /// identical** (canonical encoding) to a referee that decoded a
    /// fresh full ship of every party's latest applied state — the
    /// refresh merge debits the superseded snapshot's per-trial item
    /// counters so nothing is double-counted (`tests/delta_plane.rs`
    /// proves this over arbitrary delivery schedules).
    ///
    /// Idempotence and ordering: frames at or below the party's applied
    /// watermark return [`Receipt::Duplicate`] untouched, so duplicates
    /// and reorders are safe. A delta whose `(base generation, base
    /// fingerprint)` is not in the referee's applied history returns
    /// [`Receipt::NeedResync`] — the caller routes that back to the
    /// party, which falls back to a full frame. Because parties code
    /// deltas cumulatively against their last *acked* base, a delta is
    /// exact on any applied state between its base and its own
    /// generation, so lost acks never corrupt the union.
    pub fn receive_frame(&mut self, msg: &PartyMessage) -> Result<Receipt, CodecError> {
        let fingerprint = payload_fingerprint(&msg.payload);
        let prior = self.accepted_payloads.get(&msg.party_id);
        if prior.is_some_and(|fps| fps.contains(&fingerprint)) {
            self.telemetry.duplicates_suppressed += 1;
            self.delta_telemetry.duplicate_frames += 1;
            return Ok(Receipt::Duplicate);
        }

        let decode_start = Instant::now();
        let decoded = decode_frame::<V>(msg.payload.clone()).and_then(|frame| {
            let sketch = match &frame {
                Frame::Full { sketch, .. } => sketch,
                Frame::Delta { delta, .. } => delta,
            };
            if sketch.master_seed() == self.master_seed {
                Ok(frame)
            } else {
                Err(CodecError::Sketch(gt_core::SketchError::SeedMismatch))
            }
        });
        self.telemetry.decode_time += decode_start.elapsed();
        let frame = match decoded {
            Ok(frame) => frame,
            Err(e) => {
                self.telemetry.record_reject(&e);
                return Err(e);
            }
        };

        let watermark = self.delta_state.get(&msg.party_id).map(|s| s.watermark);
        if watermark.is_some_and(|w| frame.generation() <= w) {
            self.telemetry.duplicates_suppressed += 1;
            self.delta_telemetry.duplicate_frames += 1;
            return Ok(Receipt::Duplicate);
        }

        match frame {
            Frame::Full { generation, sketch } => {
                let old_items = self.party_trial_items(msg.party_id);
                let merge_start = Instant::now();
                let merged = self.union.merge_refresh_from(&sketch, &old_items);
                self.telemetry.merge_time += merge_start.elapsed();
                if let Err(e) = merged {
                    let e = CodecError::from(e);
                    self.telemetry.record_reject(&e);
                    return Err(e);
                }
                let state_fp = payload_fingerprint(&encode_sketch(&sketch));
                self.party_sketches.insert(msg.party_id, sketch);
                let state = self.delta_state.entry(msg.party_id).or_default();
                state.watermark = generation;
                // A full frame re-keys the chain: older bases are dead.
                state.history.clear();
                state.history.push((generation, state_fp));
                self.delta_telemetry.full_frames += 1;
                self.delta_telemetry.full_bytes += msg.bytes() as u64;
                self.commit_frame(msg.party_id, fingerprint, msg.bytes(), msg.items_observed);
                Ok(Receipt::Merged)
            }
            Frame::Delta {
                generation,
                base_generation,
                base_fingerprint,
                delta,
            } => {
                let base_known = self.delta_state.get(&msg.party_id).is_some_and(|s| {
                    s.history
                        .iter()
                        .any(|&(g, fp)| g == base_generation && fp == base_fingerprint)
                });
                if !base_known {
                    self.delta_telemetry.resyncs_requested += 1;
                    return Ok(Receipt::NeedResync);
                }
                let current = self
                    .party_sketches
                    .get(&msg.party_id)
                    .expect("a validated delta base implies a retained party sketch");
                let old_items: Vec<u64> =
                    current.trials().iter().map(|t| t.items_observed()).collect();
                let mut next = current.clone();
                let merge_start = Instant::now();
                let applied = apply_delta(&mut next, &delta)
                    .and_then(|()| self.union.merge_refresh_from(&next, &old_items));
                self.telemetry.merge_time += merge_start.elapsed();
                if let Err(e) = applied {
                    let e = CodecError::from(e);
                    self.telemetry.record_reject(&e);
                    return Err(e);
                }
                let state_fp = payload_fingerprint(&encode_sketch(&next));
                self.party_sketches.insert(msg.party_id, next);
                let state = self
                    .delta_state
                    .get_mut(&msg.party_id)
                    .expect("base_known checked above");
                state.watermark = generation;
                // Bases older than the one just consumed can never be
                // referenced again (the party's acked base only advances).
                state.history.retain(|&(g, _)| g >= base_generation);
                state.history.push((generation, state_fp));
                if state.history.len() > MAX_FP_HISTORY {
                    let excess = state.history.len() - MAX_FP_HISTORY;
                    state.history.drain(..excess);
                }
                self.delta_telemetry.delta_frames += 1;
                self.delta_telemetry.delta_bytes += msg.bytes() as u64;
                self.commit_frame(msg.party_id, fingerprint, msg.bytes(), msg.items_observed);
                Ok(Receipt::Merged)
            }
        }
    }

    /// Bookkeeping for one applied frame: every applied frame counts as
    /// a message (frames supersede, they are not redeliveries), while
    /// `items_reported` advances by the *difference* of the party's
    /// cumulative counter so it stays exactly-once across refreshes.
    fn commit_frame(&mut self, party_id: usize, fingerprint: u64, bytes: usize, items: u64) {
        let fps = self.accepted_payloads.entry(party_id).or_default();
        fps.push(fingerprint);
        if fps.len() > MAX_FP_HISTORY {
            let excess = fps.len() - MAX_FP_HISTORY;
            fps.drain(..excess);
        }
        self.telemetry.accepted += 1;
        self.messages += 1;
        self.bytes_received += bytes;
        let state = self
            .delta_state
            .get_mut(&party_id)
            .expect("commit_frame follows delta_state insertion");
        self.items_reported += items.saturating_sub(state.items);
        state.items = items;
    }

    /// Per-trial `items_observed` counters of a party's retained
    /// summary, or zeros if the party is unheard — the debit vector for
    /// a refresh merge.
    fn party_trial_items(&self, party_id: usize) -> Vec<u64> {
        match self.party_sketches.get(&party_id) {
            Some(s) => s.trials().iter().map(|t| t.items_observed()).collect(),
            None => vec![0; self.union.trials().len()],
        }
    }

    /// Highest frame generation applied for `party_id` (the generation
    /// the caller should ack back to the party), if any frame was
    /// applied.
    pub fn acked_generation(&self, party_id: usize) -> Option<u64> {
        self.delta_state.get(&party_id).map(|s| s.watermark)
    }

    /// Frame-path accounting: applied delta/full frames and bytes,
    /// resync requests, suppressed duplicates.
    pub fn delta_telemetry(&self) -> &DeltaPlaneTelemetry {
        &self.delta_telemetry
    }

    /// Receive a whole batch of deliveries at once: fingerprint-dedup up
    /// front, decode into the pooled arena (zero per-message sketch
    /// allocation), tree-union the accepted sketches
    /// ([`gt_core::merge_tree`]), and fold the batch union into the
    /// running union with a single merge.
    ///
    /// Returns one receipt per input message, in order. The union sketch
    /// state, all exactly-once counters (`messages`, `bytes_received`,
    /// `items_reported`), and every count-based telemetry field match a
    /// sequence of per-message [`RefereeOf::receive`] calls on the same
    /// messages in the same order — the tree reassociation is lossless
    /// (see DESIGN.md §12). The only observable differences are
    /// per-batch: the union sketch's *ops metrics* count one merge call
    /// per batch instead of one per accepted message, and
    /// [`RefereeTelemetry::batches`] / summaries-per-batch advance.
    pub fn receive_batch(&mut self, msgs: &[PartyMessage]) -> Vec<Result<Receipt, CodecError>> {
        let mut receipts: Vec<Result<Receipt, CodecError>> = Vec::with_capacity(msgs.len());
        if msgs.is_empty() {
            return receipts;
        }
        self.telemetry.batches += 1;
        self.telemetry.summaries_per_batch[batch_size_bucket(msgs.len())] += 1;

        // Accepted-message bookkeeping, deferred until the batch union
        // commits. The k-th accepted message lives in decode_arena[k].
        struct Accepted {
            receipt_index: usize,
            party_id: usize,
            fingerprint: u64,
            bytes: usize,
            items: u64,
        }
        let mut accepted: Vec<Accepted> = Vec::new();

        // Phase 1: dedup + decode. Only messages that actually decode
        // (and will therefore be accepted) may suppress later identical
        // bytes — a corrupt message redelivered within one batch must
        // error twice, exactly as sequential receives would.
        let decode_start = Instant::now();
        for msg in msgs {
            let fingerprint = payload_fingerprint(&msg.payload);
            let dup = self
                .accepted_payloads
                .get(&msg.party_id)
                .is_some_and(|fps| fps.contains(&fingerprint))
                || accepted
                    .iter()
                    .any(|a| a.party_id == msg.party_id && a.fingerprint == fingerprint);
            if dup {
                self.telemetry.duplicates_suppressed += 1;
                receipts.push(Ok(Receipt::Duplicate));
                continue;
            }
            if self.decode_arena.len() == accepted.len() {
                self.decode_arena
                    .push(GtSketch::new(self.union.config(), self.master_seed));
            }
            let slot = &mut self.decode_arena[accepted.len()];
            match decode_sketch_into(slot, msg.payload.clone(), &mut self.scratch) {
                Ok(()) => {
                    accepted.push(Accepted {
                        receipt_index: receipts.len(),
                        party_id: msg.party_id,
                        fingerprint,
                        bytes: msg.bytes(),
                        items: msg.items_observed,
                    });
                    // Placeholder; finalized at commit time below.
                    receipts.push(Ok(Receipt::Merged));
                }
                Err(e) => {
                    self.telemetry.record_reject(&e);
                    receipts.push(Err(e));
                }
            }
        }
        self.telemetry.decode_time += decode_start.elapsed();
        if accepted.is_empty() {
            return receipts;
        }

        // Phase 2: balanced tree union over the batch, then one fold into
        // the running union. Cannot fail on this path — every arena
        // sketch was decoded against the union's own seed and config —
        // but a defensive sequential fallback preserves exact per-message
        // attribution if that invariant is ever broken.
        let merge_start = Instant::now();
        let merged = merge_tree(&self.decode_arena[..accepted.len()])
            .and_then(|batch_union| self.union.merge_from(&batch_union));
        self.telemetry.merge_time += merge_start.elapsed();
        match merged {
            Ok(()) => {
                for (k, a) in accepted.into_iter().enumerate() {
                    absorb_party_sketch(
                        &mut self.party_sketches,
                        a.party_id,
                        self.decode_arena[k].clone(),
                    );
                    receipts[a.receipt_index] =
                        Ok(self.commit_accepted(a.party_id, a.fingerprint, a.bytes, a.items));
                }
            }
            Err(_) => {
                for (k, a) in accepted.into_iter().enumerate() {
                    let merge_start = Instant::now();
                    let merged = self.union.merge_from(&self.decode_arena[k]);
                    self.telemetry.merge_time += merge_start.elapsed();
                    receipts[a.receipt_index] = match merged {
                        Ok(()) => {
                            absorb_party_sketch(
                                &mut self.party_sketches,
                                a.party_id,
                                self.decode_arena[k].clone(),
                            );
                            Ok(self.commit_accepted(a.party_id, a.fingerprint, a.bytes, a.items))
                        }
                        Err(e) => {
                            let e = CodecError::from(e);
                            self.telemetry.record_reject(&e);
                            Err(e)
                        }
                    };
                }
            }
        }
        receipts
    }

    /// Exactly-once bookkeeping for one accepted message (shared by the
    /// per-message and batch paths): push the fingerprint and bill the
    /// party once.
    fn commit_accepted(
        &mut self,
        party_id: usize,
        fingerprint: u64,
        bytes: usize,
        items: u64,
    ) -> Receipt {
        let heard_before = self.accepted_payloads.contains_key(&party_id);
        self.accepted_payloads
            .entry(party_id)
            .or_default()
            .push(fingerprint);
        if heard_before {
            self.telemetry.duplicates_merged += 1;
            Receipt::MergedVariant
        } else {
            self.telemetry.accepted += 1;
            self.messages += 1;
            self.bytes_received += bytes;
            self.items_reported += items;
            Receipt::Merged
        }
    }

    /// Per-stage telemetry: decode outcomes by reason, duplicate counts,
    /// and phase timings.
    pub fn telemetry(&self) -> &RefereeTelemetry {
        &self.telemetry
    }

    /// Observability counters of the union sketch itself (merge entry
    /// accounting, reconciliations, promotions).
    pub fn union_metrics(&self) -> gt_core::MetricsSnapshot {
        self.union.metrics_snapshot()
    }

    /// `(ε, δ)`-estimate of the distinct labels in the union of all
    /// received streams.
    pub fn estimate_distinct(&self) -> Estimate {
        self.union.estimate_distinct()
    }

    /// Degraded-mode query: the estimate together with coverage, for
    /// callers that must know whether the `(ε, δ)` contract applies to
    /// the full union or only the parties heard.
    pub fn estimate_distinct_partial(&self, parties_expected: usize) -> PartialEstimate {
        PartialEstimate {
            estimate: self.union.estimate_distinct(),
            parties_heard: self.parties_heard(),
            parties_expected,
            items_reported: self.items_reported,
        }
    }

    /// The merged union sketch (for similarity/predicate/weighted
    /// queries).
    pub fn union_sketch(&self) -> &GtSketch<V> {
        &self.union
    }

    /// The retained summary of one party (the union of all its accepted
    /// payloads), if it has been heard.
    pub fn party_sketch(&self, party_id: usize) -> Option<&GtSketch<V>> {
        self.party_sketches.get(&party_id)
    }

    /// The distinct referenced party ids of one or more expressions,
    /// sorted ascending.
    fn referenced_parties(exprs: &[&SetExpr]) -> Vec<usize> {
        let mut ids: Vec<usize> = Vec::new();
        for e in exprs {
            e.for_each_leaf(&mut |i| ids.push(i));
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Build the evaluation context for `exprs`, with leaves remapped
    /// from party ids to dense operand indices. `strict` rejects unheard
    /// referenced parties; otherwise they evaluate as empty streams
    /// (backed by `empty`, which the caller keeps alive for the borrow).
    fn expr_context<'s>(
        &'s self,
        exprs: &[&SetExpr],
        empty: &'s GtSketch<V>,
        strict: bool,
    ) -> gt_core::Result<(ExprContext<'s, V>, Vec<SetExpr>, usize, usize)> {
        let ids = Self::referenced_parties(exprs);
        let mut heard = 0usize;
        let mut operands: Vec<&GtSketch<V>> = Vec::with_capacity(ids.len());
        for &id in &ids {
            match self.party_sketches.get(&id) {
                Some(s) => {
                    heard += 1;
                    operands.push(s);
                }
                None if strict => {
                    return Err(SketchError::InvalidConfig {
                        parameter: "expr",
                        reason: format!("party {id} referenced but not heard"),
                    })
                }
                None => operands.push(empty),
            }
        }
        let remap: HashMap<usize, usize> = ids
            .iter()
            .enumerate()
            .map(|(dense, &id)| (id, dense))
            .collect();
        let remapped = exprs.iter().map(|e| remap_leaves(e, &remap)).collect();
        Ok((ExprContext::new(&operands)?, remapped, heard, ids.len()))
    }

    /// Evaluate a set expression over the retained party summaries.
    /// Leaves are **party ids**: `SetExpr::leaf(3)` is the distinct-label
    /// set of party 3's stream.
    ///
    /// Strict-coverage mode: every referenced party must have an accepted
    /// message (use [`RefereeOf::query_partial`] to tolerate gaps). The
    /// estimate carries the `(ε, δ)` of the shared configuration with the
    /// additive error contract described in [`gt_core::expr`], plus the
    /// per-trial variance and ±2·SE confidence interval.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] when the expression references an
    /// unheard party or the expression is otherwise invalid.
    pub fn query(&self, expr: &SetExpr) -> gt_core::Result<ExpressionEstimate> {
        let empty = GtSketch::new(self.union.config(), self.master_seed);
        let (ctx, remapped, _, _) = self.expr_context(&[expr], &empty, true)?;
        ctx.eval(&remapped[0])
    }

    /// Jaccard similarity between two set expressions over the retained
    /// party summaries (strict coverage, like [`RefereeOf::query`]).
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] when either expression references
    /// an unheard party.
    pub fn query_jaccard(&self, e1: &SetExpr, e2: &SetExpr) -> gt_core::Result<JaccardEstimate> {
        let empty = GtSketch::new(self.union.config(), self.master_seed);
        let (ctx, remapped, _, _) = self.expr_context(&[e1, e2], &empty, true)?;
        ctx.eval_jaccard(&remapped[0], &remapped[1])
    }

    /// Degraded-mode expression query: unheard referenced parties are
    /// evaluated as empty streams, and the answer reports how many of the
    /// referenced parties were actually heard — the expression-engine
    /// counterpart of [`RefereeOf::estimate_distinct_partial`].
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] for malformed expressions (coverage
    /// gaps are *not* errors here — that is the point of this entry).
    pub fn query_partial(&self, expr: &SetExpr) -> gt_core::Result<PartialExpressionEstimate> {
        let empty = GtSketch::new(self.union.config(), self.master_seed);
        let (ctx, remapped, heard, referenced) = self.expr_context(&[expr], &empty, false)?;
        Ok(PartialExpressionEstimate {
            estimate: ctx.eval(&remapped[0])?,
            parties_heard: heard,
            parties_referenced: referenced,
        })
    }

    /// Degraded-mode Jaccard query: unheard referenced parties evaluate
    /// as empty streams — the Jaccard counterpart of
    /// [`RefereeOf::query_partial`]. Note that an empty leaf can swing
    /// the similarity in either direction (it empties intersections but
    /// also shrinks unions), so callers must check coverage before
    /// comparing answers across runs.
    ///
    /// # Errors
    /// [`SketchError::InvalidConfig`] for malformed expressions (coverage
    /// gaps are *not* errors here).
    pub fn query_jaccard_partial(
        &self,
        e1: &SetExpr,
        e2: &SetExpr,
    ) -> gt_core::Result<PartialJaccardEstimate> {
        let empty = GtSketch::new(self.union.config(), self.master_seed);
        let (ctx, remapped, heard, referenced) = self.expr_context(&[e1, e2], &empty, false)?;
        Ok(PartialJaccardEstimate {
            estimate: ctx.eval_jaccard(&remapped[0], &remapped[1])?,
            parties_heard: heard,
            parties_referenced: referenced,
        })
    }

    /// Distinct parties with at least one accepted message.
    pub fn parties_heard(&self) -> usize {
        self.accepted_payloads.len()
    }

    /// Whether this party already has an accepted message.
    pub fn has_heard(&self, party_id: usize) -> bool {
        self.accepted_payloads.contains_key(&party_id)
    }

    /// Messages accepted so far, exactly-once per party (redeliveries are
    /// deduplicated, not counted).
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Total bytes received and merged, exactly-once per party — the
    /// scenario's communication cost net of retransmissions. (Retransmit
    /// traffic is accounted by the transport, not here.)
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Total items the parties reported observing, exactly-once per
    /// party.
    pub fn items_reported(&self) -> u64 {
        self.items_reported
    }
}

impl RefereeOf<gt_core::LatestTs> {
    /// Distributed windowed query: estimate of distinct labels across
    /// **all parties** whose latest arrival (at any party) is at or
    /// after `since` — the referee-side counterpart of
    /// [`gt_core::RecencySketch::estimate_distinct_since`], answered
    /// from the live union (per-label timestamps reconcile by `max`
    /// across parties, both on the classic path and under the delta
    /// plane's refresh merges).
    pub fn query_distinct_since(&self, since: u64) -> Estimate {
        gt_core::estimate_distinct_since_on(&self.union, since)
    }
}

/// Fold one accepted payload into the retained per-party summary.
/// Variants of a party's message merge in, so the summary is the union of
/// everything the party has been heard to say.
fn absorb_party_sketch<V: WirePayload>(
    map: &mut HashMap<usize, GtSketch<V>>,
    party_id: usize,
    sketch: GtSketch<V>,
) {
    match map.entry(party_id) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            e.get_mut()
                .merge_from(&sketch)
                .expect("party sketches share the union's seed and config");
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(sketch);
        }
    }
}

/// Rewrite every leaf's party id to its dense operand index.
fn remap_leaves(expr: &SetExpr, remap: &HashMap<usize, usize>) -> SetExpr {
    match expr {
        SetExpr::Leaf(id) => SetExpr::leaf(remap[id]),
        SetExpr::Union(a, b) => remap_leaves(a, remap).union(remap_leaves(b, remap)),
        SetExpr::Intersect(a, b) => remap_leaves(a, remap).intersect(remap_leaves(b, remap)),
        SetExpr::Difference(a, b) => remap_leaves(a, remap).difference(remap_leaves(b, remap)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_sketch;
    use crate::party::Party;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn labels(range: std::ops::Range<u64>) -> Vec<u64> {
        range.map(gt_hash::fold61).collect()
    }

    fn message(party: usize, range: std::ops::Range<u64>, seed: u64) -> PartyMessage {
        let mut p = Party::new(party, &cfg(), seed);
        p.observe_stream(&labels(range));
        p.finish()
    }

    #[test]
    fn referee_unions_party_messages() {
        let config = cfg();
        let mut referee = Referee::new(&config, 5);
        for p in 0..4usize {
            let mut party = Party::new(p, &config, 5);
            // Overlapping ranges; union = [0, 250 + 150·3) = 700 labels,
            // under the per-trial capacity so the union estimate is exact.
            party.observe_stream(&labels(p as u64 * 150..p as u64 * 150 + 250));
            assert_eq!(referee.receive(&party.finish()).unwrap(), Receipt::Merged);
        }
        assert_eq!(referee.messages(), 4);
        assert_eq!(referee.parties_heard(), 4);
        assert_eq!(referee.estimate_distinct().value, 700.0);
        assert!(referee.bytes_received() > 0);
        assert_eq!(referee.items_reported(), 4 * 250);
    }

    #[test]
    fn redelivery_is_suppressed_exactly_once() {
        let mut referee = Referee::new(&cfg(), 5);
        let msg = message(0, 0..300, 5);
        assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
        let snapshot = (
            encode_sketch(referee.union_sketch()),
            referee.messages(),
            referee.bytes_received(),
            referee.items_reported(),
            referee.union_metrics(),
        );
        for round in 1..=5usize {
            assert_eq!(referee.receive(&msg).unwrap(), Receipt::Duplicate);
            assert_eq!(referee.telemetry().duplicates_suppressed, round);
        }
        // Bitwise-identical union, exactly-once counters, untouched
        // sketch-ops metrics: redelivery changed *nothing* but the
        // duplicate counter.
        assert_eq!(encode_sketch(referee.union_sketch()), snapshot.0);
        assert_eq!(referee.messages(), snapshot.1);
        assert_eq!(referee.bytes_received(), snapshot.2);
        assert_eq!(referee.items_reported(), snapshot.3);
        assert_eq!(referee.union_metrics(), snapshot.4);
        assert_eq!(referee.telemetry().accepted, 1);
        assert_eq!(referee.telemetry().attempts(), 6);
    }

    #[test]
    fn variant_payload_merges_without_recounting() {
        // Same party sends two different-but-valid payloads (e.g. a
        // retransmit raced a sketch that kept observing). The union
        // absorbs both; the exactly-once counters bill the party once.
        let mut referee = Referee::new(&cfg(), 5);
        let first = message(7, 0..200, 5);
        let second = message(7, 0..350, 5);
        assert_eq!(referee.receive(&first).unwrap(), Receipt::Merged);
        assert_eq!(referee.receive(&second).unwrap(), Receipt::MergedVariant);
        assert_eq!(referee.messages(), 1);
        assert_eq!(referee.parties_heard(), 1);
        assert_eq!(referee.items_reported(), first.items_observed);
        assert_eq!(referee.bytes_received(), first.bytes());
        assert_eq!(referee.telemetry().duplicates_merged, 1);
        // Both payloads' labels are in the union.
        assert_eq!(referee.estimate_distinct().value, 350.0);
        // Redelivering either exact payload is now suppressed.
        assert_eq!(referee.receive(&first).unwrap(), Receipt::Duplicate);
        assert_eq!(referee.receive(&second).unwrap(), Receipt::Duplicate);
    }

    #[test]
    fn partial_estimate_reports_coverage() {
        let mut referee = Referee::new(&cfg(), 5);
        referee.receive(&message(0, 0..400, 5)).unwrap();
        referee.receive(&message(1, 200..600, 5)).unwrap();
        let partial = referee.estimate_distinct_partial(4);
        assert_eq!(partial.parties_heard, 2);
        assert_eq!(partial.parties_expected, 4);
        assert!(!partial.is_complete());
        assert_eq!(partial.coverage(), 0.5);
        assert_eq!(partial.estimate.value, 600.0);
        assert_eq!(partial.items_reported, 800);

        referee.receive(&message(2, 0..100, 5)).unwrap();
        referee.receive(&message(3, 0..100, 5)).unwrap();
        let partial = referee.estimate_distinct_partial(4);
        assert!(partial.is_complete());
        assert_eq!(partial.coverage(), 1.0);
    }

    #[test]
    fn depth_three_expression_query_tracks_exact_truth() {
        // Four parties, everything below per-trial capacity, so the
        // engine is exact: ((s0 ∪ s1) ∩ s2) ∖ s3 over
        // [0,300) ∪ [200,500) = [0,500); ∩ [250,350) = [250,350);
        // ∖ [300,700) = [250,300) → 50 labels.
        let mut referee = Referee::new(&cfg(), 5);
        referee.receive(&message(0, 0..300, 5)).unwrap();
        referee.receive(&message(1, 200..500, 5)).unwrap();
        referee.receive(&message(2, 250..350, 5)).unwrap();
        referee.receive(&message(3, 300..700, 5)).unwrap();

        let expr = SetExpr::leaf(0)
            .union(SetExpr::leaf(1))
            .intersect(SetExpr::leaf(2))
            .difference(SetExpr::leaf(3));
        assert!(expr.depth() >= 3);
        let answer = referee.query(&expr).unwrap();
        assert_eq!(answer.estimate.value, 50.0);
        assert!(answer.ci_lower() <= answer.estimate.value);
        assert!(answer.ci_upper() >= answer.estimate.value);
        assert_eq!(answer.trials, referee.union_sketch().config().trials());

        // Jaccard of two non-leaf expressions, still exact:
        // |[250,350) ∩ [0,500)| / |[250,350) ∪ [0,500)| = 100 / 500.
        let j = referee
            .query_jaccard(&SetExpr::leaf(2), &SetExpr::leaf(0).union(SetExpr::leaf(1)))
            .unwrap();
        assert_eq!(j.jaccard, 0.2);
    }

    #[test]
    fn strict_query_rejects_unheard_parties_partial_tolerates_them() {
        let mut referee = Referee::new(&cfg(), 5);
        referee.receive(&message(0, 0..400, 5)).unwrap();

        let expr = SetExpr::leaf(0).union(SetExpr::leaf(1));
        let err = referee.query(&expr).unwrap_err();
        assert!(
            err.to_string().contains("party 1"),
            "error should name the missing party: {err}"
        );
        assert!(referee
            .query_jaccard(&SetExpr::leaf(0), &SetExpr::leaf(1))
            .is_err());

        // Degraded mode: the unheard party contributes an empty stream
        // and the answer reports the coverage gap.
        let partial = referee.query_partial(&expr).unwrap();
        assert_eq!(partial.estimate.estimate.value, 400.0);
        assert_eq!(partial.parties_heard, 1);
        assert_eq!(partial.parties_referenced, 2);
        assert!(!partial.is_complete());
        assert_eq!(partial.coverage(), 0.5);

        referee.receive(&message(1, 200..600, 5)).unwrap();
        let partial = referee.query_partial(&expr).unwrap();
        assert!(partial.is_complete());
        assert_eq!(partial.coverage(), 1.0);
        assert_eq!(partial.estimate.estimate.value, 600.0);
        assert_eq!(referee.query(&expr).unwrap().estimate.value, 600.0);
    }

    #[test]
    fn pairwise_query_matches_similarity() {
        // At scale (subsampled trials), the referee's expression path and
        // the direct pairwise `similarity()` over the retained summaries
        // must agree exactly — the engine is the same code.
        let mut referee = Referee::new(&cfg(), 5);
        referee.receive(&message(0, 0..60_000, 5)).unwrap();
        referee.receive(&message(1, 30_000..90_000, 5)).unwrap();

        let sim = gt_core::similarity(
            referee.party_sketch(0).unwrap(),
            referee.party_sketch(1).unwrap(),
        )
        .unwrap();
        let (a, b) = (SetExpr::leaf(0), SetExpr::leaf(1));
        let j = referee.query_jaccard(&a, &b).unwrap();
        assert_eq!(j.jaccard, sim.jaccard);
        let union = referee.query(&a.clone().union(b.clone())).unwrap();
        assert_eq!(union.estimate.value, sim.union);
        let inter = referee.query(&a.clone().intersect(b.clone())).unwrap();
        assert_eq!(inter.estimate.value, sim.intersection);
        let diff = referee.query(&a.difference(b)).unwrap();
        assert_eq!(diff.estimate.value, sim.difference_a_minus_b);
    }

    #[test]
    fn variant_payloads_accumulate_in_the_party_summary() {
        let mut referee = Referee::new(&cfg(), 5);
        referee.receive(&message(7, 0..200, 5)).unwrap();
        assert_eq!(
            referee.query(&SetExpr::leaf(7)).unwrap().estimate.value,
            200.0
        );
        assert_eq!(
            referee.receive(&message(7, 0..350, 5)).unwrap(),
            Receipt::MergedVariant
        );
        // The summary is the union of everything party 7 said.
        assert_eq!(
            referee.query(&SetExpr::leaf(7)).unwrap().estimate.value,
            350.0
        );
        assert!(referee.party_sketch(8).is_none());
    }

    #[test]
    fn referee_rejects_foreign_seeds() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 2); // wrong seed
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());
        assert_eq!(referee.messages(), 0);
        assert_eq!(referee.parties_heard(), 0);
    }

    #[test]
    fn referee_rejects_corrupt_payloads() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());
    }

    #[test]
    fn rejected_message_can_be_retried_clean() {
        // A corrupt delivery must not poison the party: the intact
        // retransmit of the same message is accepted afterwards.
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        let msg = party.finish();
        let mut corrupt = msg.clone();
        let mut raw = corrupt.payload.to_vec();
        raw.truncate(raw.len() / 2);
        corrupt.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&corrupt).is_err());
        assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
        assert_eq!(referee.messages(), 1);
        assert_eq!(referee.telemetry().rejected(), 1);
    }

    #[test]
    fn empty_referee_estimates_zero() {
        let referee = Referee::new(&cfg(), 9);
        assert_eq!(referee.estimate_distinct().value, 0.0);
        assert_eq!(referee.bytes_received(), 0);
        assert_eq!(referee.parties_heard(), 0);
        assert_eq!(*referee.telemetry(), RefereeTelemetry::default());
        let partial = referee.estimate_distinct_partial(0);
        assert!(partial.is_complete());
        assert_eq!(partial.coverage(), 1.0);
    }

    #[test]
    fn telemetry_classifies_accepts_and_rejects() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);

        // One good message.
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        referee.receive(&party.finish()).unwrap();

        // One truncated message.
        let mut party = Party::new(1, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());

        // One foreign-seed message (decodes, fails sketch validation).
        let mut party = Party::new(2, &config, 99);
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());

        let t = referee.telemetry();
        assert_eq!(t.accepted, 1);
        assert_eq!(t.rejected_sketch, 1);
        assert_eq!(t.rejected(), 2);
        assert_eq!(t.duplicates(), 0);
        // Count-based (not timing-based — coarse platform clocks can
        // round a fast decode to zero): every receive call is accounted
        // for in exactly one bucket.
        assert_eq!(t.attempts(), 3);
        assert_eq!(t.rejected_bad_magic + t.rejected_bad_tag, 0);
    }

    #[test]
    fn payload_referee_unions_weighted_sketches() {
        use gt_core::SumDistinctSketch;
        let config = cfg();
        let mut referee: RefereeOf<u64> = RefereeOf::new(&config, 8);
        // Two parties observe overlapping (label, weight) streams.
        for (id, range) in [(0usize, 0u64..300), (1, 150..450)] {
            let mut s = SumDistinctSketch::new(&config, 8);
            for i in range {
                s.insert(gt_hash::fold61(i), i % 7 + 1);
            }
            let msg = PartyMessage {
                party_id: id,
                payload: encode_sketch(s.inner()),
                items_observed: s.inner().items_observed(),
            };
            assert_eq!(referee.receive(&msg).unwrap(), Receipt::Merged);
            // Redelivery of a weighted payload dedups too.
            assert_eq!(referee.receive(&msg).unwrap(), Receipt::Duplicate);
        }
        let expected: f64 = (0u64..450).map(|i| (i % 7 + 1) as f64).sum();
        let estimated = referee.union_sketch().estimate_weighted(|_, v| v as f64);
        assert!(
            (estimated - expected).abs() / expected < 0.1,
            "weighted union {estimated} vs {expected}"
        );
        assert_eq!(referee.telemetry().duplicates_suppressed, 2);
    }

    /// Zero the fields that legitimately differ between the batch and
    /// per-message paths (timings are nondeterministic; batch counters
    /// only advance on the batch path), leaving every exactly-once count.
    fn countable(t: &RefereeTelemetry) -> RefereeTelemetry {
        RefereeTelemetry {
            decode_time: Duration::ZERO,
            merge_time: Duration::ZERO,
            batches: 0,
            summaries_per_batch: [0; 5],
            ..*t
        }
    }

    #[test]
    fn receive_batch_matches_sequential_receives() {
        // A messy batch: good messages, an in-batch byte-identical
        // duplicate, a corrupt message delivered twice (must error twice,
        // not dedup), a foreign seed, and a variant payload from an
        // already-heard party. Union bytes, counters, receipts, and
        // count-based telemetry must all match per-message receives.
        let good0 = message(0, 0..300, 5);
        let good1 = message(1, 150..450, 5);
        let variant0 = message(0, 0..400, 5);
        let mut corrupt = message(2, 0..200, 5);
        let mut raw = corrupt.payload.to_vec();
        raw.truncate(raw.len() / 2);
        corrupt.payload = bytes::Bytes::from(raw);
        let foreign = message(3, 0..100, 99);
        let batch = [
            good0.clone(),
            corrupt.clone(),
            good1.clone(),
            good0.clone(),   // in-batch duplicate
            corrupt.clone(), // corrupt redelivery: Err again, not Duplicate
            variant0.clone(),
            foreign.clone(),
        ];

        let mut sequential = Referee::new(&cfg(), 5);
        let want_receipts: Vec<_> = batch.iter().map(|m| sequential.receive(m)).collect();

        for split in [batch.len(), 3, 1] {
            let mut batched = Referee::new(&cfg(), 5);
            let mut got_receipts = Vec::new();
            for chunk in batch.chunks(split) {
                got_receipts.extend(batched.receive_batch(chunk));
            }
            assert_eq!(got_receipts, want_receipts, "split {split}");
            assert_eq!(
                encode_sketch(batched.union_sketch()),
                encode_sketch(sequential.union_sketch()),
                "split {split}: union state diverged"
            );
            assert_eq!(batched.messages(), sequential.messages());
            assert_eq!(batched.bytes_received(), sequential.bytes_received());
            assert_eq!(batched.items_reported(), sequential.items_reported());
            assert_eq!(batched.parties_heard(), sequential.parties_heard());
            // The retained per-party summaries (variant merges included)
            // must be bitwise-identical too, so expression queries cannot
            // depend on the delivery path.
            for party in 0..4usize {
                assert_eq!(
                    batched.party_sketch(party).map(encode_sketch),
                    sequential.party_sketch(party).map(encode_sketch),
                    "split {split}: party {party} summary diverged"
                );
            }
            assert_eq!(
                countable(batched.telemetry()),
                countable(sequential.telemetry()),
                "split {split}"
            );
            assert_eq!(batched.telemetry().batches, batch.len().div_ceil(split));
        }
    }

    #[test]
    fn batch_telemetry_histogram_buckets_sizes() {
        assert_eq!(batch_size_bucket(1), 0);
        assert_eq!(batch_size_bucket(2), 1);
        assert_eq!(batch_size_bucket(4), 1);
        assert_eq!(batch_size_bucket(5), 2);
        assert_eq!(batch_size_bucket(16), 2);
        assert_eq!(batch_size_bucket(17), 3);
        assert_eq!(batch_size_bucket(64), 3);
        assert_eq!(batch_size_bucket(65), 4);

        let mut referee = Referee::new(&cfg(), 5);
        // Empty batch: no state change, not even the batch counter.
        assert!(referee.receive_batch(&[]).is_empty());
        assert_eq!(referee.telemetry().batches, 0);

        let msgs: Vec<PartyMessage> = (0..6).map(|p| message(p, 0..50, 5)).collect();
        referee.receive_batch(&msgs[0..1]);
        referee.receive_batch(&msgs[1..4]);
        referee.receive_batch(&msgs[0..6]);
        let t = referee.telemetry();
        assert_eq!(t.batches, 3);
        assert_eq!(t.summaries_per_batch, [1, 1, 1, 0, 0]);
    }

    #[test]
    fn batch_arena_is_reused_across_batches() {
        // The pool grows to the largest batch's accepted count and stays
        // there; a later larger batch still produces the right union.
        let config = cfg();
        let mut referee = Referee::new(&config, 5);
        let first: Vec<PartyMessage> = (0..2).map(|p| message(p, 0..100, 5)).collect();
        let second: Vec<PartyMessage> = (2..7)
            .map(|p| message(p, p as u64 * 50..p as u64 * 50 + 100, 5))
            .collect();
        for r in referee.receive_batch(&first) {
            assert_eq!(r.unwrap(), Receipt::Merged);
        }
        for r in referee.receive_batch(&second) {
            assert_eq!(r.unwrap(), Receipt::Merged);
        }
        let mut oracle = Referee::new(&config, 5);
        for m in first.iter().chain(second.iter()) {
            oracle.receive(m).unwrap();
        }
        assert_eq!(
            encode_sketch(referee.union_sketch()),
            encode_sketch(oracle.union_sketch())
        );
        assert_eq!(referee.parties_heard(), 7);
    }

    #[test]
    fn union_metrics_reflect_merges() {
        let config = cfg();
        let mut referee = Referee::new(&config, 4);
        for p in 0..3usize {
            let mut party = Party::new(p, &config, 4);
            party.observe_stream(&labels(p as u64 * 100..p as u64 * 100 + 150));
            referee.receive(&party.finish()).unwrap();
        }
        let m = referee.union_metrics();
        assert_eq!(m.merge_calls, 3);
        assert!(m.merge_entries_absorbed > 0);
        // Overlapping ranges: both sides sampled some labels.
        assert!(m.merge_reconciliations > 0);
    }

    // ---- delta-plane (continuous-monitoring frame path) ----

    use crate::codec::encode_full_frame;
    use crate::party::DeltaParty;

    /// A full-ship oracle: a fresh referee handed one full frame of each
    /// party's current snapshot. The live union must match it bitwise.
    fn full_ship_union(config: &SketchConfig, seed: u64, parties: &[&DeltaParty<()>]) -> Bytes {
        let mut oracle = Referee::new(config, seed);
        for p in parties {
            let msg = PartyMessage {
                party_id: p.id(),
                payload: encode_full_frame(p.sketch(), 1),
                items_observed: p.sketch().items_observed(),
            };
            assert_eq!(oracle.receive_frame(&msg).unwrap(), Receipt::Merged);
        }
        encode_sketch(oracle.union_sketch())
    }

    use bytes::Bytes;

    #[test]
    fn delta_frames_maintain_a_bitwise_identical_live_union() {
        let config = cfg();
        let mut referee = Referee::new(&config, 9);
        let mut parties: Vec<DeltaParty<()>> = (0..3)
            .map(|id| DeltaParty::new(id, &config, 9))
            .collect();
        let mut next_label = 0u64;
        for round in 0..6 {
            for p in parties.iter_mut() {
                // Growing, overlapping streams; volume forces level raises.
                for i in 0..400u64 {
                    p.observe_with(gt_hash::fold61(next_label + i + p.id() as u64 * 123), ());
                }
                next_label += 150;
                let msg = p.emit_frame();
                assert_eq!(referee.receive_frame(&msg).unwrap(), Receipt::Merged);
                p.handle_ack(referee.acked_generation(p.id()).unwrap());
            }
            // The live union is bitwise the full-ship union at every ack
            // point, not just at the end.
            let live = encode_sketch(referee.union_sketch());
            let oracle = full_ship_union(&config, 9, &parties.iter().collect::<Vec<_>>());
            assert_eq!(live, oracle, "diverged at round {round}");
        }
        let t = referee.delta_telemetry();
        assert_eq!(t.full_frames, 3, "one initial full ship per party");
        assert_eq!(t.delta_frames, 15, "every later round ships deltas");
        assert_eq!(t.resyncs_requested, 0);
        // Steady-state deltas are much cheaper than full snapshots.
        assert!(
            t.delta_bytes / t.delta_frames < t.full_bytes / t.full_frames,
            "delta {} full {}",
            t.delta_bytes / t.delta_frames,
            t.full_bytes / t.full_frames
        );
    }

    #[test]
    fn duplicate_and_reordered_frames_are_suppressed() {
        let config = cfg();
        let mut referee = Referee::new(&config, 3);
        let mut p = DeltaParty::<()>::new(0, &config, 3);
        for i in 0..500u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let full = p.emit_frame();
        assert_eq!(referee.receive_frame(&full).unwrap(), Receipt::Merged);
        p.handle_ack(1);
        for i in 500..600u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let delta = p.emit_frame();
        assert_eq!(referee.receive_frame(&delta).unwrap(), Receipt::Merged);
        let before = encode_sketch(referee.union_sketch());

        // Byte-identical redelivery of both frames, then the stale full
        // frame again (a reorder past the watermark): all suppressed.
        assert_eq!(referee.receive_frame(&delta).unwrap(), Receipt::Duplicate);
        assert_eq!(referee.receive_frame(&full).unwrap(), Receipt::Duplicate);
        assert_eq!(encode_sketch(referee.union_sketch()), before);
        assert_eq!(referee.delta_telemetry().duplicate_frames, 2);
        assert_eq!(referee.messages(), 2);
        assert_eq!(
            referee.items_reported(),
            p.sketch().items_observed(),
            "refresh accounting keeps items exactly-once"
        );
    }

    #[test]
    fn unknown_or_mismatched_base_requests_resync() {
        let config = cfg();
        let mut referee = Referee::new(&config, 7);
        // The party believes generation 1 was acked, but the referee
        // never saw it (the full frame was lost past the retry budget).
        let mut p = DeltaParty::<()>::new(0, &config, 7);
        for i in 0..300u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let _lost = p.emit_frame();
        p.handle_ack(1);
        for i in 300..350u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let orphan_delta = p.emit_frame();
        assert_eq!(
            referee.receive_frame(&orphan_delta).unwrap(),
            Receipt::NeedResync
        );
        assert_eq!(referee.delta_telemetry().resyncs_requested, 1);
        assert_eq!(referee.parties_heard(), 0, "nothing was merged");

        // The resync notice makes the party fall back to a full frame.
        p.handle_resync();
        let recovery = p.emit_frame();
        assert_eq!(referee.receive_frame(&recovery).unwrap(), Receipt::Merged);
        assert_eq!(
            encode_sketch(referee.union_sketch()),
            encode_sketch(p.sketch()),
        );

        // Mismatched base: a forked party instance under the same id
        // whose generation-1 state differs from what the referee
        // applied. Its delta must clear the watermark (the referee is at
        // generation 3 for this party) so that only the base-fingerprint
        // check can — and must — reject it.
        let mut fork = DeltaParty::<()>::new(0, &config, 7);
        for i in 1000..1300u64 {
            fork.observe_with(gt_hash::fold61(i), ());
        }
        let _lost = fork.emit_frame(); // gen 1, never delivered
        fork.handle_ack(1);
        for skip in [2u64, 3] {
            for i in 1300 + skip * 20..1320 + skip * 20 {
                fork.observe_with(gt_hash::fold61(i), ());
            }
            let _skipped = fork.emit_frame(); // gens 2 and 3, never delivered
        }
        for i in 1400..1420u64 {
            fork.observe_with(gt_hash::fold61(i), ());
        }
        let fork_delta = fork.emit_frame(); // gen 4 against the fork's own gen-1 base
        assert_eq!(
            referee.receive_frame(&fork_delta).unwrap(),
            Receipt::NeedResync,
            "base fingerprint mismatch must refuse the delta"
        );
        assert_eq!(referee.delta_telemetry().resyncs_requested, 2);
    }

    #[test]
    fn lost_acks_still_apply_cumulative_deltas_exactly() {
        let config = cfg();
        let mut referee = Referee::new(&config, 11);
        let mut p = DeltaParty::<()>::new(0, &config, 11);
        for i in 0..400u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let full = p.emit_frame();
        assert_eq!(referee.receive_frame(&full).unwrap(), Receipt::Merged);
        p.handle_ack(1);

        // Delta generation 2 reaches the referee, but its ack is lost:
        // the party keeps coding against the generation-1 base.
        for i in 400..700u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let d2 = p.emit_frame();
        assert_eq!(referee.receive_frame(&d2).unwrap(), Receipt::Merged);
        // (no handle_ack: the ack vanished)

        for i in 700..1100u64 {
            p.observe_with(gt_hash::fold61(i), ());
        }
        let d3 = p.emit_frame(); // still base generation 1
        assert_eq!(
            referee.receive_frame(&d3).unwrap(),
            Receipt::Merged,
            "cumulative delta applies on the newer intermediate state"
        );
        assert_eq!(
            encode_sketch(referee.union_sketch()),
            encode_sketch(p.sketch()),
            "live union bitwise equals the party's own state"
        );
        assert_eq!(referee.acked_generation(0), Some(3));
    }

    #[test]
    fn windowed_query_answers_from_the_live_union() {
        let config = cfg();
        let mut referee: RefereeOf<gt_core::LatestTs> = RefereeOf::new(&config, 13);
        let mut a = DeltaParty::<gt_core::LatestTs>::new(0, &config, 13);
        let mut b = DeltaParty::<gt_core::LatestTs>::new(1, &config, 13);
        // Under-capacity so the recency estimate is exact: 60 labels at
        // t=10; 20 of them re-arrive at party b at t=30.
        for i in 0..60u64 {
            a.observe_with(gt_hash::fold61(i), gt_core::LatestTs(10));
        }
        for i in 0..20u64 {
            b.observe_with(gt_hash::fold61(i), gt_core::LatestTs(30));
        }
        for p in [&mut a, &mut b] {
            let msg = p.emit_frame();
            assert_eq!(referee.receive_frame(&msg).unwrap(), Receipt::Merged);
            p.handle_ack(1);
        }
        assert_eq!(referee.query_distinct_since(0).value, 60.0);
        assert_eq!(referee.query_distinct_since(20).value, 20.0);
        // The window keeps answering as deltas stream in.
        for i in 60..90u64 {
            a.observe_with(gt_hash::fold61(i), gt_core::LatestTs(50));
        }
        let msg = a.emit_frame();
        assert_eq!(referee.receive_frame(&msg).unwrap(), Receipt::Merged);
        assert_eq!(referee.query_distinct_since(40).value, 30.0);
        assert_eq!(referee.query_distinct_since(20).value, 50.0);
        assert_eq!(referee.query_distinct_since(0).value, 90.0);
    }
}
