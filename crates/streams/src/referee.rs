//! The referee role: receive one message per party, answer queries about
//! the union.
//!
//! The referee validates and decodes each message (rejecting anything
//! uncoordinated or corrupt), merges it into its running union sketch, and
//! keeps byte-level communication accounting for experiment E9.

use gt_core::{DistinctSketch, Estimate, SketchConfig};

use crate::codec::{decode_sketch, CodecError};
use crate::party::PartyMessage;

/// The central aggregator of the distributed-streams model.
#[derive(Clone, Debug)]
pub struct Referee {
    master_seed: u64,
    union: DistinctSketch,
    messages: usize,
    bytes_received: usize,
    items_reported: u64,
}

impl Referee {
    /// Create a referee expecting sketches built from `(config,
    /// master_seed)`.
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        Referee {
            master_seed,
            union: DistinctSketch::new(config, master_seed),
            messages: 0,
            bytes_received: 0,
            items_reported: 0,
        }
    }

    /// Receive one party's message: decode, validate, union.
    pub fn receive(&mut self, msg: &PartyMessage) -> Result<(), CodecError> {
        let sketch: DistinctSketch = decode_sketch(msg.payload.clone())?;
        if sketch.master_seed() != self.master_seed {
            return Err(CodecError::Sketch(gt_core::SketchError::SeedMismatch));
        }
        self.union.merge_from(&sketch)?;
        self.messages += 1;
        self.bytes_received += msg.bytes();
        self.items_reported += msg.items_observed;
        Ok(())
    }

    /// `(ε, δ)`-estimate of the distinct labels in the union of all
    /// received streams.
    pub fn estimate_distinct(&self) -> Estimate {
        self.union.estimate_distinct()
    }

    /// The merged union sketch (for similarity/predicate queries).
    pub fn union_sketch(&self) -> &DistinctSketch {
        &self.union
    }

    /// Messages received so far.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Total bytes received — the scenario's entire communication cost.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Total items the parties reported observing.
    pub fn items_reported(&self) -> u64 {
        self.items_reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::Party;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn labels(range: std::ops::Range<u64>) -> Vec<u64> {
        range.map(gt_hash::fold61).collect()
    }

    #[test]
    fn referee_unions_party_messages() {
        let config = cfg();
        let mut referee = Referee::new(&config, 5);
        for p in 0..4usize {
            let mut party = Party::new(p, &config, 5);
            // Overlapping ranges; union = [0, 250 + 150·3) = 700 labels,
            // under the per-trial capacity so the union estimate is exact.
            party.observe_stream(&labels(p as u64 * 150..p as u64 * 150 + 250));
            referee.receive(&party.finish()).unwrap();
        }
        assert_eq!(referee.messages(), 4);
        assert_eq!(referee.estimate_distinct().value, 700.0);
        assert!(referee.bytes_received() > 0);
        assert_eq!(referee.items_reported(), 4 * 250);
    }

    #[test]
    fn referee_rejects_foreign_seeds() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 2); // wrong seed
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());
        assert_eq!(referee.messages(), 0);
    }

    #[test]
    fn referee_rejects_corrupt_payloads() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());
    }

    #[test]
    fn empty_referee_estimates_zero() {
        let referee = Referee::new(&cfg(), 9);
        assert_eq!(referee.estimate_distinct().value, 0.0);
        assert_eq!(referee.bytes_received(), 0);
    }
}
