//! The referee role: receive one message per party, answer queries about
//! the union.
//!
//! The referee validates and decodes each message (rejecting anything
//! uncoordinated or corrupt), merges it into its running union sketch, and
//! keeps byte-level communication accounting for experiment E9 plus
//! per-stage telemetry ([`RefereeTelemetry`]): decode successes and
//! failures broken down by reject reason, and decode/merge phase timings.

use std::time::{Duration, Instant};

use gt_core::{DistinctSketch, Estimate, SketchConfig};

use crate::codec::{decode_sketch, CodecError};
use crate::party::PartyMessage;

/// Per-stage accounting of everything the referee was handed.
///
/// Fate counts derive from here (see `crate::faults`) instead of being
/// re-derived by callers: `accepted + rejected() == attempts recorded`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefereeTelemetry {
    /// Messages that decoded, validated, and merged.
    pub accepted: usize,
    /// Rejects: buffer ended before the message did.
    pub rejected_truncated: usize,
    /// Rejects: magic/version word mismatch.
    pub rejected_bad_magic: usize,
    /// Rejects: invalid enum tag byte.
    pub rejected_bad_tag: usize,
    /// Rejects: varint/delta value outside its domain.
    pub rejected_malformed: usize,
    /// Rejects: decoded but failed sketch validation (bad seed, sample
    /// invariant violation, config mismatch).
    pub rejected_sketch: usize,
    /// Time spent decoding payloads (successful and failed).
    pub decode_time: Duration,
    /// Time spent merging decoded sketches into the union.
    pub merge_time: Duration,
}

impl RefereeTelemetry {
    /// Total rejected messages, all reasons.
    pub fn rejected(&self) -> usize {
        self.rejected_truncated
            + self.rejected_bad_magic
            + self.rejected_bad_tag
            + self.rejected_malformed
            + self.rejected_sketch
    }

    /// Total receive attempts recorded.
    pub fn attempts(&self) -> usize {
        self.accepted + self.rejected()
    }

    fn record_reject(&mut self, err: &CodecError) {
        match err {
            CodecError::Truncated => self.rejected_truncated += 1,
            CodecError::BadMagic(_) => self.rejected_bad_magic += 1,
            CodecError::BadTag(_) => self.rejected_bad_tag += 1,
            CodecError::Malformed(_) => self.rejected_malformed += 1,
            CodecError::Sketch(_) => self.rejected_sketch += 1,
        }
    }
}

/// The central aggregator of the distributed-streams model.
#[derive(Clone, Debug)]
pub struct Referee {
    master_seed: u64,
    union: DistinctSketch,
    messages: usize,
    bytes_received: usize,
    items_reported: u64,
    telemetry: RefereeTelemetry,
}

impl Referee {
    /// Create a referee expecting sketches built from `(config,
    /// master_seed)`.
    pub fn new(config: &SketchConfig, master_seed: u64) -> Self {
        Referee {
            master_seed,
            union: DistinctSketch::new(config, master_seed),
            messages: 0,
            bytes_received: 0,
            items_reported: 0,
            telemetry: RefereeTelemetry::default(),
        }
    }

    /// Receive one party's message: decode, validate, union.
    pub fn receive(&mut self, msg: &PartyMessage) -> Result<(), CodecError> {
        let decode_start = Instant::now();
        let decoded = decode_sketch::<()>(msg.payload.clone()).and_then(|sketch| {
            if sketch.master_seed() == self.master_seed {
                Ok(sketch)
            } else {
                Err(CodecError::Sketch(gt_core::SketchError::SeedMismatch))
            }
        });
        self.telemetry.decode_time += decode_start.elapsed();
        let sketch = match decoded {
            Ok(sketch) => sketch,
            Err(e) => {
                self.telemetry.record_reject(&e);
                return Err(e);
            }
        };
        let merge_start = Instant::now();
        let merged = self.union.merge_from(&sketch);
        self.telemetry.merge_time += merge_start.elapsed();
        if let Err(e) = merged {
            let e = CodecError::from(e);
            self.telemetry.record_reject(&e);
            return Err(e);
        }
        self.telemetry.accepted += 1;
        self.messages += 1;
        self.bytes_received += msg.bytes();
        self.items_reported += msg.items_observed;
        Ok(())
    }

    /// Per-stage telemetry: decode outcomes by reason and phase timings.
    pub fn telemetry(&self) -> &RefereeTelemetry {
        &self.telemetry
    }

    /// Observability counters of the union sketch itself (merge entry
    /// accounting, reconciliations, promotions).
    pub fn union_metrics(&self) -> gt_core::MetricsSnapshot {
        self.union.metrics_snapshot()
    }

    /// `(ε, δ)`-estimate of the distinct labels in the union of all
    /// received streams.
    pub fn estimate_distinct(&self) -> Estimate {
        self.union.estimate_distinct()
    }

    /// The merged union sketch (for similarity/predicate queries).
    pub fn union_sketch(&self) -> &DistinctSketch {
        &self.union
    }

    /// Messages received so far.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Total bytes received — the scenario's entire communication cost.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Total items the parties reported observing.
    pub fn items_reported(&self) -> u64 {
        self.items_reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::Party;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn labels(range: std::ops::Range<u64>) -> Vec<u64> {
        range.map(gt_hash::fold61).collect()
    }

    #[test]
    fn referee_unions_party_messages() {
        let config = cfg();
        let mut referee = Referee::new(&config, 5);
        for p in 0..4usize {
            let mut party = Party::new(p, &config, 5);
            // Overlapping ranges; union = [0, 250 + 150·3) = 700 labels,
            // under the per-trial capacity so the union estimate is exact.
            party.observe_stream(&labels(p as u64 * 150..p as u64 * 150 + 250));
            referee.receive(&party.finish()).unwrap();
        }
        assert_eq!(referee.messages(), 4);
        assert_eq!(referee.estimate_distinct().value, 700.0);
        assert!(referee.bytes_received() > 0);
        assert_eq!(referee.items_reported(), 4 * 250);
    }

    #[test]
    fn referee_rejects_foreign_seeds() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 2); // wrong seed
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());
        assert_eq!(referee.messages(), 0);
    }

    #[test]
    fn referee_rejects_corrupt_payloads() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());
    }

    #[test]
    fn empty_referee_estimates_zero() {
        let referee = Referee::new(&cfg(), 9);
        assert_eq!(referee.estimate_distinct().value, 0.0);
        assert_eq!(referee.bytes_received(), 0);
        assert_eq!(*referee.telemetry(), RefereeTelemetry::default());
    }

    #[test]
    fn telemetry_classifies_accepts_and_rejects() {
        let config = cfg();
        let mut referee = Referee::new(&config, 1);

        // One good message.
        let mut party = Party::new(0, &config, 1);
        party.observe_stream(&labels(0..100));
        referee.receive(&party.finish()).unwrap();

        // One truncated message.
        let mut party = Party::new(1, &config, 1);
        party.observe_stream(&labels(0..100));
        let mut msg = party.finish();
        let mut raw = msg.payload.to_vec();
        raw.truncate(raw.len() / 2);
        msg.payload = bytes::Bytes::from(raw);
        assert!(referee.receive(&msg).is_err());

        // One foreign-seed message (decodes, fails sketch validation).
        let mut party = Party::new(2, &config, 99);
        party.observe_stream(&labels(0..100));
        assert!(referee.receive(&party.finish()).is_err());

        let t = referee.telemetry();
        assert_eq!(t.accepted, 1);
        assert_eq!(t.rejected_sketch, 1);
        assert_eq!(t.rejected(), 2);
        assert_eq!(t.attempts(), 3);
        assert_eq!(t.rejected_bad_magic + t.rejected_bad_tag, 0);
        // The accepted decode and merge were actually timed.
        assert!(t.decode_time > Duration::ZERO);
    }

    #[test]
    fn union_metrics_reflect_merges() {
        let config = cfg();
        let mut referee = Referee::new(&config, 4);
        for p in 0..3usize {
            let mut party = Party::new(p, &config, 4);
            party.observe_stream(&labels(p as u64 * 100..p as u64 * 100 + 150));
            referee.receive(&party.finish()).unwrap();
        }
        let m = referee.union_metrics();
        assert_eq!(m.merge_calls, 3);
        assert!(m.merge_entries_absorbed > 0);
        // Overlapping ranges: both sides sampled some labels.
        assert!(m.merge_reconciliations > 0);
    }
}
