//! The party role: observe one stream, ship one message.
//!
//! A [`Party`] is deliberately thin — it owns a sketch, feeds it, and
//! finalizes into a [`PartyMessage`] whose byte length *is* the party's
//! total communication (the model allows no other traffic). The runner
//! puts one of these on each thread.

use bytes::Bytes;
use gt_core::{DistinctSketch, SketchConfig};

use crate::codec::encode_sketch;

/// A finalized party transmission: everything a party ever sends.
#[derive(Clone, Debug)]
pub struct PartyMessage {
    /// Which party sent it.
    pub party_id: usize,
    /// The encoded sketch.
    pub payload: Bytes,
    /// Items the party observed (diagnostics; also inside the payload).
    pub items_observed: u64,
}

impl PartyMessage {
    /// Total communication cost of this party, in bytes.
    pub fn bytes(&self) -> usize {
        self.payload.len()
    }
}

/// One stream observer in the distributed-streams model.
#[derive(Clone, Debug)]
pub struct Party {
    id: usize,
    sketch: DistinctSketch,
}

impl Party {
    /// Create party `id`. The `(config, master_seed)` pair is the only
    /// shared setup the model permits, distributed before streams begin.
    pub fn new(id: usize, config: &SketchConfig, master_seed: u64) -> Self {
        Party {
            id,
            sketch: DistinctSketch::new(config, master_seed),
        }
    }

    /// This party's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Observe one label.
    #[inline]
    pub fn observe(&mut self, label: u64) {
        self.sketch.insert(label);
    }

    /// Observe an entire stream through the batch-monomorphic kernel
    /// (see [`DistinctSketch::extend_slice`]) — same state as calling
    /// [`Party::observe`] per label, measured faster by experiment `e4`.
    pub fn observe_stream(&mut self, stream: &[u64]) {
        self.sketch.extend_slice(stream);
    }

    /// Read access to the local sketch (e.g. for local-only estimates).
    pub fn sketch(&self) -> &DistinctSketch {
        &self.sketch
    }

    /// End of stream: encode and emit the single permitted message.
    pub fn finish(self) -> PartyMessage {
        let items_observed = self.sketch.items_observed();
        PartyMessage {
            party_id: self.id,
            payload: encode_sketch(&self.sketch),
            items_observed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    #[test]
    fn party_observes_and_finishes() {
        let mut p = Party::new(3, &cfg(), 1);
        p.observe_stream(&(0..500u64).map(gt_hash::fold61).collect::<Vec<_>>());
        assert_eq!(p.id(), 3);
        assert_eq!(p.sketch().estimate_distinct().value, 500.0);
        let msg = p.finish();
        assert_eq!(msg.party_id, 3);
        assert_eq!(msg.items_observed, 500);
        assert!(msg.bytes() > 0);
    }

    #[test]
    fn message_size_independent_of_duplication() {
        let labels: Vec<u64> = (0..1_000).map(gt_hash::fold61).collect();
        let mut once = Party::new(0, &cfg(), 2);
        once.observe_stream(&labels);
        let mut many = Party::new(1, &cfg(), 2);
        for _ in 0..50 {
            many.observe_stream(&labels);
        }
        let b_once = once.finish().bytes();
        let b_many = many.finish().bytes();
        // Only the items_observed varint grows (few bytes per trial).
        assert!(b_many < b_once + 3 * cfg().trials(), "{b_once} vs {b_many}");
    }
}
