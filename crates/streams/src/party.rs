//! The party role: observe one stream, ship one message — and, for the
//! continuous-monitoring plane, a [`DeltaParty`] that keeps observing
//! and ships compact generation-stamped delta frames as its state
//! evolves.
//!
//! A [`Party`] is deliberately thin — it owns a sketch, feeds it, and
//! finalizes into a [`PartyMessage`] whose byte length *is* the party's
//! total communication (the model allows no other traffic). The runner
//! puts one of these on each thread.

use std::collections::VecDeque;

use bytes::Bytes;
use gt_core::{delta_between, DistinctSketch, GtSketch, SketchConfig};

use crate::codec::{
    encode_delta_frame, encode_full_frame, encode_sketch, payload_fingerprint, WirePayload,
};

/// A finalized party transmission: everything a party ever sends.
#[derive(Clone, Debug)]
pub struct PartyMessage {
    /// Which party sent it.
    pub party_id: usize,
    /// The encoded sketch.
    pub payload: Bytes,
    /// Items the party observed (diagnostics; also inside the payload).
    pub items_observed: u64,
}

impl PartyMessage {
    /// Total communication cost of this party, in bytes.
    pub fn bytes(&self) -> usize {
        self.payload.len()
    }
}

/// One stream observer in the distributed-streams model.
#[derive(Clone, Debug)]
pub struct Party {
    id: usize,
    sketch: DistinctSketch,
}

impl Party {
    /// Create party `id`. The `(config, master_seed)` pair is the only
    /// shared setup the model permits, distributed before streams begin.
    pub fn new(id: usize, config: &SketchConfig, master_seed: u64) -> Self {
        Party {
            id,
            sketch: DistinctSketch::new(config, master_seed),
        }
    }

    /// This party's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Observe one label.
    #[inline]
    pub fn observe(&mut self, label: u64) {
        self.sketch.insert(label);
    }

    /// Observe an entire stream through the batch-monomorphic kernel
    /// (see [`DistinctSketch::extend_slice`]) — same state as calling
    /// [`Party::observe`] per label, measured faster by experiment `e4`.
    pub fn observe_stream(&mut self, stream: &[u64]) {
        self.sketch.extend_slice(stream);
    }

    /// Read access to the local sketch (e.g. for local-only estimates).
    pub fn sketch(&self) -> &DistinctSketch {
        &self.sketch
    }

    /// End of stream: encode and emit the single permitted message.
    pub fn finish(self) -> PartyMessage {
        let items_observed = self.sketch.items_observed();
        PartyMessage {
            party_id: self.id,
            payload: encode_sketch(&self.sketch),
            items_observed,
        }
    }
}

/// Emitted-but-unacked snapshots a [`DeltaParty`] retains so a late ack
/// can still become the next delta base. Beyond this, the oldest
/// snapshot is dropped and its ack (if it ever arrives) is ignored —
/// the party simply keeps coding against its current base.
const MAX_PENDING_SNAPSHOTS: usize = 32;

/// Communication counters a [`DeltaParty`] accumulates, split by frame
/// kind so the bytes-saved headline is derivable at any point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaPartyStats {
    /// Delta frames emitted.
    pub delta_frames: u64,
    /// Full frames emitted (first ship, resyncs, and size fallbacks).
    pub full_frames: u64,
    /// Bytes across all delta frames.
    pub delta_bytes: u64,
    /// Bytes across all full frames.
    pub full_bytes: u64,
    /// Resync requests honoured (base dropped, next frame full).
    pub resyncs: u64,
}

impl DeltaPartyStats {
    /// All bytes this party ever put on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.delta_bytes + self.full_bytes
    }
}

/// A continuously-monitoring party: observes its stream indefinitely
/// and ships generation-stamped frames — compact deltas against the
/// last acknowledged base when possible, full snapshots otherwise.
///
/// Protocol state machine (referee side in
/// [`crate::referee::RefereeOf::receive_frame`]):
///
/// * Every emission gets a fresh **generation** from a monotone
///   counter; the frame for generation `g` is a pure function of the
///   sketch state at `g` and the acked base.
/// * Deltas are **cumulative**: always coded against the last *acked*
///   generation, carrying every change since it. Lost acks therefore
///   never wedge the stream — the referee can apply a cumulative delta
///   on top of any base it reconstructed after the coded one
///   (see [`gt_core::delta`]).
/// * An **ack** for generation `g` promotes the retained snapshot at
///   `g` to the new delta base; older pending snapshots are dropped.
/// * A **resync** request (referee detected a gap or fingerprint
///   mismatch) drops the base: the next frame is a full snapshot.
/// * A delta that would not actually be smaller than the full snapshot
///   falls back to the full frame (steady-state deltas win by a wide
///   margin; the fallback guards the early ramp where nearly every
///   entry is new).
#[derive(Clone, Debug)]
pub struct DeltaParty<V: WirePayload> {
    id: usize,
    sketch: GtSketch<V>,
    generation: u64,
    /// Last acked snapshot: (generation, state, canonical fingerprint).
    acked: Option<(u64, GtSketch<V>, u64)>,
    /// Emitted, unacked snapshots, oldest first.
    pending: VecDeque<(u64, GtSketch<V>)>,
    stats: DeltaPartyStats,
}

impl<V: WirePayload + PartialEq> DeltaParty<V> {
    /// Create party `id` with the shared `(config, master_seed)` pair.
    pub fn new(id: usize, config: &SketchConfig, master_seed: u64) -> Self {
        DeltaParty {
            id,
            sketch: GtSketch::new(config, master_seed),
            generation: 0,
            acked: None,
            pending: VecDeque::new(),
            stats: DeltaPartyStats::default(),
        }
    }

    /// This party's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Observe one `(label, payload)` item (payload-merging, so
    /// re-arrivals reconcile exactly like a single observer's would).
    #[inline]
    pub fn observe_with(&mut self, label: u64, payload: V) {
        self.sketch.insert_merging_with(label, payload);
    }

    /// Read access to the live sketch.
    pub fn sketch(&self) -> &GtSketch<V> {
        &self.sketch
    }

    /// The generation of the most recent emission (0 before the first).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation the referee last acknowledged, if any.
    pub fn acked_generation(&self) -> Option<u64> {
        self.acked.as_ref().map(|&(g, _, _)| g)
    }

    /// Communication counters so far.
    pub fn stats(&self) -> DeltaPartyStats {
        self.stats
    }

    /// The retained snapshot for `generation`, if still held (pending or
    /// acked) — what the equivalence oracle full-ships to compare
    /// against the referee's live union.
    pub fn snapshot_for(&self, generation: u64) -> Option<&GtSketch<V>> {
        if let Some((g, snap, _)) = &self.acked {
            if *g == generation {
                return Some(snap);
            }
        }
        self.pending
            .iter()
            .find(|&&(g, _)| g == generation)
            .map(|(_, snap)| snap)
    }

    /// Emit the next frame: a fresh generation stamped over either a
    /// cumulative delta against the acked base or a full snapshot
    /// (first ship, post-resync, failed prefix check, or when the delta
    /// would not be smaller).
    pub fn emit_frame(&mut self) -> PartyMessage {
        self.generation += 1;
        let generation = self.generation;
        let delta_payload = self.acked.as_ref().and_then(|(base_gen, base, base_fp)| {
            let delta = delta_between(base, &self.sketch).ok()?;
            let frame = encode_delta_frame(&delta, generation, *base_gen, *base_fp);
            let full_len = 4
                + 1
                + crate::codec::varint_len(generation)
                + crate::codec::encoded_sketch_len(&self.sketch);
            (frame.len() < full_len).then_some(frame)
        });
        let payload = match delta_payload {
            Some(frame) => {
                self.stats.delta_frames += 1;
                self.stats.delta_bytes += frame.len() as u64;
                frame
            }
            None => {
                let frame = encode_full_frame(&self.sketch, generation);
                self.stats.full_frames += 1;
                self.stats.full_bytes += frame.len() as u64;
                frame
            }
        };
        if self.pending.len() == MAX_PENDING_SNAPSHOTS {
            self.pending.pop_front();
        }
        self.pending.push_back((generation, self.sketch.clone()));
        PartyMessage {
            party_id: self.id,
            payload,
            items_observed: self.sketch.items_observed(),
        }
    }

    /// The referee acknowledged `generation`: promote that snapshot to
    /// the delta base and drop everything older. Stale or unknown acks
    /// (older than the current base, or beyond the retention window)
    /// are ignored.
    pub fn handle_ack(&mut self, generation: u64) {
        if self.acked.as_ref().is_some_and(|&(g, _, _)| g >= generation) {
            return;
        }
        let Some(pos) = self.pending.iter().position(|&(g, _)| g == generation) else {
            return;
        };
        let (gen, snap) = self.pending.remove(pos).expect("position just found");
        self.pending.retain(|&(g, _)| g > gen);
        let fp = payload_fingerprint(&encode_sketch(&snap));
        self.acked = Some((gen, snap, fp));
    }

    /// The referee requested a resync (gap or fingerprint mismatch):
    /// drop the base so the next frame is a full snapshot.
    pub fn handle_resync(&mut self) {
        self.acked = None;
        self.pending.clear();
        self.stats.resyncs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    #[test]
    fn party_observes_and_finishes() {
        let mut p = Party::new(3, &cfg(), 1);
        p.observe_stream(&(0..500u64).map(gt_hash::fold61).collect::<Vec<_>>());
        assert_eq!(p.id(), 3);
        assert_eq!(p.sketch().estimate_distinct().value, 500.0);
        let msg = p.finish();
        assert_eq!(msg.party_id, 3);
        assert_eq!(msg.items_observed, 500);
        assert!(msg.bytes() > 0);
    }

    #[test]
    fn delta_party_ships_full_then_delta_then_resyncs() {
        let mut p: DeltaParty<()> = DeltaParty::new(2, &cfg(), 5);
        for l in 0..20_000u64 {
            p.observe_with(gt_hash::fold61(l), ());
        }
        // First emission: no base, must be full.
        let m1 = p.emit_frame();
        assert_eq!(p.stats().full_frames, 1);
        assert_eq!(m1.party_id, 2);
        p.handle_ack(1);
        assert_eq!(p.acked_generation(), Some(1));

        // Steady state: few new labels -> small delta frame.
        for l in 0..50u64 {
            p.observe_with(gt_hash::fold61(l), ()); // duplicates only
        }
        let m2 = p.emit_frame();
        assert_eq!(p.stats().delta_frames, 1);
        assert!(
            m2.bytes() * 5 <= m1.bytes(),
            "steady-state delta {} not >=5x under full {}",
            m2.bytes(),
            m1.bytes()
        );

        // Resync drops the base: next frame is full again.
        p.handle_resync();
        let m3 = p.emit_frame();
        assert_eq!(p.stats().full_frames, 2);
        assert_eq!(p.stats().resyncs, 1);
        assert!(m3.bytes() >= m1.bytes());
    }

    #[test]
    fn stale_and_unknown_acks_are_ignored() {
        let mut p: DeltaParty<()> = DeltaParty::new(0, &cfg(), 9);
        p.observe_with(gt_hash::fold61(1), ());
        p.emit_frame(); // gen 1
        p.observe_with(gt_hash::fold61(2), ());
        p.emit_frame(); // gen 2
        p.handle_ack(2);
        assert_eq!(p.acked_generation(), Some(2));
        p.handle_ack(1); // stale: base must not rewind
        assert_eq!(p.acked_generation(), Some(2));
        p.handle_ack(99); // unknown: ignored
        assert_eq!(p.acked_generation(), Some(2));
        // Snapshot retention serves the oracle.
        assert!(p.snapshot_for(2).is_some());
        assert!(p.snapshot_for(1).is_none());
    }

    #[test]
    fn message_size_independent_of_duplication() {
        let labels: Vec<u64> = (0..1_000).map(gt_hash::fold61).collect();
        let mut once = Party::new(0, &cfg(), 2);
        once.observe_stream(&labels);
        let mut many = Party::new(1, &cfg(), 2);
        for _ in 0..50 {
            many.observe_stream(&labels);
        }
        let b_once = once.finish().bytes();
        let b_many = many.finish().bytes();
        // Only the items_observed varint grows (few bytes per trial).
        assert!(b_many < b_once + 3 * cfg().trials(), "{b_once} vs {b_many}");
    }
}
