//! # gt-streams — the distributed-streams runtime
//!
//! The paper's execution model, as a testable substrate: `t` parties each
//! observe their own stream in one pass, then send **one message** to a
//! referee, who answers queries about the union. This crate provides
//! everything around the sketch needed to *run* that model and measure it:
//!
//! * [`workload`] — synthetic stream generators with precise control over
//!   the distinct-label structure (universe size, per-party overlap, skew,
//!   duplication), standing in for the network-monitoring traces the
//!   paper's setting assumes (substitution documented in DESIGN.md §6).
//! * [`oracle`] — exact ground truth for any set of generated streams.
//! * [`codec`] — a compact wire format for sketches (sorted, delta- and
//!   LEB128-encoded samples) with byte-accurate accounting, so experiment
//!   E9 measures real message sizes rather than `size_of` guesses.
//! * [`party`] / [`referee`] — the two roles, as plain types.
//! * [`runner`] — a multi-threaded scenario runner (one OS thread per
//!   party, crossbeam channels to the referee) producing a
//!   [`runner::ScenarioReport`] with estimates, ground truth, error, and
//!   communication totals.
//! * [`netflow`] — a flow-record (5-tuple) workload generator for the
//!   paper's motivating network-monitoring domain.
//! * [`topology`] — hierarchical (tree) aggregation of party messages
//!   through intermediate collectors, exact at any depth.
//! * [`transport`] — a deterministic simulated channel (drop / corrupt /
//!   delay / reorder on a virtual clock) that every fault experiment
//!   shares, so loss schedules are reproducible from a seed.
//! * [`collector`] — the at-least-once collection plane: ack / timeout /
//!   retransmit rounds with capped exponential backoff over a
//!   [`transport::Transport`], feeding an idempotent [`referee`].
//! * [`faults`] — the one-shot fault harness of earlier experiments,
//!   now a thin configuration of the transport + collector.
//! * [`scenario`] — the declarative end-to-end harness: a
//!   [`scenario::ScenarioSpec`] (topology × workload × fault plan ×
//!   query plan, all plain data) dispatched to one of five engines,
//!   including a sustained-rate load generator on the virtual clock
//!   that measures per-item admission→queryable latency and emits an
//!   [`scenario::E2eReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod collector;
pub mod faults;
pub mod netflow;
pub mod oracle;
pub mod party;
pub mod referee;
pub mod runner;
pub mod scenario;
pub mod topology;
pub mod transport;
pub mod workload;

pub use codec::{
    decode_frame, decode_sketch, decode_sketch_into, encode_delta_frame, encode_full_frame,
    encode_sketch, encoded_sketch_len, payload_fingerprint, varint_len, CodecError, DecodeScratch,
    Frame, WirePayload,
};
pub use collector::{collect_once, CollectionReport, Collector, PartyAttempts, RetryPolicy};
pub use faults::{run_with_faults, FateCounts, FaultReport, FaultSpec, MessageFate};
pub use netflow::{FlowRecord, FlowWorkload};
pub use oracle::StreamOracle;
pub use party::{DeltaParty, DeltaPartyStats, Party, PartyMessage};
pub use referee::{
    batch_size_bucket, DeltaPlaneTelemetry, PartialEstimate, PartialExpressionEstimate,
    PartialJaccardEstimate, Receipt, Referee, RefereeOf, RefereeTelemetry, BATCH_BUCKET_LABELS,
};
pub use runner::{
    run_expression_scenario, run_live_query_scenario, run_resilient_scenario, run_scenario,
    ExpressionQueryOutcome, ExpressionScenarioReport, JaccardQueryOutcome, LiveQueryReport,
    LiveQuerySample, PartyPhases, ResilientReport, ScenarioReport,
};
pub use scenario::{
    named_suite, run_continuous, run_spec, run_spec_on, run_sustained, ChurnEvent, ChurnKind,
    DeltaPlaneReport, DistinctSample, E2eDeterminismKey, E2eReport, ExpressionSample, FaultPlan,
    IngestMode, JaccardSample, LatencyHistogram, LoadPhase, LoadShape, QueryPlan, ReportingMode,
    ScenarioBuilder, ScenarioOutcome, ScenarioSpec, TopologySpec, WindowSample, WorkloadPlan,
    LATENCY_CLAMP,
};
pub use topology::{aggregate_tree, HierarchicalReport};
pub use transport::{Delivery, SendFate, Tick, Transport, TransportSpec, TransportTelemetry};
pub use workload::{Distribution, StreamSet, WorkloadSpec};
