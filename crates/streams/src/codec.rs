//! Compact wire format for sketches, with byte-accurate accounting.
//!
//! The paper's communication claim — one message of
//! `O(ε⁻² log(1/δ) log n)` **bits** per party, independent of stream
//! length — deserves to be measured in real bytes, so this codec is
//! hand-rolled rather than `derive(Serialize)`d:
//!
//! * Hash functions never travel: the receiver rebuilds them from
//!   `(config, master seed)`, which is the whole point of coordination.
//! * Sample labels are sorted, delta-encoded and LEB128-varint packed;
//!   for a level-`l` sample of size `c` drawn from `[0, 2^61)` the gaps
//!   are ≈ `2^61/c` and each costs ≈ `(61 − log₂ c)/7` bytes — within a
//!   small constant of the information-theoretic minimum.
//! * Integrity is checked on decode (magic, version, config echo, sample
//!   invariant via `GtSketch::reassemble`), so a referee cannot silently
//!   union a corrupt or uncoordinated message.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gt_core::{GtSketch, SketchConfig, SketchError};
use gt_hash::HashFamilyKind;

/// Format magic: "GTS" + version 1.
const MAGIC: u32 = 0x4754_5301;

/// Ceiling on `capacity x trials` accepted from the wire. Decoding
/// allocates the sample tables eagerly, so the declared shape must be
/// bounded *before* allocation or a tiny crafted message could demand
/// terabytes (each field individually respects its own cap, but the
/// product does not). 2^24 entries (~512 MiB of tables worst case) is
/// ~15x beyond the largest legitimate configuration (eps = 0.02,
/// delta = 0.001 -> ~1.3M entries).
const MAX_WIRE_ENTRIES: u64 = 1 << 24;

/// Errors from decoding a sketch message.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The buffer ended before the message did.
    Truncated,
    /// The magic/version word did not match.
    BadMagic(u32),
    /// An enum tag byte was invalid.
    BadTag(u8),
    /// A varint or delta-coded value overflowed its domain.
    Malformed(&'static str),
    /// The payload decoded but failed sketch validation.
    Sketch(SketchError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            CodecError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::Malformed(what) => write!(f, "malformed message: {what}"),
            CodecError::Sketch(e) => write!(f, "decoded sketch invalid: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<SketchError> for CodecError {
    fn from(e: SketchError) -> Self {
        CodecError::Sketch(e)
    }
}

/// Payloads that know how to put themselves on the wire.
///
/// `Send + Sync` is part of the contract: referee-side batch unions fan
/// the decoded sketches out across scoped worker threads
/// (`gt_core::merge_tree`), so any payload that travels must be shareable.
pub trait WirePayload: gt_core::Payload + Send + Sync {
    /// Append the payload.
    fn encode(self, buf: &mut BytesMut);
    /// Read the payload back.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;
    /// Exact bytes [`WirePayload::encode`] will append — what lets
    /// [`encode_sketch`] pre-reserve the whole message instead of growing
    /// the buffer entry by entry.
    fn encoded_len(self) -> usize;
}

impl WirePayload for () {
    fn encode(self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(())
    }
    fn encoded_len(self) -> usize {
        0
    }
}

impl WirePayload for u64 {
    fn encode(self, buf: &mut BytesMut) {
        put_varint(buf, self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        get_varint(buf)
    }
    fn encoded_len(self) -> usize {
        varint_len(self)
    }
}

impl WirePayload for gt_core::LatestTs {
    fn encode(self, buf: &mut BytesMut) {
        put_varint(buf, self.0);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(gt_core::LatestTs(get_varint(buf)?))
    }
    fn encoded_len(self) -> usize {
        varint_len(self.0)
    }
}

/// Frame magic for the continuous-monitoring plane: "GTF" + version 1.
/// Distinct from the one-shot sketch magic so a frame accidentally fed
/// to [`decode_sketch`] (or vice versa) is rejected at the first word.
const FRAME_MAGIC: u32 = 0x4754_4601;

const FRAME_KIND_FULL: u8 = 0;
const FRAME_KIND_DELTA: u8 = 1;

/// One message of the continuous-monitoring plane: either a party's
/// complete snapshot or an incremental delta against an acknowledged
/// base (see [`gt_core::delta`]).
///
/// Wire layout: `FRAME_MAGIC` u32, kind u8, generation varint; delta
/// frames continue with the base generation varint and the base
/// fingerprint u64 (the continuation header that lets a referee detect
/// gaps and request resync); then the canonical sketch encoding —
/// [`encode_sketch`] bytes verbatim, magic included, so frames inherit
/// the codec's validation, canonical-bytes property, and
/// fingerprinting unchanged.
#[derive(Clone, Debug)]
pub enum Frame<V> {
    /// A complete snapshot: generation `generation` of the sender's
    /// sketch. Also the resync/fallback path.
    Full {
        /// The sender's generation counter for this snapshot.
        generation: u64,
        /// The decoded snapshot.
        sketch: GtSketch<V>,
    },
    /// An incremental delta coded against the sender's acked base.
    Delta {
        /// The sender's generation counter for this snapshot.
        generation: u64,
        /// Generation of the acked base the delta is coded against.
        base_generation: u64,
        /// [`payload_fingerprint`] of the base's canonical encoding —
        /// lets the receiver detect that its reconstruction diverged
        /// before applying anything.
        base_fingerprint: u64,
        /// The difference entries ([`gt_core::delta_between`] output).
        delta: GtSketch<V>,
    },
}

impl<V> Frame<V> {
    /// The sender's generation counter carried by either kind.
    pub fn generation(&self) -> u64 {
        match self {
            Frame::Full { generation, .. } | Frame::Delta { generation, .. } => *generation,
        }
    }
}

/// Encode a complete snapshot as a monitoring-plane frame.
pub fn encode_full_frame<V: WirePayload>(sketch: &GtSketch<V>, generation: u64) -> Bytes {
    let body = encode_sketch(sketch);
    let mut buf = BytesMut::with_capacity(4 + 1 + varint_len(generation) + body.len());
    buf.put_u32(FRAME_MAGIC);
    buf.put_u8(FRAME_KIND_FULL);
    put_varint(&mut buf, generation);
    buf.put_slice(&body);
    buf.freeze()
}

/// Encode a delta (a [`gt_core::delta_between`] result) as a
/// monitoring-plane frame with its continuation header.
pub fn encode_delta_frame<V: WirePayload>(
    delta: &GtSketch<V>,
    generation: u64,
    base_generation: u64,
    base_fingerprint: u64,
) -> Bytes {
    let body = encode_sketch(delta);
    let mut buf = BytesMut::with_capacity(
        4 + 1 + varint_len(generation) + varint_len(base_generation) + 8 + body.len(),
    );
    buf.put_u32(FRAME_MAGIC);
    buf.put_u8(FRAME_KIND_DELTA);
    put_varint(&mut buf, generation);
    put_varint(&mut buf, base_generation);
    buf.put_u64(base_fingerprint);
    buf.put_slice(&body);
    buf.freeze()
}

/// Decode and validate a monitoring-plane frame. The embedded sketch
/// goes through the full [`decode_sketch`] validation, so a corrupt
/// frame is rejected, never silently applied.
pub fn decode_frame<V: WirePayload>(mut buf: Bytes) -> Result<Frame<V>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != FRAME_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    match get_u8(&mut buf)? {
        FRAME_KIND_FULL => {
            let generation = get_varint(&mut buf)?;
            let sketch = decode_sketch(buf)?;
            Ok(Frame::Full { generation, sketch })
        }
        FRAME_KIND_DELTA => {
            let generation = get_varint(&mut buf)?;
            let base_generation = get_varint(&mut buf)?;
            if base_generation >= generation {
                return Err(CodecError::Malformed(
                    "delta frame base generation not older than its own",
                ));
            }
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            let base_fingerprint = buf.get_u64();
            let delta = decode_sketch(buf)?;
            Ok(Frame::Delta {
                generation,
                base_generation,
                base_fingerprint,
                delta,
            })
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// LEB128 varint append.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Bytes the canonical LEB128 encoding of `v` occupies (1–10).
pub fn varint_len(v: u64) -> usize {
    let bits = (64 - v.leading_zeros()).max(1) as usize;
    bits.div_ceil(7)
}

/// LEB128 varint read, **canonical encodings only**.
///
/// A multi-byte encoding whose final byte is `0x00` contributes no bits
/// and has a strictly shorter equivalent (e.g. `[0x80, 0x00]` for 0), so
/// it is rejected as malformed. This makes the byte representation of
/// every value unique, which [`payload_fingerprint`]-based duplicate
/// detection relies on: one sketch state, one byte string.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        if shift >= 63 && byte > 1 {
            return Err(CodecError::Malformed("varint overflows 64 bits"));
        }
        if shift > 0 && byte == 0 {
            return Err(CodecError::Malformed(
                "non-canonical varint (over-long encoding)",
            ));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// 64-bit FNV-1a over a message payload — the referee's duplicate-
/// detection fingerprint.
///
/// Stable across processes (no per-run hasher seed), and well defined per
/// sketch state because the wire format is canonical: samples are sorted
/// before delta-coding and [`get_varint`] rejects over-long varints, so a
/// given sketch has exactly one encoding and therefore one fingerprint.
pub fn payload_fingerprint(payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_hash_kind(buf: &mut BytesMut, kind: HashFamilyKind) {
    match kind {
        HashFamilyKind::Pairwise => buf.put_u8(0),
        HashFamilyKind::KWise(k) => {
            buf.put_u8(1);
            buf.put_u8(k);
        }
        HashFamilyKind::MultiplyShift => buf.put_u8(2),
        HashFamilyKind::Tabulation => buf.put_u8(3),
        HashFamilyKind::SabotagedShift(k) => {
            buf.put_u8(4);
            buf.put_u8(k);
        }
        HashFamilyKind::SabotagedLowEntropy => buf.put_u8(5),
        HashFamilyKind::SabotagedIdentity => buf.put_u8(6),
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_hash_kind(buf: &mut Bytes) -> Result<HashFamilyKind, CodecError> {
    match get_u8(buf)? {
        0 => Ok(HashFamilyKind::Pairwise),
        1 => Ok(HashFamilyKind::KWise(get_u8(buf)?)),
        2 => Ok(HashFamilyKind::MultiplyShift),
        3 => Ok(HashFamilyKind::Tabulation),
        4 => Ok(HashFamilyKind::SabotagedShift(get_u8(buf)?)),
        5 => Ok(HashFamilyKind::SabotagedLowEntropy),
        6 => Ok(HashFamilyKind::SabotagedIdentity),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Serialize a sketch into its wire message.
///
/// ```
/// use gt_core::{DistinctSketch, SketchConfig};
/// use gt_streams::{decode_sketch, encode_sketch};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let mut party = DistinctSketch::new(&cfg, 7);
/// party.extend_labels(0..800);
/// let message = encode_sketch(&party);           // goes on the wire
/// let at_referee: DistinctSketch = decode_sketch(message).unwrap();
/// assert_eq!(at_referee.estimate_distinct().value, 800.0);
/// ```
pub fn encode_sketch<V: WirePayload>(sketch: &GtSketch<V>) -> Bytes {
    // Pass 1: collect and sort every trial's entries once (one Vec with
    // per-trial ranges, not one Vec per trial) and total the exact
    // encoded length. The buffer is then reserved exactly — spilling
    // millions of small sketches must not pay repeated `Vec` regrowth,
    // and the capacity test pins `len == encoded_sketch_len`.
    let trials = sketch.trials();
    let mut entries: Vec<(u64, V)> = Vec::with_capacity(sketch.sample_entries());
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(trials.len());
    for trial in trials {
        let start = entries.len();
        entries.extend(trial.sample_iter());
        entries[start..].sort_unstable_by_key(|&(label, _)| label);
        ranges.push((start, entries.len()));
    }
    let cfg = sketch.config();
    let mut total = header_len(cfg);
    for (trial, &(start, end)) in trials.iter().zip(&ranges) {
        total += 1 + varint_len(trial.items_observed());
        total += varint_len((end - start) as u64);
        let mut prev = 0u64;
        for &(label, payload) in &entries[start..end] {
            total += varint_len(label - prev) + payload.encoded_len();
            prev = label;
        }
    }
    // Pass 2: write.
    let mut buf = BytesMut::with_capacity(total);
    buf.put_u32(MAGIC);
    buf.put_u64(sketch.master_seed());
    buf.put_f64(cfg.epsilon());
    buf.put_f64(cfg.delta());
    put_varint(&mut buf, cfg.capacity() as u64);
    put_varint(&mut buf, cfg.trials() as u64);
    put_hash_kind(&mut buf, cfg.hash_kind());
    for (trial, &(start, end)) in trials.iter().zip(&ranges) {
        buf.put_u8(trial.level());
        put_varint(&mut buf, trial.items_observed());
        put_varint(&mut buf, (end - start) as u64);
        let mut prev = 0u64;
        for &(label, _) in &entries[start..end] {
            put_varint(&mut buf, label - prev);
            prev = label;
        }
        for &(_, payload) in &entries[start..end] {
            payload.encode(&mut buf);
        }
    }
    debug_assert_eq!(buf.len(), total, "encoded length prediction drifted");
    buf.freeze()
}

/// Fixed-size wire header length for `cfg`: magic, seed, epsilon, delta,
/// capacity + trials varints, hash-kind tag.
fn header_len(cfg: &gt_core::SketchConfig) -> usize {
    let kind_len = match cfg.hash_kind() {
        HashFamilyKind::KWise(_) | HashFamilyKind::SabotagedShift(_) => 2,
        _ => 1,
    };
    4 + 8 + 8 + 8 + varint_len(cfg.capacity() as u64) + varint_len(cfg.trials() as u64) + kind_len
}

/// Exact byte length [`encode_sketch`] will produce for `sketch`, without
/// encoding it — usable for spill-log capacity planning and asserted
/// against the real encoder in tests.
pub fn encoded_sketch_len<V: WirePayload>(sketch: &GtSketch<V>) -> usize {
    let mut total = header_len(sketch.config());
    let mut labels: Vec<u64> = Vec::new();
    for trial in sketch.trials() {
        total += 1 + varint_len(trial.items_observed());
        total += varint_len(trial.sample_len() as u64);
        labels.clear();
        labels.extend(trial.sample_iter().map(|(label, _)| label));
        labels.sort_unstable();
        let mut prev = 0u64;
        for &label in &labels {
            total += varint_len(label - prev);
            prev = label;
        }
        total += trial
            .sample_iter()
            .map(|(_, payload)| payload.encoded_len())
            .sum::<usize>();
    }
    total
}

/// Deserialize and validate a sketch message.
pub fn decode_sketch<V: WirePayload>(mut buf: Bytes) -> Result<GtSketch<V>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    if buf.remaining() < 8 + 8 + 8 {
        return Err(CodecError::Truncated);
    }
    let master_seed = buf.get_u64();
    let epsilon = buf.get_f64();
    let delta = buf.get_f64();
    let capacity = get_varint(&mut buf)? as usize;
    let trials = get_varint(&mut buf)? as usize;
    let kind = get_hash_kind(&mut buf)?;
    if (capacity as u64).saturating_mul(trials as u64) > MAX_WIRE_ENTRIES {
        return Err(CodecError::Sketch(SketchError::InvalidConfig {
            parameter: "shape",
            reason: format!(
                "declared shape {capacity} x {trials} exceeds the wire ceiling of {MAX_WIRE_ENTRIES} entries"
            ),
        }));
    }
    let config = SketchConfig::from_shape(epsilon, delta, capacity, trials, kind)?;
    let mut states = Vec::with_capacity(trials);
    for _ in 0..trials {
        let level = get_u8(&mut buf)?;
        let items = get_varint(&mut buf)?;
        let n = get_varint(&mut buf)? as usize;
        if n > capacity {
            return Err(CodecError::Sketch(SketchError::InvalidConfig {
                parameter: "sample",
                reason: format!("sample size {n} exceeds capacity {capacity}"),
            }));
        }
        let mut labels = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev
                .checked_add(get_varint(&mut buf)?)
                .ok_or(CodecError::Malformed("label delta overflows u64"))?;
            labels.push(prev);
        }
        let mut entries = Vec::with_capacity(n);
        for label in labels {
            entries.push((label, V::decode(&mut buf)?));
        }
        states.push((level, items, entries));
    }
    Ok(GtSketch::reassemble(&config, master_seed, states)?)
}

/// Reusable decode buffers for [`decode_sketch_into`]: one entries vector,
/// grown once to the configured capacity and kept across messages.
#[derive(Clone, Debug, Default)]
pub struct DecodeScratch<V> {
    entries: Vec<(u64, V)>,
}

impl<V> DecodeScratch<V> {
    /// Fresh scratch (buffers grow on first use and then stay).
    pub fn new() -> Self {
        DecodeScratch {
            entries: Vec::new(),
        }
    }
}

/// Deserialize a sketch message *into* an existing sketch, reusing its
/// trial storage and the caller's [`DecodeScratch`] — the allocation-free
/// counterpart of [`decode_sketch`] for referees that decode thousands of
/// messages per collection round.
///
/// Beyond [`decode_sketch`]'s validation, this variant enforces the
/// coordination contract up front (the receiving sketch already knows the
/// expected seed and config, so there is no reason to build an
/// uncoordinated sketch only to reject it at merge time):
///
/// * a master-seed mismatch is [`CodecError::Sketch`] /
///   [`SketchError::SeedMismatch`];
/// * a config mismatch (shape, epsilon/delta, hash kind) is
///   [`CodecError::Sketch`] / [`SketchError::ConfigMismatch`].
///
/// On `Err` the sketch's state is unspecified (some trials may hold the
/// new message, others the old one); reload or discard it before use. On
/// `Ok` the sketch state is bitwise-identical to what [`decode_sketch`]
/// would have returned — property-tested, including under the structured
/// mutation fuzz.
pub fn decode_sketch_into<V: WirePayload>(
    sketch: &mut GtSketch<V>,
    mut buf: Bytes,
    scratch: &mut DecodeScratch<V>,
) -> Result<(), CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    if buf.remaining() < 8 + 8 + 8 {
        return Err(CodecError::Truncated);
    }
    let master_seed = buf.get_u64();
    let epsilon = buf.get_f64();
    let delta = buf.get_f64();
    let capacity = get_varint(&mut buf)? as usize;
    let trials = get_varint(&mut buf)? as usize;
    let kind = get_hash_kind(&mut buf)?;
    if (capacity as u64).saturating_mul(trials as u64) > MAX_WIRE_ENTRIES {
        return Err(CodecError::Sketch(SketchError::InvalidConfig {
            parameter: "shape",
            reason: format!(
                "declared shape {capacity} x {trials} exceeds the wire ceiling of {MAX_WIRE_ENTRIES} entries"
            ),
        }));
    }
    let config = SketchConfig::from_shape(epsilon, delta, capacity, trials, kind)?;
    if master_seed != sketch.master_seed() {
        return Err(CodecError::Sketch(SketchError::SeedMismatch));
    }
    if config != *sketch.config() {
        return Err(CodecError::Sketch(SketchError::ConfigMismatch {
            detail: format!("{:?} vs {:?}", config, sketch.config()),
        }));
    }
    scratch.entries.reserve(capacity);
    for t in 0..trials {
        let level = get_u8(&mut buf)?;
        let items = get_varint(&mut buf)?;
        let n = get_varint(&mut buf)? as usize;
        if n > capacity {
            return Err(CodecError::Sketch(SketchError::InvalidConfig {
                parameter: "sample",
                reason: format!("sample size {n} exceeds capacity {capacity}"),
            }));
        }
        scratch.entries.clear();
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev
                .checked_add(get_varint(&mut buf)?)
                .ok_or(CodecError::Malformed("label delta overflows u64"))?;
            scratch.entries.push((prev, V::default()));
        }
        for entry in scratch.entries.iter_mut() {
            entry.1 = V::decode(&mut buf)?;
        }
        sketch.reload_trial(t, level, items, scratch.entries.iter().copied())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::{DistinctSketch, SumDistinctSketch};

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn sample_sets(s: &DistinctSketch) -> Vec<std::collections::BTreeSet<u64>> {
        s.trials()
            .iter()
            .map(|t| t.sample_iter().map(|(k, _)| k).collect())
            .collect()
    }

    #[test]
    fn varint_len_matches_the_encoder() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "value {v}");
        }
    }

    #[test]
    fn encode_reserves_the_exact_length_up_front() {
        // The predicted length must equal the produced length for empty,
        // populated, and payload-carrying sketches — that equality is what
        // guarantees the pre-reserved buffer never regrows while spilling
        // millions of small sketches.
        let empty = DistinctSketch::new(&cfg(), 3);
        assert_eq!(encode_sketch(&empty).len(), encoded_sketch_len(&empty));

        let mut small = DistinctSketch::new(&cfg(), 3);
        small.extend_labels((0..50u64).map(gt_hash::fold61));
        assert_eq!(encode_sketch(&small).len(), encoded_sketch_len(&small));

        let mut large = DistinctSketch::new(&cfg(), 3);
        large.extend_labels((0..60_000u64).map(gt_hash::fold61));
        assert_eq!(encode_sketch(&large).len(), encoded_sketch_len(&large));

        let mut payload = GtSketch::<u64>::new(&cfg(), 3);
        for i in 0..5_000u64 {
            payload.insert_merging_with(gt_hash::fold61(i), i * 977);
        }
        assert_eq!(encode_sketch(&payload).len(), encoded_sketch_len(&payload));

        // Two-byte hash-kind tags go through the same header accounting.
        let kwise =
            gt_core::SketchConfig::from_shape(0.2, 0.2, 16, 5, HashFamilyKind::KWise(4)).unwrap();
        let mut s = DistinctSketch::new(&kwise, 9);
        s.extend_labels((0..2_000u64).map(gt_hash::fold61));
        assert_eq!(encode_sketch(&s).len(), encoded_sketch_len(&s));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut s = DistinctSketch::new(&cfg(), 42);
        s.extend_labels((0..30_000).map(gt_hash::fold61));
        let bytes = encode_sketch(&s);
        let d: DistinctSketch = decode_sketch(bytes).unwrap();
        assert_eq!(d.master_seed(), 42);
        assert_eq!(d.config(), s.config());
        assert_eq!(d.estimate_distinct().value, s.estimate_distinct().value);
        assert_eq!(d.items_observed(), s.items_observed());
        assert_eq!(sample_sets(&d), sample_sets(&s));
    }

    #[test]
    fn decoded_sketch_is_mergeable_with_originals() {
        let mut a = DistinctSketch::new(&cfg(), 7);
        let mut b = DistinctSketch::new(&cfg(), 7);
        a.extend_labels((0..5_000).map(gt_hash::fold61));
        b.extend_labels((2_500..7_500).map(gt_hash::fold61));
        let mut d: DistinctSketch = decode_sketch(encode_sketch(&a)).unwrap();
        d.merge_from(&b).unwrap();
        let direct = a.merged(&b).unwrap();
        assert_eq!(
            d.estimate_distinct().value,
            direct.estimate_distinct().value
        );
    }

    #[test]
    fn empty_sketch_roundtrips() {
        let s = DistinctSketch::new(&cfg(), 1);
        let d: DistinctSketch = decode_sketch(encode_sketch(&s)).unwrap();
        assert_eq!(d.estimate_distinct().value, 0.0);
    }

    #[test]
    fn sum_sketch_payloads_roundtrip() {
        let mut s = SumDistinctSketch::new(&cfg(), 9);
        for i in 0..500u64 {
            s.insert(gt_hash::fold61(i), i % 13 + 1);
        }
        let bytes = encode_sketch(s.inner());
        let inner: GtSketch<u64> = decode_sketch(bytes).unwrap();
        assert_eq!(
            inner.estimate_weighted(|_, v| v as f64),
            s.estimate_sum().value
        );
    }

    #[test]
    fn message_size_is_logarithmic_in_stream_length() {
        // Same config, streams of 10k vs 1M items over the same distinct
        // universe: message size must not grow with length.
        let mut small = DistinctSketch::new(&cfg(), 3);
        let mut large = DistinctSketch::new(&cfg(), 3);
        let universe: Vec<u64> = (0..10_000).map(gt_hash::fold61).collect();
        small.extend_labels(universe.iter().copied());
        for _ in 0..100 {
            large.extend_labels(universe.iter().copied());
        }
        let sb = encode_sketch(&small).len();
        let lb = encode_sketch(&large).len();
        assert_eq!(
            sb.max(lb) - sb.min(lb),
            estimate_items_delta(&small, &large)
        );

        fn estimate_items_delta(a: &DistinctSketch, b: &DistinctSketch) -> usize {
            // Only the items_observed varints differ in size.
            let va = varint_len(a.items_observed());
            let vb = varint_len(b.items_observed());
            (vb - va) * a.config().trials()
        }
        fn varint_len(v: u64) -> usize {
            (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
        }
    }

    #[test]
    fn delta_varint_beats_fixed_width() {
        let mut s = DistinctSketch::new(&cfg(), 5);
        s.extend_labels((0..50_000).map(gt_hash::fold61));
        let bytes = encode_sketch(&s).len();
        let fixed = s.sample_entries() * 8;
        assert!(bytes < fixed, "codec {bytes} vs fixed-width {fixed}");
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let mut s = DistinctSketch::new(&cfg(), 1);
        s.extend_labels((0..100).map(gt_hash::fold61));
        let bytes = encode_sketch(&s);
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            let r: Result<DistinctSketch, _> = decode_sketch(bytes.slice(0..cut));
            assert!(r.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xDEAD_BEEF);
        buf.put_bytes(0, 64);
        let r: Result<DistinctSketch, _> = decode_sketch(buf.freeze());
        assert!(matches!(r, Err(CodecError::BadMagic(0xDEAD_BEEF))));
    }

    #[test]
    fn corrupted_sample_fails_validation() {
        let mut s = DistinctSketch::new(&cfg(), 1);
        s.extend_labels((0..50_000).map(gt_hash::fold61)); // level > 0
        let bytes = encode_sketch(&s);
        // Flip a byte inside the first trial's label area; the decoded
        // label will (almost surely) not satisfy the level invariant.
        let mut raw = bytes.to_vec();
        let idx = raw.len() - 10;
        raw[idx] ^= 0x55;
        let r: Result<DistinctSketch, _> = decode_sketch(Bytes::from(raw));
        assert!(r.is_err(), "corruption must not decode cleanly");
    }

    #[test]
    fn every_hash_kind_roundtrips() {
        use gt_hash::HashFamilyKind as K;
        for kind in [
            K::Pairwise,
            K::KWise(4),
            K::MultiplyShift,
            K::Tabulation,
            K::SabotagedShift(3),
            K::SabotagedLowEntropy,
            K::SabotagedIdentity,
        ] {
            let config = SketchConfig::from_shape(0.2, 0.2, 64, 3, kind).unwrap();
            let mut s = DistinctSketch::new(&config, 11);
            s.extend_labels((0..500).map(gt_hash::fold61));
            let d: DistinctSketch = decode_sketch(encode_sketch(&s)).unwrap();
            assert_eq!(d.config().hash_kind(), kind, "{kind:?}");
            assert_eq!(d.estimate_distinct().value, s.estimate_distinct().value);
        }
    }

    #[test]
    fn oversized_declared_shape_rejected_before_allocation() {
        // Craft a header declaring capacity 2^28 x 4096 trials (each field
        // individually legal) with no sample data; decode must refuse
        // before allocating the tables.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4754_5301);
        buf.put_u64(1); // master seed
        buf.put_f64(0.1);
        buf.put_f64(0.1);
        put_varint(&mut buf, 1 << 28); // capacity
        put_varint(&mut buf, 4096); // trials
        buf.put_u8(0); // Pairwise
        let r: Result<DistinctSketch, _> = decode_sketch(buf.freeze());
        assert!(
            matches!(
                r,
                Err(CodecError::Sketch(SketchError::InvalidConfig {
                    parameter: "shape",
                    ..
                }))
            ),
            "{r:?}"
        );
    }

    #[test]
    fn non_finite_epsilon_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4754_5301);
        buf.put_u64(1);
        buf.put_f64(f64::NAN); // epsilon
        buf.put_f64(0.1);
        put_varint(&mut buf, 64);
        put_varint(&mut buf, 3);
        buf.put_u8(0);
        let r: Result<DistinctSketch, _> = decode_sketch(buf.freeze());
        assert!(
            matches!(
                r,
                Err(CodecError::Sketch(SketchError::InvalidConfig {
                    parameter: "epsilon",
                    ..
                }))
            ),
            "{r:?}"
        );
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn varint_rejects_overlong_encoding() {
        // 11 bytes of 0xFF can encode > 64 bits.
        let mut b = Bytes::from(vec![0xFFu8; 11]);
        assert!(get_varint(&mut b).is_err());
    }

    #[test]
    fn varint_rejects_non_canonical_encodings() {
        // Each of these decodes to a value with a shorter encoding, so a
        // canonical codec must reject them (otherwise one sketch has many
        // byte representations and the dedup fingerprint is ill-defined).
        let cases: &[&[u8]] = &[
            &[0x80, 0x00],                                                 // 0 in 2 bytes
            &[0xFF, 0x00],                                                 // 127 in 2 bytes
            &[0x80, 0x80, 0x00],                                           // 0 in 3 bytes
            &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00], // 0 in 10
        ];
        for case in cases {
            let mut b = Bytes::from(case.to_vec());
            assert!(
                matches!(get_varint(&mut b), Err(CodecError::Malformed(_))),
                "{case:?} should be rejected as non-canonical"
            );
        }
        // The single-byte encoding of zero stays legal.
        let mut b = Bytes::from(vec![0x00u8]);
        assert_eq!(get_varint(&mut b).unwrap(), 0);
    }

    #[test]
    fn encoder_only_emits_canonical_varints() {
        // Round-trip sweep including every byte-length boundary: what
        // put_varint writes, the canonical reader accepts.
        let mut edge = vec![0u64, 1];
        for k in 1..=9u32 {
            let b = 1u64 << (7 * k);
            edge.extend([b - 1, b, b + 1]);
        }
        edge.push(u64::MAX);
        for v in edge {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
            assert!(!b.has_remaining());
        }
    }

    /// SplitMix64 — deterministic fuzz schedule, reproducible run-to-run.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Structured mutations over valid messages: rather than pure random
    /// bytes (which die at the magic check), each round takes a real
    /// encoding and perturbs it the way real corruption or a hostile
    /// sender would — truncation, bit flips, varint splices (injected
    /// continuation bits / over-long encodings), section duplication,
    /// deletion, and region swaps. The decoder contract under attack:
    /// **never panic**, and every accepted message must re-encode to a
    /// canonical fixpoint (decode → encode → decode gives identical
    /// bytes), otherwise the referee's byte-level dedup fingerprint is
    /// ill-defined.
    #[test]
    fn structured_mutation_fuzz_never_panics_and_reencodes_canonically() {
        let mut bases: Vec<Vec<u8>> = Vec::new();
        for (seed, n) in [(1u64, 0u64), (2, 100), (3, 20_000)] {
            let mut s = DistinctSketch::new(&cfg(), seed);
            s.extend_labels((0..n).map(gt_hash::fold61));
            bases.push(encode_sketch(&s).to_vec());
        }
        let mut sum = SumDistinctSketch::new(&cfg(), 4);
        for i in 0..2_000u64 {
            sum.insert(gt_hash::fold61(i), i % 7 + 1);
        }
        let sum_base = encode_sketch(sum.inner()).to_vec();

        let mut rng = 0x5EED_F0CC_u64;
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for round in 0..1_200u64 {
            let base = &bases[(round % bases.len() as u64) as usize];
            let mut raw = base.clone();
            // 1-3 stacked mutations per round.
            for _ in 0..(splitmix(&mut rng) % 3 + 1) {
                if raw.is_empty() {
                    break;
                }
                let at = (splitmix(&mut rng) as usize) % raw.len();
                match splitmix(&mut rng) % 6 {
                    0 => raw.truncate(at),
                    1 => raw[at] ^= (splitmix(&mut rng) % 255 + 1) as u8,
                    // Varint splice: set a continuation bit and append a
                    // spare byte, manufacturing over-long/shifted varints.
                    2 => {
                        raw[at] |= 0x80;
                        raw.insert(at + 1, (splitmix(&mut rng) & 0x7F) as u8);
                    }
                    // Duplicate a section in place.
                    3 => {
                        let len = ((splitmix(&mut rng) as usize) % 16 + 1).min(raw.len() - at);
                        let section = raw[at..at + len].to_vec();
                        raw.splice(at..at, section);
                    }
                    // Delete a section.
                    4 => {
                        let len = ((splitmix(&mut rng) as usize) % 8 + 1).min(raw.len() - at);
                        raw.drain(at..at + len);
                    }
                    // Swap two adjacent regions.
                    _ => {
                        let len = ((splitmix(&mut rng) as usize) % 8 + 1).min(raw.len() - at) / 2;
                        for k in 0..len {
                            raw.swap(at + k, at + 2 * len - 1 - k);
                        }
                    }
                }
            }
            // The contract: decode must return, not panic…
            match decode_sketch::<()>(Bytes::from(raw.clone())) {
                Err(_) => rejected += 1,
                Ok(decoded) => {
                    accepted += 1;
                    // …and anything accepted re-encodes to a fixpoint.
                    let reenc = encode_sketch(&decoded);
                    let again: DistinctSketch = decode_sketch(reenc.clone())
                        .expect("re-encoding of an accepted sketch must decode");
                    assert_eq!(
                        reenc,
                        encode_sketch(&again),
                        "round {round}: accepted message is not canonical"
                    );
                }
            }
            // Same schedule against the payload-carrying decoder.
            let mut raw = sum_base.clone();
            let at = (splitmix(&mut rng) as usize) % raw.len();
            raw[at] ^= (splitmix(&mut rng) % 255 + 1) as u8;
            let _ = decode_sketch::<u64>(Bytes::from(raw)); // must not panic
        }
        // The fuzz must exercise both outcomes to mean anything.
        assert!(rejected > 0, "no mutation was ever rejected");
        assert!(
            accepted > 0,
            "every mutation was rejected — mutations too destructive to \
             test the accept path ({rejected} rejected)"
        );
    }

    #[test]
    fn decode_into_matches_decode_and_reuses_storage() {
        let mut s = GtSketch::<u64>::new(&cfg(), 42);
        for i in 0..30_000u64 {
            s.insert_merging_with(gt_hash::fold61(i), i);
        }
        let bytes = encode_sketch(&s);
        let fresh: GtSketch<u64> = decode_sketch(bytes.clone()).unwrap();
        let mut arena = GtSketch::<u64>::new(&cfg(), 42);
        let mut scratch = DecodeScratch::new();
        // Decode twice into the same arena: the second pass overwrites the
        // first, proving the reload path doesn't accumulate stale entries.
        decode_sketch_into(&mut arena, bytes.clone(), &mut scratch).unwrap();
        decode_sketch_into(&mut arena, bytes, &mut scratch).unwrap();
        assert_eq!(encode_sketch(&arena), encode_sketch(&fresh));
        assert_eq!(arena.items_observed(), fresh.items_observed());
    }

    #[test]
    fn decode_into_enforces_the_coordination_contract() {
        let mut s = DistinctSketch::new(&cfg(), 42);
        s.extend_labels((0..500).map(gt_hash::fold61));
        let bytes = encode_sketch(&s);
        let mut scratch = DecodeScratch::new();
        // Wrong seed in the receiving sketch.
        let mut wrong_seed = DistinctSketch::new(&cfg(), 43);
        assert!(matches!(
            decode_sketch_into(&mut wrong_seed, bytes.clone(), &mut scratch),
            Err(CodecError::Sketch(SketchError::SeedMismatch))
        ));
        // Wrong config in the receiving sketch.
        let other_cfg = SketchConfig::new(0.2, 0.2).unwrap();
        let mut wrong_cfg = DistinctSketch::new(&other_cfg, 42);
        assert!(matches!(
            decode_sketch_into(&mut wrong_cfg, bytes, &mut scratch),
            Err(CodecError::Sketch(SketchError::ConfigMismatch { .. }))
        ));
    }

    /// The into-variant must accept exactly the messages the allocating
    /// decoder (followed by the referee's seed/config checks) accepts, and
    /// produce bitwise-identical sketches — under the same structured
    /// mutation schedule as the main fuzz. Error *variants* may differ
    /// (the into-variant front-loads the coordination checks), but the
    /// accept sets may not.
    #[test]
    fn decode_into_agrees_with_decode_under_mutation_fuzz() {
        let mut s = DistinctSketch::new(&cfg(), 9);
        s.extend_labels((0..20_000).map(gt_hash::fold61));
        let base = encode_sketch(&s).to_vec();
        let mut arena = DistinctSketch::new(&cfg(), 9);
        let mut scratch = DecodeScratch::new();
        let mut rng = 0xF1A9_5EED_u64;
        let (mut both_ok, mut both_err) = (0u64, 0u64);
        for round in 0..800u64 {
            let mut raw = base.clone();
            // Most rounds mutate; every 8th passes the message through
            // clean so the accept path is exercised even though the
            // coordination filter rejects most seed/config-touching
            // mutations outright.
            let mutations = if round % 8 == 0 {
                0
            } else {
                splitmix(&mut rng) % 3 + 1
            };
            for _ in 0..mutations {
                if raw.is_empty() {
                    break;
                }
                let at = (splitmix(&mut rng) as usize) % raw.len();
                match splitmix(&mut rng) % 3 {
                    0 => raw.truncate(at),
                    1 => raw[at] ^= (splitmix(&mut rng) % 255 + 1) as u8,
                    _ => {
                        raw[at] |= 0x80;
                        raw.insert(at + 1, (splitmix(&mut rng) & 0x7F) as u8);
                    }
                }
            }
            let bytes = Bytes::from(raw);
            let oracle = decode_sketch::<()>(bytes.clone())
                .ok()
                .filter(|d| d.master_seed() == arena.master_seed() && d.config() == arena.config());
            let into = decode_sketch_into(&mut arena, bytes, &mut scratch);
            match (oracle, into) {
                (Some(d), Ok(())) => {
                    both_ok += 1;
                    assert_eq!(
                        encode_sketch(&arena),
                        encode_sketch(&d),
                        "round {round}: accepted states diverged"
                    );
                }
                (None, Err(_)) => both_err += 1,
                (oracle, into) => panic!(
                    "round {round}: accept sets diverged (oracle accepted: {}, into: {:?})",
                    oracle.is_some(),
                    into.map(|()| "accepted")
                ),
            }
        }
        assert!(both_err > 0, "no mutation was ever rejected");
        assert!(both_ok > 0, "every mutation was rejected");
    }

    #[test]
    fn frames_roundtrip_both_kinds() {
        let mut s = DistinctSketch::new(&cfg(), 21);
        s.extend_labels((0..4_000u64).map(gt_hash::fold61));
        let base = s.clone();
        s.extend_labels((4_000..6_000u64).map(gt_hash::fold61));

        let full = encode_full_frame(&s, 9);
        match decode_frame::<()>(full).unwrap() {
            Frame::Full { generation, sketch } => {
                assert_eq!(generation, 9);
                assert_eq!(encode_sketch(&sketch), encode_sketch(&s));
            }
            other => panic!("expected full frame, got {other:?}"),
        }

        let d = gt_core::delta_between(&base, &s).unwrap();
        let base_fp = payload_fingerprint(&encode_sketch(&base));
        let bytes = encode_delta_frame(&d, 9, 4, base_fp);
        match decode_frame::<()>(bytes).unwrap() {
            Frame::Delta {
                generation,
                base_generation,
                base_fingerprint,
                delta,
            } => {
                assert_eq!((generation, base_generation, base_fingerprint), (9, 4, base_fp));
                // The decoded delta must still apply exactly.
                let mut rebuilt = base.clone();
                gt_core::apply_delta(&mut rebuilt, &delta).unwrap();
                assert_eq!(encode_sketch(&rebuilt), encode_sketch(&s));
            }
            other => panic!("expected delta frame, got {other:?}"),
        }
    }

    #[test]
    fn steady_state_delta_frame_is_a_fraction_of_the_full_frame() {
        // The tentpole's byte claim at codec granularity: few changes ->
        // tiny frame.
        let mut s = DistinctSketch::new(&cfg(), 33);
        s.extend_labels((0..50_000u64).map(gt_hash::fold61));
        let base = s.clone();
        s.extend_labels((0..500u64).map(gt_hash::fold61)); // re-arrivals only
        let d = gt_core::delta_between(&base, &s).unwrap();
        let full = encode_full_frame(&s, 2).len();
        let delta = encode_delta_frame(&d, 2, 1, 0).len();
        assert!(
            delta * 5 <= full,
            "steady-state delta frame {delta}B not >=5x smaller than full {full}B"
        );
    }

    #[test]
    fn corrupt_frames_are_rejected_not_applied() {
        let mut s = DistinctSketch::new(&cfg(), 5);
        s.extend_labels((0..1_000u64).map(gt_hash::fold61));
        let bytes = encode_full_frame(&s, 3);
        // Wrong magic (a bare sketch message is not a frame).
        assert!(matches!(
            decode_frame::<()>(encode_sketch(&s)),
            Err(CodecError::BadMagic(_))
        ));
        // Unknown kind byte.
        let mut raw = bytes.to_vec();
        raw[4] = 7;
        assert!(matches!(
            decode_frame::<()>(Bytes::from(raw)),
            Err(CodecError::BadTag(7))
        ));
        // Truncations anywhere must not panic.
        for cut in [0, 4, 5, 6, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_frame::<()>(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
        // A delta frame claiming to be its own base is malformed.
        let d = DistinctSketch::new(&cfg(), 5);
        let frame = encode_delta_frame(&d, 4, 4, 0);
        assert!(matches!(
            decode_frame::<()>(frame),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn latest_ts_payloads_roundtrip_through_frames() {
        use gt_core::LatestTs;
        let mut s = GtSketch::<LatestTs>::new(&cfg(), 15);
        for t in 0..3_000u64 {
            s.insert_merging_with(gt_hash::fold61(t % 2_000), LatestTs(t));
        }
        let bytes = encode_sketch(&s);
        let d: GtSketch<LatestTs> = decode_sketch(bytes.clone()).unwrap();
        assert_eq!(encode_sketch(&d), bytes);
        assert_eq!(bytes.len(), encoded_sketch_len(&s));
        match decode_frame::<LatestTs>(encode_full_frame(&s, 1)).unwrap() {
            Frame::Full { sketch, .. } => assert_eq!(encode_sketch(&sketch), bytes),
            other => panic!("expected full frame, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_separates_payloads_and_is_stable() {
        let mut a = DistinctSketch::new(&cfg(), 3);
        a.extend_labels((0..1_000).map(gt_hash::fold61));
        let mut b = DistinctSketch::new(&cfg(), 3);
        b.extend_labels((1..1_001).map(gt_hash::fold61));
        let ea = encode_sketch(&a);
        let eb = encode_sketch(&b);
        // Same state, same fingerprint (deterministic re-encode)...
        assert_eq!(
            payload_fingerprint(&ea),
            payload_fingerprint(&encode_sketch(&a))
        );
        // ...different states, different fingerprints (w.h.p.).
        assert_ne!(payload_fingerprint(&ea), payload_fingerprint(&eb));
        // Known vectors so the function cannot silently change: FNV-1a.
        assert_eq!(payload_fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(payload_fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
