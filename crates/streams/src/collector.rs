//! The retrying collection plane: ack / timeout / retransmit rounds with
//! capped exponential backoff over the simulated [`crate::transport`].
//!
//! The paper's model sends each party's summary exactly once; real
//! channels lose messages. A [`Collector`] closes that gap: it drives
//! rounds in which every unacknowledged party's message is (re)sent, the
//! virtual clock advances by the round's timeout, and arriving deliveries
//! are fed to an idempotent [`Referee`]. The round timeout doubles up to
//! a cap, and each party has a bounded retry budget
//! ([`RetryPolicy::max_attempts`]).
//!
//! Because delivery is now **at-least-once** (stragglers from earlier
//! attempts arrive after a retransmit; acks themselves can be lost), the
//! referee's `(party, fingerprint)` dedup is what keeps the union and its
//! exactly-once accounting correct — see `crate::referee`.
//!
//! When the budget exhausts with parties still unheard, the caller gets a
//! [`CollectionReport`] naming them and can answer queries in degraded
//! mode via [`RefereeOf::estimate_distinct_partial`], which reports
//! coverage alongside the estimate.

use std::collections::{BTreeSet, HashMap};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gt_core::SketchConfig;

use crate::party::PartyMessage;
use crate::referee::{Referee, RefereeOf, RefereeTelemetry};
use crate::transport::{Delivery, SendFate, Tick, Transport, TransportSpec, TransportTelemetry};

/// Retry behaviour of the collection plane.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total send attempts allowed per party (1 = the paper's one-shot
    /// model, no retries). Must be at least 1.
    pub max_attempts: usize,
    /// Ticks the collector waits for deliveries in the first round.
    pub initial_timeout: Tick,
    /// Cap on the per-round timeout as it doubles (capped exponential
    /// backoff).
    pub max_timeout: Tick,
    /// Probability the acknowledgement back to a party is lost, leaving
    /// the party to retransmit a message the referee already merged — the
    /// classic at-least-once duplicate source.
    pub ack_drop_probability: f64,
}

impl RetryPolicy {
    /// The paper's one-shot model: a single attempt, no retries.
    pub fn one_shot() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_timeout: 8,
            max_timeout: 64,
            ack_drop_probability: 0.0,
        }
    }

    /// A retrying policy with the given per-party attempt budget and the
    /// default backoff schedule (8 ticks doubling to 64).
    pub fn with_budget(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::one_shot()
        }
    }
}

/// Per-party attempt accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartyAttempts {
    /// Send attempts made for this party (1 = no retransmits).
    pub sends: usize,
    /// Channel-side fate of the most recent attempt.
    pub last_fate: Option<SendFate>,
    /// Virtual time the party's data first reached the union, if ever.
    pub acked_at: Option<Tick>,
}

/// Everything one collection run measured.
#[derive(Clone, Debug)]
pub struct CollectionReport {
    /// Attempt accounting, indexed like the input messages.
    pub per_party: Vec<PartyAttempts>,
    /// Retransmit rounds driven (1 = one-shot).
    pub rounds: usize,
    /// Total sends beyond each party's first.
    pub retransmits: usize,
    /// Deliveries that arrived for a party whose data was already in the
    /// union (stragglers and ack-loss retransmits; the referee
    /// deduplicated them).
    pub late_arrivals: usize,
    /// Party ids still unheard when the retry budget ran out. Non-empty
    /// means the union is partial: query through
    /// [`RefereeOf::estimate_distinct_partial`].
    pub budget_exhausted: Vec<usize>,
    /// Virtual time at which the last party's data arrived — the
    /// time-to-full-union — or `None` if the union never completed.
    pub time_to_full_union: Option<Tick>,
    /// Channel-side telemetry (authoritative drop counts).
    pub transport: TransportTelemetry,
    /// Referee-side telemetry (accepts, duplicates, rejects, timings).
    pub referee: RefereeTelemetry,
}

impl CollectionReport {
    /// Parties whose data made it into the union.
    pub fn parties_acked(&self) -> usize {
        self.per_party
            .iter()
            .filter(|p| p.acked_at.is_some())
            .count()
    }

    /// Fraction of parties whose data made it into the union.
    pub fn completeness(&self) -> f64 {
        if self.per_party.is_empty() {
            1.0
        } else {
            self.parties_acked() as f64 / self.per_party.len() as f64
        }
    }
}

/// Drives ack/timeout/retransmit rounds between a set of finished parties
/// and an idempotent referee.
pub struct Collector<V: crate::codec::WirePayload = ()> {
    transport: Transport,
    referee: RefereeOf<V>,
    policy: RetryPolicy,
    /// Ack-loss decisions, independent of the data channel's RNG so the
    /// forward schedule is identical with and without ack loss.
    ack_rng: SmallRng,
}

impl<V: crate::codec::WirePayload> Collector<V> {
    /// A collector whose referee expects sketches built from `(config,
    /// master_seed)`, collecting over a channel with the given fault
    /// model and retry policy.
    pub fn new(
        config: &SketchConfig,
        master_seed: u64,
        spec: TransportSpec,
        policy: RetryPolicy,
    ) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        Collector {
            transport: Transport::new(spec),
            referee: RefereeOf::new(config, master_seed),
            policy,
            ack_rng: SmallRng::seed_from_u64(spec.seed ^ 0xACC0_ACC0_ACC0_ACC0),
        }
    }

    /// The referee (for queries after — or between — collections).
    pub fn referee(&self) -> &RefereeOf<V> {
        &self.referee
    }

    /// Consume the collector, keeping the referee for queries.
    pub fn into_referee(self) -> RefereeOf<V> {
        self.referee
    }

    /// Collect one message per party under the retry policy. Party ids in
    /// `messages` must be unique.
    ///
    /// Rounds proceed as: (re)send every pending party's message, advance
    /// the virtual clock by the current timeout, hand the round's
    /// deliveries to the referee as one batch (unioned via tree
    /// reduction), acknowledge parties whose data is in (acks may be
    /// lost), double the timeout up to the cap. After the budget is
    /// spent, in-flight stragglers are drained — at-least-once channels
    /// deliver late rather than never — and still count toward the union.
    pub fn collect(&mut self, messages: &[PartyMessage]) -> CollectionReport {
        let t = messages.len();
        let index_of: HashMap<usize, usize> = messages
            .iter()
            .enumerate()
            .map(|(i, m)| (m.party_id, i))
            .collect();
        assert_eq!(index_of.len(), t, "party ids must be unique");

        let mut per_party = vec![PartyAttempts::default(); t];
        let mut pending: BTreeSet<usize> = (0..t).collect();
        let mut late_arrivals = 0usize;
        let mut rounds = 0usize;
        let mut timeout = self.policy.initial_timeout.max(1);
        let timeout_cap = self.policy.max_timeout.max(timeout);

        while !pending.is_empty() && rounds < self.policy.max_attempts {
            for &i in &pending {
                per_party[i].sends += 1;
                per_party[i].last_fate = Some(self.transport.send(messages[i].clone()));
            }
            rounds += 1;
            let deadline = self.transport.now().saturating_add(timeout);
            let deliveries = self.transport.advance(deadline);
            self.handle_batch(
                &deliveries,
                &index_of,
                &mut per_party,
                &mut pending,
                &mut late_arrivals,
            );
            timeout = timeout.saturating_mul(2).min(timeout_cap);
        }
        let stragglers = self.transport.drain();
        self.handle_batch(
            &stragglers,
            &index_of,
            &mut per_party,
            &mut pending,
            &mut late_arrivals,
        );

        let budget_exhausted: Vec<usize> = per_party
            .iter()
            .enumerate()
            .filter(|(_, p)| p.acked_at.is_none())
            .map(|(i, _)| messages[i].party_id)
            .collect();
        let time_to_full_union = if budget_exhausted.is_empty() {
            per_party.iter().filter_map(|p| p.acked_at).max()
        } else {
            None
        };
        CollectionReport {
            retransmits: per_party.iter().map(|p| p.sends.saturating_sub(1)).sum(),
            per_party,
            rounds,
            late_arrivals,
            budget_exhausted,
            time_to_full_union,
            transport: self.transport.telemetry(),
            referee: *self.referee.telemetry(),
        }
    }

    /// Feed one round's deliveries to the referee as a single batch (the
    /// tree-reduction union path), then walk the per-delivery receipts in
    /// arrival order so the attempt accounting — `acked_at`, late
    /// arrivals, ack-loss RNG draws — is indistinguishable from handling
    /// each delivery on its own.
    fn handle_batch(
        &mut self,
        deliveries: &[Delivery],
        index_of: &HashMap<usize, usize>,
        per_party: &mut [PartyAttempts],
        pending: &mut BTreeSet<usize>,
        late_arrivals: &mut usize,
    ) {
        let ours: Vec<&Delivery> = deliveries
            .iter()
            .filter(|d| index_of.contains_key(&d.msg.party_id)) // cannot fail via collect
            .collect();
        if ours.is_empty() {
            return;
        }
        let batch: Vec<PartyMessage> = ours.iter().map(|d| d.msg.clone()).collect();
        let outcomes = self.referee.receive_batch(&batch);
        for (delivery, outcome) in ours.iter().zip(outcomes) {
            let i = index_of[&delivery.msg.party_id];
            if per_party[i].acked_at.is_some() {
                *late_arrivals += 1;
            }
            match outcome {
                Ok(_receipt) => {
                    if per_party[i].acked_at.is_none() {
                        per_party[i].acked_at = Some(delivery.at);
                    }
                    // The data is in; tell the party to stop — unless the
                    // ack itself is lost, in which case it retransmits
                    // next round and the referee dedups.
                    let ack_lost = self.policy.ack_drop_probability > 0.0
                        && self
                            .ack_rng
                            .gen_bool(self.policy.ack_drop_probability.clamp(0.0, 1.0));
                    if !ack_lost {
                        pending.remove(&i);
                    }
                }
                Err(_) => {
                    // Corrupt/invalid delivery: the party stays pending
                    // and will be retried if budget remains.
                }
            }
        }
    }
}

/// Convenience: collect label-only messages with a fresh collector and
/// return the report plus the referee.
pub fn collect_once(
    config: &SketchConfig,
    master_seed: u64,
    messages: &[PartyMessage],
    spec: TransportSpec,
    policy: RetryPolicy,
) -> (CollectionReport, Referee) {
    let mut collector: Collector = Collector::new(config, master_seed, spec, policy);
    let report = collector.collect(messages);
    (report, collector.into_referee())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::Party;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn messages(parties: usize, per_party: u64, seed: u64) -> Vec<PartyMessage> {
        (0..parties)
            .map(|id| {
                let mut p = Party::new(id, &cfg(), seed);
                let lo = id as u64 * per_party / 2; // 50% overlap with neighbor
                p.observe_stream(
                    &(lo..lo + per_party)
                        .map(gt_hash::fold61)
                        .collect::<Vec<_>>(),
                );
                p.finish()
            })
            .collect()
    }

    #[test]
    fn reliable_channel_one_shot_collects_everyone() {
        let msgs = messages(6, 300, 3);
        let (report, referee) = collect_once(
            &cfg(),
            3,
            &msgs,
            TransportSpec::reliable(1),
            RetryPolicy::one_shot(),
        );
        assert_eq!(report.parties_acked(), 6);
        assert_eq!(report.completeness(), 1.0);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.late_arrivals, 0);
        assert!(report.budget_exhausted.is_empty());
        assert!(report.time_to_full_union.is_some());
        assert_eq!(referee.messages(), 6);
        assert_eq!(referee.estimate_distinct_partial(6).coverage(), 1.0);
        // 6 parties, 300 labels each, 50% neighbor overlap -> 150*(6+1),
        // under the per-trial capacity so the union estimate is exact.
        assert_eq!(referee.estimate_distinct().value, 1050.0);
    }

    #[test]
    fn retries_recover_dropped_messages() {
        let msgs = messages(8, 300, 5);
        let spec = TransportSpec {
            straggle_probability: 0.0,
            jitter: 0,
            ..TransportSpec::lossy(0.5, 0xD0)
        };
        let (one_shot, _) = collect_once(&cfg(), 5, &msgs, spec, RetryPolicy::one_shot());
        assert!(
            one_shot.parties_acked() < 8,
            "seed should drop someone on the single attempt"
        );
        assert!(!one_shot.budget_exhausted.is_empty());
        assert_eq!(one_shot.time_to_full_union, None);

        let (retried, referee) = collect_once(&cfg(), 5, &msgs, spec, RetryPolicy::with_budget(8));
        assert_eq!(
            retried.parties_acked(),
            8,
            "8 attempts at p=0.5 recover all"
        );
        assert!(retried.retransmits > 0);
        assert!(retried.time_to_full_union.is_some());
        assert_eq!(referee.messages(), 8);
        // Retrying must not double-count: exactly-once per party.
        assert_eq!(
            referee.bytes_received(),
            msgs.iter().map(|m| m.bytes()).sum::<usize>()
        );
        assert_eq!(
            referee.items_reported(),
            msgs.iter().map(|m| m.items_observed).sum::<u64>()
        );
    }

    #[test]
    fn lost_acks_cause_duplicates_the_referee_suppresses() {
        let msgs = messages(5, 200, 7);
        let policy = RetryPolicy {
            max_attempts: 6,
            ack_drop_probability: 0.7,
            ..RetryPolicy::one_shot()
        };
        let (report, referee) =
            collect_once(&cfg(), 7, &msgs, TransportSpec::reliable(0xAC), policy);
        assert_eq!(report.parties_acked(), 5);
        assert!(
            report.referee.duplicates_suppressed > 0,
            "lost acks must have caused retransmit duplicates"
        );
        assert!(report.late_arrivals > 0);
        // Exactly-once despite the duplicates.
        assert_eq!(referee.messages(), 5);
        assert_eq!(
            referee.items_reported(),
            msgs.iter().map(|m| m.items_observed).sum::<u64>()
        );
    }

    #[test]
    fn stragglers_from_earlier_attempts_arrive_as_duplicates() {
        let msgs = messages(4, 200, 9);
        // Every message straggles past the first timeout: attempt 1 and
        // the attempt-2 retransmit BOTH arrive eventually.
        let spec = TransportSpec {
            straggle_probability: 1.0,
            straggle_latency: 20,
            ..TransportSpec::reliable(0x57)
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            initial_timeout: 4,
            max_timeout: 64,
            ack_drop_probability: 0.0,
        };
        let (report, referee) = collect_once(&cfg(), 9, &msgs, spec, policy);
        assert_eq!(report.parties_acked(), 4);
        assert_eq!(
            report.retransmits, 4,
            "round-1 stragglers missed the timeout"
        );
        assert_eq!(report.referee.duplicates_suppressed, 4);
        assert_eq!(report.late_arrivals, 4);
        assert_eq!(referee.messages(), 4);
    }

    #[test]
    fn budget_exhaustion_yields_degraded_estimate_with_coverage() {
        let msgs = messages(6, 300, 11);
        let spec = TransportSpec {
            jitter: 0,
            straggle_probability: 0.0,
            ..TransportSpec::lossy(0.95, 0xEE)
        };
        let (report, referee) = collect_once(&cfg(), 11, &msgs, spec, RetryPolicy::with_budget(2));
        assert!(
            report.parties_acked() < 6,
            "p=0.95 over 2 attempts must lose someone"
        );
        let partial = referee.estimate_distinct_partial(6);
        assert!(!partial.is_complete());
        assert_eq!(partial.parties_heard, report.parties_acked());
        assert!(partial.coverage() < 1.0);
        assert_eq!(report.budget_exhausted.len(), 6 - report.parties_acked());
        // The estimate still covers what arrived (capacity is generous
        // here, so the received union is exact).
        let acked_labels: std::collections::BTreeSet<u64> = report
            .per_party
            .iter()
            .enumerate()
            .filter(|(_, p)| p.acked_at.is_some())
            .flat_map(|(i, _)| {
                let lo = i as u64 * 150;
                (lo..lo + 300).map(gt_hash::fold61)
            })
            .collect();
        assert_eq!(partial.estimate.value, acked_labels.len() as f64);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        // With everything dropped, rounds are pure timeouts: the virtual
        // clock records initial*2^k growth capped at max_timeout.
        let msgs = messages(1, 50, 1);
        let spec = TransportSpec {
            drop_probability: 1.0,
            ..TransportSpec::reliable(1)
        };
        let policy = RetryPolicy {
            max_attempts: 5,
            initial_timeout: 4,
            max_timeout: 16,
            ack_drop_probability: 0.0,
        };
        let mut collector: Collector = Collector::new(&cfg(), 1, spec, policy);
        let report = collector.collect(&msgs);
        assert_eq!(report.rounds, 5);
        assert_eq!(report.per_party[0].sends, 5);
        assert_eq!(report.per_party[0].last_fate, Some(SendFate::Dropped));
        // 4 + 8 + 16 + 16 + 16 = 60 ticks of waiting.
        assert_eq!(collector.transport.now(), 60);
        assert_eq!(report.transport.dropped, 5);
    }

    #[test]
    fn collection_is_deterministic_per_seed() {
        let msgs = messages(6, 200, 13);
        let run = |seed| {
            let spec = TransportSpec {
                corrupt_probability: 0.2,
                ..TransportSpec::lossy(0.3, seed)
            };
            let policy = RetryPolicy {
                max_attempts: 4,
                ack_drop_probability: 0.2,
                ..RetryPolicy::one_shot()
            };
            let (report, referee) = collect_once(&cfg(), 13, &msgs, spec, policy);
            (
                report.parties_acked(),
                report.retransmits,
                report.late_arrivals,
                report.transport,
                report.referee,
                referee.estimate_distinct().value,
            )
        };
        let (a, b) = (run(21), run(21));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
        assert_eq!(a.5, b.5);
        // Telemetry counts match too (timings may differ; compare counts).
        assert_eq!(a.4.accepted, b.4.accepted);
        assert_eq!(a.4.duplicates(), b.4.duplicates());
        assert_eq!(a.4.rejected(), b.4.rejected());
    }
}
