//! Fault injection: what the communication model does under message loss
//! and corruption.
//!
//! Faults here have crisp semantics worth testing rather than
//! hand-waving:
//!
//! * **Corruption** is *detected, never absorbed*: the codec validates
//!   magic, framing, and the sample invariant on decode, so a corrupted
//!   message is rejected and the referee's union simply excludes that
//!   party (equivalent to loss + an alarm).
//! * **Loss** degrades the answer *predictably*: the union over received
//!   parties is still a perfectly valid `(ε, δ)` estimate — of the
//!   *received* union. The shortfall against the full union is exactly
//!   the distinct labels private to the lost parties, which this module
//!   measures.
//! * **Retry** closes the gap: this used to be an operator note ("retry
//!   transport if you need the full union") — it is now implemented.
//!   [`run_with_faults`] is a thin wrapper over a **one-shot**
//!   [`crate::collector::Collector`] on the simulated
//!   [`crate::transport`]; give the same collector a retry budget
//!   ([`crate::collector::RetryPolicy::with_budget`]) and lost messages
//!   are retransmitted with capped exponential backoff, with the
//!   referee's `(party, fingerprint)` dedup keeping redeliveries
//!   exactly-once. Experiment `e17` measures completeness and
//!   time-to-full-union across drop probability × retry budget.

use gt_core::SketchConfig;

use crate::collector::{collect_once, RetryPolicy};
use crate::oracle::StreamOracle;
use crate::party::{Party, PartyMessage};
use crate::referee::RefereeTelemetry;
use crate::transport::{SendFate, TransportSpec, TransportTelemetry};
use crate::workload::StreamSet;

/// What happened to each party's single message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered intact (or with a benign flip) and merged.
    Delivered,
    /// Dropped by the network; the referee never saw it.
    Dropped,
    /// Delivered with flipped bits; the referee detected and rejected it.
    CorruptedRejected,
}

/// Fault model for one scenario run.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Probability a party's message is dropped.
    pub drop_probability: f64,
    /// Probability a (non-dropped) message has a random byte corrupted.
    pub corrupt_probability: f64,
    /// RNG seed for fault decisions.
    pub seed: u64,
}

impl FaultSpec {
    /// The equivalent transport model: the one-shot channel is the
    /// general simulated transport with deterministic unit latency.
    pub fn transport(&self) -> TransportSpec {
        TransportSpec {
            drop_probability: self.drop_probability,
            corrupt_probability: self.corrupt_probability,
            base_latency: 1,
            jitter: 0,
            straggle_probability: 0.0,
            straggle_latency: 0,
            seed: self.seed,
        }
    }
}

/// Aggregate message-fate counts. Delivered/rejected come straight from
/// the referee's own telemetry (it is the authority on what it accepted);
/// the drop count is the **channel's** — the referee never sees a dropped
/// message, so only the channel can count them. (Deriving drops as
/// `fates.len() - attempts` breaks as soon as retries give the referee
/// more than one attempt per party.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FateCounts {
    /// Messages the referee accepted and merged.
    pub delivered: usize,
    /// Messages the channel dropped before the referee.
    pub dropped: usize,
    /// Messages the referee rejected as corrupt/invalid.
    pub rejected: usize,
}

/// Outcome of a faulty scenario.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Per-party fates.
    pub fates: Vec<MessageFate>,
    /// The referee's own per-stage accounting (decode failures by reason,
    /// duplicate counts, phase timings).
    pub telemetry: RefereeTelemetry,
    /// The channel's own accounting (authoritative for drops).
    pub channel: TransportTelemetry,
    /// The referee's estimate over the messages it accepted.
    pub estimate: f64,
    /// Exact distinct count of the union of **all** streams.
    pub full_truth: u64,
    /// Exact distinct count of the union of the **delivered** streams.
    pub received_truth: u64,
    /// Relative error of the estimate against `received_truth` — this is
    /// the quantity the `(ε, δ)` contract still covers under faults.
    pub error_vs_received: f64,
    /// Relative shortfall of `received_truth` against `full_truth` — the
    /// irreducible information lost with the dropped/corrupt parties.
    pub loss_shortfall: f64,
}

impl FaultReport {
    /// Fate counts, each from its authority: accepts and rejects from the
    /// referee telemetry, drops from the channel telemetry (not by
    /// re-scanning [`FaultReport::fates`]).
    pub fn fate_counts(&self) -> FateCounts {
        FateCounts {
            delivered: self.telemetry.accepted,
            dropped: self.channel.dropped,
            rejected: self.telemetry.rejected(),
        }
    }
}

/// Run a scenario where each party's single message passes through a
/// lossy, corrupting channel — the paper's one-shot model (no retries:
/// [`RetryPolicy::one_shot`]). Corrupted messages are *rejected* by the
/// referee rather than silently absorbed, unless the flip lands in a
/// don't-care position and the decoded sketch is still valid.
pub fn run_with_faults(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    faults: &FaultSpec,
) -> FaultReport {
    let messages: Vec<PartyMessage> = streams
        .streams
        .iter()
        .enumerate()
        .map(|(id, stream)| {
            let mut party = Party::new(id, config, master_seed);
            party.observe_stream(stream);
            party.finish()
        })
        .collect();

    let (report, referee) = collect_once(
        config,
        master_seed,
        &messages,
        faults.transport(),
        RetryPolicy::one_shot(),
    );

    let fates: Vec<MessageFate> = report
        .per_party
        .iter()
        .map(|p| {
            if p.acked_at.is_some() {
                MessageFate::Delivered
            } else if p.last_fate == Some(SendFate::Dropped) {
                MessageFate::Dropped
            } else {
                MessageFate::CorruptedRejected
            }
        })
        .collect();
    let delivered_streams = streams
        .streams
        .iter()
        .zip(&fates)
        .filter(|(_, &fate)| fate == MessageFate::Delivered)
        .map(|(s, _)| s.as_slice());

    let full_oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let received_oracle = StreamOracle::of_streams(delivered_streams);
    let estimate = referee.estimate_distinct().value;
    let full_truth = full_oracle.distinct();
    let received_truth = received_oracle.distinct();

    FaultReport {
        fates,
        telemetry: report.referee,
        channel: report.transport,
        estimate,
        full_truth,
        received_truth,
        error_vs_received: gt_core::relative_error(estimate, received_truth as f64),
        loss_shortfall: if full_truth == 0 {
            0.0
        } else {
            (full_truth - received_truth) as f64 / full_truth as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::collect_once;
    use crate::workload::{Distribution, WorkloadSpec};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            parties: 10,
            distinct_per_party: 3_000,
            overlap: 0.3,
            items_per_party: 9_000,
            distribution: Distribution::Uniform,
            seed: 0xFA17,
        }
    }

    fn config() -> SketchConfig {
        SketchConfig::new(0.1, 0.05).unwrap()
    }

    #[test]
    fn no_faults_is_the_clean_scenario() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            seed: 1,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        assert!(report.fates.iter().all(|&f| f == MessageFate::Delivered));
        assert_eq!(report.loss_shortfall, 0.0);
        assert_eq!(report.received_truth, report.full_truth);
        assert!(report.error_vs_received < 0.1);
    }

    #[test]
    fn drops_degrade_predictably() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.4,
            corrupt_probability: 0.0,
            seed: 2,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        let dropped = report
            .fates
            .iter()
            .filter(|&&f| f == MessageFate::Dropped)
            .count();
        assert!(dropped > 0, "seed should drop someone");
        // The estimate still honors the contract w.r.t. what arrived...
        assert!(
            report.error_vs_received < 0.1,
            "err {}",
            report.error_vs_received
        );
        // ...and the shortfall is real but bounded by the private shares.
        assert!(report.loss_shortfall > 0.0);
        assert!(report.received_truth < report.full_truth);
    }

    #[test]
    fn retries_beat_the_one_shot_channel() {
        // The operational claim the module docs used to hand-wave, now
        // measured: same drop probability, same seed, nonzero retry
        // budget -> strictly more of the union delivered.
        let streams = spec().generate();
        let config = config();
        let messages: Vec<PartyMessage> = streams
            .streams
            .iter()
            .enumerate()
            .map(|(id, s)| {
                let mut p = Party::new(id, &config, 7);
                p.observe_stream(s);
                p.finish()
            })
            .collect();
        let faults = FaultSpec {
            drop_probability: 0.5,
            corrupt_probability: 0.0,
            seed: 2,
        };
        let (one_shot, _) = collect_once(
            &config,
            7,
            &messages,
            faults.transport(),
            RetryPolicy::one_shot(),
        );
        let (retried, referee) = collect_once(
            &config,
            7,
            &messages,
            faults.transport(),
            RetryPolicy::with_budget(8),
        );
        assert!(
            one_shot.parties_acked() < retried.parties_acked(),
            "one-shot {} vs retried {}",
            one_shot.parties_acked(),
            retried.parties_acked()
        );
        assert_eq!(retried.parties_acked(), 10, "8 attempts at p=0.5");
        assert!(referee.estimate_distinct_partial(10).is_complete());
    }

    #[test]
    fn corruption_is_detected_not_absorbed() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.0,
            corrupt_probability: 1.0,
            seed: 3,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        let rejected = report
            .fates
            .iter()
            .filter(|&&f| f == MessageFate::CorruptedRejected)
            .count();
        // Almost every flip lands in validated content; a rare flip in the
        // items-observed varint is benign and delivered.
        assert!(rejected >= 8, "rejected only {rejected}/10");
        assert!(report.error_vs_received < 0.1);
    }

    #[test]
    fn all_messages_lost_yields_zero_estimate() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 1.0,
            corrupt_probability: 0.0,
            seed: 4,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        assert_eq!(report.estimate, 0.0);
        assert_eq!(report.received_truth, 0);
        assert_eq!(report.loss_shortfall, 1.0);
        assert_eq!(report.error_vs_received, 0.0);
        assert_eq!(report.fate_counts().dropped, 10);
    }

    #[test]
    fn fate_counts_come_from_their_authorities() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.3,
            corrupt_probability: 0.5,
            seed: 6,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        let counts = report.fate_counts();
        // Authority-derived counts must agree with the per-party fates
        // the channel recorded: accepts/rejects from the referee, drops
        // from the channel (not `fates.len() - attempts`, which
        // miscounts the moment a party is attempted more than once).
        let scan = |fate: MessageFate| report.fates.iter().filter(|&&f| f == fate).count();
        assert_eq!(counts.delivered, scan(MessageFate::Delivered));
        assert_eq!(counts.dropped, scan(MessageFate::Dropped));
        assert_eq!(counts.rejected, scan(MessageFate::CorruptedRejected));
        assert_eq!(
            counts.delivered + counts.dropped + counts.rejected,
            report.fates.len()
        );
        // Rejections were all detected at the sketch/codec layer.
        assert_eq!(report.telemetry.rejected(), counts.rejected);
    }

    #[test]
    fn fate_counts_stay_consistent_under_retries() {
        // The regression the channel-side drop count fixes: with a retry
        // budget, the referee records several attempts for one party; the
        // old `fates.len() - attempts()` derivation would underflow here.
        let streams = spec().generate();
        let config = config();
        let messages: Vec<PartyMessage> = streams
            .streams
            .iter()
            .enumerate()
            .map(|(id, s)| {
                let mut p = Party::new(id, &config, 7);
                p.observe_stream(s);
                p.finish()
            })
            .collect();
        let faults = FaultSpec {
            drop_probability: 0.4,
            corrupt_probability: 0.2,
            seed: 8,
        };
        let (report, referee) = collect_once(
            &config,
            7,
            &messages,
            faults.transport(),
            RetryPolicy {
                max_attempts: 6,
                ack_drop_probability: 0.3,
                ..RetryPolicy::one_shot()
            },
        );
        let t = referee.telemetry();
        // Channel-side conservation: every send was dropped or delivered.
        assert_eq!(
            report.transport.sends,
            report.transport.dropped + report.transport.delivered
        );
        // Referee-side conservation: every delivery is accounted once.
        assert_eq!(t.attempts(), report.transport.delivered);
        // And drops exceed what any referee-side derivation could see.
        assert!(report.transport.sends > messages.len());
    }

    #[test]
    fn empty_stream_party_survives_corruption() {
        // Regression: the corruption injector used `gen_range(4..len)`,
        // which panics when a message has nothing past the magic word.
        // An empty-stream party sends the smallest legitimate message;
        // force it through the corrupt path with every seed position.
        let streams = StreamSet {
            streams: vec![Vec::new(), (0..100).map(gt_hash::fold61).collect()],
            spec: WorkloadSpec {
                parties: 2,
                distinct_per_party: 100,
                overlap: 0.0,
                items_per_party: 100,
                distribution: Distribution::Uniform,
                seed: 0,
            },
        };
        for seed in 0..16 {
            let faults = FaultSpec {
                drop_probability: 0.0,
                corrupt_probability: 1.0,
                seed,
            };
            let report = run_with_faults(&config(), 7, &streams, &faults);
            assert_eq!(report.fates.len(), 2);
            // However the flips land, accounting must stay consistent.
            let counts = report.fate_counts();
            assert_eq!(counts.delivered + counts.rejected, 2);
        }
    }

    #[test]
    fn fault_decisions_are_deterministic_per_seed() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.3,
            corrupt_probability: 0.3,
            seed: 5,
        };
        let a = run_with_faults(&config(), 7, &streams, &faults);
        let b = run_with_faults(&config(), 7, &streams, &faults);
        assert_eq!(a.fates, b.fates);
        assert_eq!(a.estimate, b.estimate);
    }
}
