//! Fault injection: what the one-shot communication model does under
//! message loss and corruption.
//!
//! The paper's model sends each party's summary exactly once, so faults
//! have crisp semantics worth testing rather than hand-waving:
//!
//! * **Corruption** is *detected, never absorbed*: the codec validates
//!   magic, framing, and the sample invariant on decode, so a corrupted
//!   message is rejected and the referee's union simply excludes that
//!   party (equivalent to loss + an alarm).
//! * **Loss** degrades the answer *predictably*: the union over received
//!   parties is still a perfectly valid `(ε, δ)` estimate — of the
//!   *received* union. The shortfall against the full union is exactly
//!   the distinct labels private to the lost parties, which this module
//!   measures.
//!
//! This makes the operational story concrete: retry transport for lost
//! messages if you need the full union; the sketch layer never silently
//! lies about what it aggregated.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gt_core::SketchConfig;

use crate::oracle::StreamOracle;
use crate::party::{Party, PartyMessage};
use crate::referee::{Referee, RefereeTelemetry};
use crate::workload::StreamSet;

/// What happened to each party's single message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered intact and merged.
    Delivered,
    /// Dropped by the network; the referee never saw it.
    Dropped,
    /// Delivered with flipped bits; the referee detected and rejected it.
    CorruptedRejected,
}

/// Fault model for one scenario run.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Probability a party's message is dropped.
    pub drop_probability: f64,
    /// Probability a (non-dropped) message has a random byte corrupted.
    pub corrupt_probability: f64,
    /// RNG seed for fault decisions.
    pub seed: u64,
}

/// Aggregate message-fate counts. Delivered/rejected come straight from
/// the referee's own telemetry (it is the authority on what it accepted);
/// only the drop count is the channel's, since the referee never sees a
/// dropped message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FateCounts {
    /// Messages the referee accepted and merged.
    pub delivered: usize,
    /// Messages the channel dropped before the referee.
    pub dropped: usize,
    /// Messages the referee rejected as corrupt/invalid.
    pub rejected: usize,
}

/// Outcome of a faulty scenario.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// Per-party fates.
    pub fates: Vec<MessageFate>,
    /// The referee's own per-stage accounting (decode failures by reason,
    /// phase timings).
    pub telemetry: RefereeTelemetry,
    /// The referee's estimate over the messages it accepted.
    pub estimate: f64,
    /// Exact distinct count of the union of **all** streams.
    pub full_truth: u64,
    /// Exact distinct count of the union of the **delivered** streams.
    pub received_truth: u64,
    /// Relative error of the estimate against `received_truth` — this is
    /// the quantity the `(ε, δ)` contract still covers under faults.
    pub error_vs_received: f64,
    /// Relative shortfall of `received_truth` against `full_truth` — the
    /// irreducible information lost with the dropped/corrupt parties.
    pub loss_shortfall: f64,
}

impl FaultReport {
    /// Fate counts derived from the referee telemetry (not by re-scanning
    /// [`FaultReport::fates`]): the referee reports what it accepted and
    /// rejected; the remainder never reached it.
    pub fn fate_counts(&self) -> FateCounts {
        FateCounts {
            delivered: self.telemetry.accepted,
            dropped: self.fates.len() - self.telemetry.attempts(),
            rejected: self.telemetry.rejected(),
        }
    }
}

/// Run a scenario where each party's single message passes through a
/// lossy, corrupting channel. Corrupted messages must be *rejected* by
/// the referee (this is asserted — silent absorption would be a codec
/// bug).
pub fn run_with_faults(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    faults: &FaultSpec,
) -> FaultReport {
    let mut rng = SmallRng::seed_from_u64(faults.seed);
    let mut referee = Referee::new(config, master_seed);
    let mut fates = Vec::with_capacity(streams.streams.len());
    let mut delivered_streams: Vec<&[u64]> = Vec::new();

    for (id, stream) in streams.streams.iter().enumerate() {
        let mut party = Party::new(id, config, master_seed);
        party.observe_stream(stream);
        let mut msg: PartyMessage = party.finish();

        if rng.gen_bool(faults.drop_probability.clamp(0.0, 1.0)) {
            fates.push(MessageFate::Dropped);
            continue;
        }
        if rng.gen_bool(faults.corrupt_probability.clamp(0.0, 1.0)) {
            let mut raw = msg.payload.to_vec();
            // Flip a random byte somewhere after the magic word. Messages
            // with no content past the magic corrupt their last byte
            // instead (`gen_range(4..len)` would panic on them), and an
            // empty payload has nothing to flip, so it falls through to
            // plain delivery.
            let idx = if raw.len() > 4 {
                Some(rng.gen_range(4..raw.len()))
            } else {
                raw.len().checked_sub(1)
            };
            if let Some(idx) = idx {
                raw[idx] ^= 1u8 << rng.gen_range(0u32..8);
                msg.payload = bytes::Bytes::from(raw);
                match referee.receive(&msg) {
                    Err(_) => {
                        fates.push(MessageFate::CorruptedRejected);
                        continue;
                    }
                    Ok(()) => {
                        // The flipped bit can land in a don't-care position
                        // (e.g. the items-observed diagnostic) and decode to a
                        // STILL-VALID sketch; the referee merging it is
                        // correct behaviour, not absorption of bad data.
                        fates.push(MessageFate::Delivered);
                        delivered_streams.push(stream);
                        continue;
                    }
                }
            }
        }
        referee
            .receive(&msg)
            .expect("intact coordinated message must decode");
        fates.push(MessageFate::Delivered);
        delivered_streams.push(stream);
    }

    let full_oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let received_oracle = StreamOracle::of_streams(delivered_streams.iter().copied());
    let estimate = referee.estimate_distinct().value;
    let full_truth = full_oracle.distinct();
    let received_truth = received_oracle.distinct();

    FaultReport {
        fates,
        telemetry: *referee.telemetry(),
        estimate,
        full_truth,
        received_truth,
        error_vs_received: gt_core::relative_error(estimate, received_truth as f64),
        loss_shortfall: if full_truth == 0 {
            0.0
        } else {
            (full_truth - received_truth) as f64 / full_truth as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Distribution, WorkloadSpec};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            parties: 10,
            distinct_per_party: 3_000,
            overlap: 0.3,
            items_per_party: 9_000,
            distribution: Distribution::Uniform,
            seed: 0xFA17,
        }
    }

    fn config() -> SketchConfig {
        SketchConfig::new(0.1, 0.05).unwrap()
    }

    #[test]
    fn no_faults_is_the_clean_scenario() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            seed: 1,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        assert!(report.fates.iter().all(|&f| f == MessageFate::Delivered));
        assert_eq!(report.loss_shortfall, 0.0);
        assert_eq!(report.received_truth, report.full_truth);
        assert!(report.error_vs_received < 0.1);
    }

    #[test]
    fn drops_degrade_predictably() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.4,
            corrupt_probability: 0.0,
            seed: 2,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        let dropped = report
            .fates
            .iter()
            .filter(|&&f| f == MessageFate::Dropped)
            .count();
        assert!(dropped > 0, "seed should drop someone");
        // The estimate still honors the contract w.r.t. what arrived...
        assert!(
            report.error_vs_received < 0.1,
            "err {}",
            report.error_vs_received
        );
        // ...and the shortfall is real but bounded by the private shares.
        assert!(report.loss_shortfall > 0.0);
        assert!(report.received_truth < report.full_truth);
    }

    #[test]
    fn corruption_is_detected_not_absorbed() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.0,
            corrupt_probability: 1.0,
            seed: 3,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        let rejected = report
            .fates
            .iter()
            .filter(|&&f| f == MessageFate::CorruptedRejected)
            .count();
        // Almost every flip lands in validated content; a rare flip in the
        // items-observed varint is benign and delivered.
        assert!(rejected >= 8, "rejected only {rejected}/10");
        assert!(report.error_vs_received < 0.1);
    }

    #[test]
    fn all_messages_lost_yields_zero_estimate() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 1.0,
            corrupt_probability: 0.0,
            seed: 4,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        assert_eq!(report.estimate, 0.0);
        assert_eq!(report.received_truth, 0);
        assert_eq!(report.loss_shortfall, 1.0);
        assert_eq!(report.error_vs_received, 0.0);
    }

    #[test]
    fn fate_counts_come_from_referee_telemetry() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.3,
            corrupt_probability: 0.5,
            seed: 6,
        };
        let report = run_with_faults(&config(), 7, &streams, &faults);
        let counts = report.fate_counts();
        // Telemetry-derived counts must agree with the per-party fates the
        // channel recorded.
        let scan = |fate: MessageFate| report.fates.iter().filter(|&&f| f == fate).count();
        assert_eq!(counts.delivered, scan(MessageFate::Delivered));
        assert_eq!(counts.dropped, scan(MessageFate::Dropped));
        assert_eq!(counts.rejected, scan(MessageFate::CorruptedRejected));
        assert_eq!(
            counts.delivered + counts.dropped + counts.rejected,
            report.fates.len()
        );
        // Rejections were all detected at the sketch/codec layer.
        assert_eq!(report.telemetry.rejected(), counts.rejected);
    }

    #[test]
    fn empty_stream_party_survives_corruption() {
        // Regression: the corruption injector used `gen_range(4..len)`,
        // which panics when a message has nothing past the magic word.
        // An empty-stream party sends the smallest legitimate message;
        // force it through the corrupt path with every seed position.
        let streams = StreamSet {
            streams: vec![Vec::new(), (0..100).map(gt_hash::fold61).collect()],
            spec: WorkloadSpec {
                parties: 2,
                distinct_per_party: 100,
                overlap: 0.0,
                items_per_party: 100,
                distribution: Distribution::Uniform,
                seed: 0,
            },
        };
        for seed in 0..16 {
            let faults = FaultSpec {
                drop_probability: 0.0,
                corrupt_probability: 1.0,
                seed,
            };
            let report = run_with_faults(&config(), 7, &streams, &faults);
            assert_eq!(report.fates.len(), 2);
            // However the flips land, accounting must stay consistent.
            let counts = report.fate_counts();
            assert_eq!(counts.delivered + counts.rejected, 2);
        }
    }

    #[test]
    fn fault_decisions_are_deterministic_per_seed() {
        let streams = spec().generate();
        let faults = FaultSpec {
            drop_probability: 0.3,
            corrupt_probability: 0.3,
            seed: 5,
        };
        let a = run_with_faults(&config(), 7, &streams, &faults);
        let b = run_with_faults(&config(), 7, &streams, &faults);
        assert_eq!(a.fates, b.fates);
        assert_eq!(a.estimate, b.estimate);
    }
}
