//! Synthetic flow-record workload — the paper's motivating domain, in
//! enough detail for realistic examples and experiments.
//!
//! "Current network monitoring products" (the abstract's deployment) see
//! NetFlow-style records: 5-tuples with byte counts, where a *flow* may
//! cross several monitored links and each link sees many packets per
//! flow. This module synthesizes such traffic with the knobs that matter
//! to distinct-flow estimation — how many flows exist, how they are
//! shared across monitors, and how skewed packet counts are — while
//! keeping exact ground truth computable (the substitution for real
//! traces documented in DESIGN.md §6).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::workload::ZipfSampler;

/// One observed flow record (a packet sample attributed to a flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FlowRecord {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
    /// Bytes in this record.
    pub bytes: u32,
}

impl FlowRecord {
    /// The flow's sketch label: a deterministic fold of the 5-tuple into
    /// the `[0, 2^61 − 1)` universe. Distinct 5-tuples collide with
    /// probability ≈ 2⁻⁶¹ per pair (birthday-bounded; same arrangement as
    /// pre-hashing keys in production sketch libraries).
    pub fn label(&self) -> u64 {
        let w1 = ((self.src_ip as u64) << 32) | self.dst_ip as u64;
        let w2 =
            ((self.src_port as u64) << 32) | ((self.dst_port as u64) << 16) | self.protocol as u64;
        gt_hash::fold61(gt_hash::mix64(w1) ^ gt_hash::mix64(w2 ^ 0x5EED_F10E))
    }
}

/// Parameters of a synthetic multi-monitor flow workload.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct FlowWorkload {
    /// Number of link monitors.
    pub monitors: usize,
    /// Flows visible on each link.
    pub flows_per_monitor: u64,
    /// Fraction of each link's flows that transit **every** link
    /// (backbone traffic), in `[0, 1]`.
    pub transit_fraction: f64,
    /// Records (packet samples) each monitor observes.
    pub records_per_monitor: u64,
    /// Zipf exponent of flow popularity (elephants and mice); 0 = uniform.
    pub skew: f64,
    /// Workload seed.
    pub seed: u64,
}

impl FlowWorkload {
    /// A typical backbone-ish default: 8 monitors, 50k flows each, 20%
    /// transit, 400k records, heavy-tailed flow sizes.
    pub fn example() -> Self {
        FlowWorkload {
            monitors: 8,
            flows_per_monitor: 50_000,
            transit_fraction: 0.2,
            records_per_monitor: 400_000,
            skew: 1.1,
            seed: 0xF10E,
        }
    }

    /// Exact number of distinct flows across all monitors.
    pub fn true_distinct_flows(&self) -> u64 {
        let transit =
            (self.transit_fraction.clamp(0.0, 1.0) * self.flows_per_monitor as f64).round() as u64;
        let local = self.flows_per_monitor - transit;
        transit + local * self.monitors as u64
    }

    /// The flow table (5-tuples) visible to monitor `m`. Index `< transit
    /// count` ⇒ a backbone flow shared by every monitor.
    fn flow_of(&self, monitor: usize, index: u64) -> FlowRecord {
        let transit =
            (self.transit_fraction.clamp(0.0, 1.0) * self.flows_per_monitor as f64).round() as u64;
        // Domain-separate: block 0 = transit flows, block m+1 = local.
        let block = if index < transit {
            0u64
        } else {
            monitor as u64 + 1
        };
        let id = gt_hash::mix64(self.seed ^ (block << 40) ^ index);
        // Derive plausible-looking header fields from the id.
        FlowRecord {
            src_ip: (id >> 32) as u32,
            dst_ip: id as u32,
            src_port: 1024 + ((id >> 17) % 60_000) as u16,
            dst_port: [80u16, 443, 53, 8080, 22][(id % 5) as usize],
            protocol: if id % 10 < 7 { 6 } else { 17 },
            bytes: 0, // filled per record
        }
    }

    /// Generate monitor `m`'s record stream.
    pub fn monitor_stream(&self, monitor: usize) -> Vec<FlowRecord> {
        assert!(monitor < self.monitors, "monitor index out of range");
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ gt_hash::mix64(0xF10E_0000 + monitor as u64));
        let zipf = (self.skew > 0.0).then(|| ZipfSampler::new(self.flows_per_monitor, self.skew));
        (0..self.records_per_monitor)
            .map(|_| {
                let index = match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..self.flows_per_monitor),
                };
                let mut rec = self.flow_of(monitor, index);
                rec.bytes = 40 + rng.gen_range(0..1460u32);
                rec
            })
            .collect()
    }

    /// All monitors' record streams.
    pub fn generate(&self) -> Vec<Vec<FlowRecord>> {
        (0..self.monitors).map(|m| self.monitor_stream(m)).collect()
    }

    /// All monitors' streams reduced to sketch labels.
    pub fn label_streams(&self) -> crate::workload::StreamSet {
        let streams = self
            .generate()
            .into_iter()
            .map(|recs| recs.iter().map(FlowRecord::label).collect())
            .collect();
        // Wrap in a StreamSet so the scenario runner accepts it; the spec
        // recorded is a synthetic equivalent (distinct structure only).
        crate::workload::StreamSet {
            streams,
            spec: crate::workload::WorkloadSpec {
                parties: self.monitors,
                distinct_per_party: self.flows_per_monitor,
                overlap: self.transit_fraction,
                items_per_party: self.records_per_monitor,
                distribution: if self.skew > 0.0 {
                    crate::workload::Distribution::Zipf(self.skew)
                } else {
                    crate::workload::Distribution::Uniform
                },
                seed: self.seed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> FlowWorkload {
        FlowWorkload {
            monitors: 4,
            flows_per_monitor: 2_000,
            transit_fraction: 0.25,
            records_per_monitor: 10_000,
            skew: 1.0,
            seed: 42,
        }
    }

    #[test]
    fn labels_are_distinct_per_five_tuple() {
        let w = small();
        let mut labels = HashSet::new();
        let mut tuples = HashSet::new();
        for m in 0..w.monitors {
            for i in 0..w.flows_per_monitor {
                let f = w.flow_of(m, i);
                let key = (f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.protocol);
                if tuples.insert(key) {
                    assert!(labels.insert(f.label()), "label collision for {key:?}");
                }
            }
        }
    }

    #[test]
    fn transit_flows_are_shared_local_flows_are_not() {
        let w = small();
        let transit = (0.25 * 2_000f64) as u64;
        for m in 1..w.monitors {
            for i in 0..transit {
                assert_eq!(
                    w.flow_of(0, i).label(),
                    w.flow_of(m, i).label(),
                    "transit flow {i}"
                );
            }
            assert_ne!(w.flow_of(0, transit).label(), w.flow_of(m, transit).label());
        }
    }

    #[test]
    fn ground_truth_matches_brute_force() {
        let w = small();
        let mut all = HashSet::new();
        for m in 0..w.monitors {
            for i in 0..w.flows_per_monitor {
                all.insert(w.flow_of(m, i).label());
            }
        }
        assert_eq!(all.len() as u64, w.true_distinct_flows());
    }

    #[test]
    fn streams_are_deterministic_and_in_table() {
        let w = small();
        assert_eq!(w.monitor_stream(1), w.monitor_stream(1));
        let table: HashSet<u64> = (0..w.flows_per_monitor)
            .map(|i| w.flow_of(2, i).label())
            .collect();
        for rec in w.monitor_stream(2) {
            assert!(table.contains(&rec.label()));
            assert!(rec.bytes >= 40);
        }
    }

    #[test]
    fn skew_produces_elephants() {
        let w = small();
        let stream = w.monitor_stream(0);
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in &stream {
            *counts.entry(r.label()).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let mean = stream.len() as f64 / counts.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn label_streams_glue_works_with_runner() {
        let w = small();
        let set = w.label_streams();
        assert_eq!(set.streams.len(), 4);
        let config = gt_core::SketchConfig::new(0.1, 0.05).unwrap();
        let report = crate::runner::run_scenario(&config, 7, &set);
        let rel = (report.estimate - report.truth as f64).abs() / report.truth as f64;
        assert!(rel < 0.1, "est {} truth {}", report.estimate, report.truth);
        // Truth from the runner's oracle must be ≤ the table size (not
        // every flow need be touched).
        assert!(report.truth <= w.true_distinct_flows());
    }
}
