//! Hierarchical (tree) aggregation of party messages.
//!
//! The paper's referee is a single hop, but nothing about coordinated
//! sampling requires that: because the union of sketches is itself a
//! valid sketch, parties can be aggregated through any tree of
//! intermediate collectors — regional referees merging their children and
//! forwarding one re-encoded message upward. The final estimate is
//! **identical** to the flat single-referee answer (tested, not assumed),
//! and per-link traffic stays one-sketch-sized at every tier, which is
//! what makes the scheme deployable across monitoring domains and, later,
//! sensor networks (cf. the authors' follow-up work on duplicate-
//! insensitive sensor aggregation).

use gt_core::{DistinctSketch, Estimate, SketchConfig};

use crate::codec::{decode_sketch, encode_sketch, CodecError};
use crate::party::PartyMessage;

/// Result of a tree aggregation.
#[derive(Clone, Debug)]
pub struct HierarchicalReport {
    /// The root's estimate of the union's distinct count.
    pub estimate: Estimate,
    /// Tree depth (number of merge tiers above the parties).
    pub tiers: usize,
    /// Bytes forwarded at each tier (tier 0 = party messages).
    pub bytes_per_tier: Vec<usize>,
    /// Messages at each tier.
    pub messages_per_tier: Vec<usize>,
    /// Canonical encoded bytes of the root union — bitwise identical to
    /// the flat single-referee union of the same messages.
    pub root_canonical: bytes::Bytes,
}

/// Aggregate party messages through a tree with the given fan-out.
///
/// ```
/// use gt_core::SketchConfig;
/// use gt_streams::{aggregate_tree, Party};
/// let cfg = SketchConfig::new(0.1, 0.1).unwrap();
/// let messages: Vec<_> = (0..9)
///     .map(|id| {
///         let mut p = Party::new(id, &cfg, 7);
///         p.observe_stream(&[id as u64 * 100, id as u64 * 100 + 1]);
///         p.finish()
///     })
///     .collect();
/// let report = aggregate_tree(&cfg, 7, messages, 3).unwrap();
/// assert_eq!(report.estimate.value, 18.0); // 9 parties x 2 distinct labels
/// assert_eq!(report.messages_per_tier, vec![9, 3, 1]);
/// ```
///
/// Tier 0 holds the party messages; each tier groups `fanout` messages,
/// decodes + merges them, and re-encodes one message upward, until a
/// single message remains. The root decodes it and estimates.
///
/// # Errors
/// Propagates decode/merge failures (corrupt or uncoordinated messages).
///
/// # Panics
/// Panics on an empty message list or `fanout < 2`.
pub fn aggregate_tree(
    config: &SketchConfig,
    master_seed: u64,
    messages: Vec<PartyMessage>,
    fanout: usize,
) -> Result<HierarchicalReport, CodecError> {
    assert!(!messages.is_empty(), "need at least one party message");
    assert!(fanout >= 2, "fanout must be at least 2");

    let mut bytes_per_tier = vec![messages.iter().map(|m| m.bytes()).sum::<usize>()];
    let mut messages_per_tier = vec![messages.len()];
    let mut tier: Vec<bytes::Bytes> = messages.into_iter().map(|m| m.payload).collect();
    let mut tiers = 0usize;

    while tier.len() > 1 {
        tiers += 1;
        let mut next = Vec::with_capacity(tier.len().div_ceil(fanout));
        for group in tier.chunks(fanout) {
            let mut acc = DistinctSketch::new(config, master_seed);
            for payload in group {
                let sketch: DistinctSketch = decode_sketch(payload.clone())?;
                acc.merge_from(&sketch)?;
            }
            next.push(encode_sketch(&acc));
        }
        bytes_per_tier.push(next.iter().map(|b| b.len()).sum());
        messages_per_tier.push(next.len());
        tier = next;
    }

    let root_canonical = tier.pop().expect("one message remains");
    let root: DistinctSketch = decode_sketch(root_canonical.clone())?;
    Ok(HierarchicalReport {
        estimate: root.estimate_distinct(),
        tiers,
        bytes_per_tier,
        messages_per_tier,
        root_canonical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::Party;
    use crate::referee::Referee;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.05).unwrap()
    }

    fn messages(parties: usize, per_party: u64, seed: u64) -> Vec<PartyMessage> {
        (0..parties)
            .map(|p| {
                let mut party = Party::new(p, &cfg(), seed);
                let stream: Vec<u64> = (0..per_party)
                    .map(|i| gt_hash::fold61(i + (p as u64) * per_party / 2))
                    .collect();
                party.observe_stream(&stream);
                party.finish()
            })
            .collect()
    }

    #[test]
    fn tree_estimate_equals_flat_referee() {
        let msgs = messages(16, 8_000, 3);
        let mut flat = Referee::new(&cfg(), 3);
        for m in &msgs {
            flat.receive(m).unwrap();
        }
        for fanout in [2usize, 3, 4, 16] {
            let report = aggregate_tree(&cfg(), 3, msgs.clone(), fanout).unwrap();
            assert_eq!(
                report.estimate.value,
                flat.estimate_distinct().value,
                "fanout {fanout}"
            );
        }
    }

    #[test]
    fn tier_structure_matches_fanout() {
        let msgs = messages(16, 1_000, 4);
        let report = aggregate_tree(&cfg(), 4, msgs, 4).unwrap();
        assert_eq!(report.tiers, 2); // 16 -> 4 -> 1
        assert_eq!(report.messages_per_tier, vec![16, 4, 1]);
        assert_eq!(report.bytes_per_tier.len(), 3);
    }

    #[test]
    fn per_tier_bytes_shrink_with_message_count() {
        let msgs = messages(32, 5_000, 5);
        let report = aggregate_tree(&cfg(), 5, msgs, 2).unwrap();
        // Each tier halves the message count; total bytes per tier must
        // not grow (a merged sketch is at most one sketch big per message).
        for w in report.bytes_per_tier.windows(2) {
            assert!(w[1] <= w[0] + 64, "{:?}", report.bytes_per_tier);
        }
    }

    #[test]
    fn single_party_tree_is_identity() {
        let msgs = messages(1, 500, 6);
        let report = aggregate_tree(&cfg(), 6, msgs, 2).unwrap();
        assert_eq!(report.tiers, 0);
        assert_eq!(report.estimate.value, 500.0);
    }

    #[test]
    fn foreign_seed_rejected_at_any_tier() {
        let mut msgs = messages(4, 500, 7);
        let mut foreign = Party::new(9, &cfg(), 999);
        foreign.observe_stream(&[1, 2, 3]);
        msgs.push(foreign.finish());
        assert!(aggregate_tree(&cfg(), 7, msgs, 2).is_err());
    }
}
