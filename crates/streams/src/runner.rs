//! Multi-threaded scenario runner: the full distributed-streams pipeline
//! end to end.
//!
//! One OS thread per party observes its stream and sends its single
//! end-of-stream [`PartyMessage`] over a crossbeam channel; the referee
//! (on the caller's thread) decodes and merges messages **while the
//! remaining parties are still observing**, so referee work is pipelined
//! with the observation phase instead of serialized after it. Ground
//! truth is computed by the oracle, and everything an experiment needs
//! lands in one [`ScenarioReport`].

use std::time::{Duration, Instant};

use gt_core::SketchConfig;

use crate::oracle::StreamOracle;
use crate::party::{Party, PartyMessage};
use crate::referee::{Referee, RefereeTelemetry};
use crate::workload::StreamSet;

/// One party's own phase timings, measured on its thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartyPhases {
    /// Time feeding the stream into the sketch.
    pub observe: Duration,
    /// Time encoding the end-of-stream message.
    pub encode: Duration,
}

/// Everything measured in one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The sketch estimate of the union's distinct count.
    pub estimate: f64,
    /// Exact distinct count of the union.
    pub truth: u64,
    /// `|estimate − truth| / truth` (0 when both are 0).
    pub relative_error: f64,
    /// Number of parties.
    pub parties: usize,
    /// Total items across streams.
    pub total_items: u64,
    /// Bytes each party transmitted.
    pub bytes_per_party: Vec<usize>,
    /// Total communication (referee bytes received).
    pub total_bytes: usize,
    /// Per-party observe/encode timings (index = party id) — what each
    /// party actually spent, as opposed to the wall clock of the phase.
    pub party_phases: Vec<PartyPhases>,
    /// Wall time of the pipelined observe-and-merge phase (slowest party
    /// plus thread overhead plus any referee work trailing the last
    /// message).
    pub observe_wall: Duration,
    /// Referee telemetry: decode outcomes and decode/merge phase timings.
    pub referee_telemetry: RefereeTelemetry,
    /// Observability counters of the referee's union sketch.
    pub union_metrics: gt_core::MetricsSnapshot,
    /// Referee busy time: accumulated decode + union across messages plus
    /// the final estimate. Overlaps `observe_wall` (the referee merges
    /// while parties still observe), so it is not additive with it.
    pub referee_time: Duration,
}

impl ScenarioReport {
    /// Items per second across all parties during observation.
    pub fn throughput(&self) -> f64 {
        let secs = self.observe_wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.total_items as f64 / secs
        }
    }

    /// The slowest party's observe time (the critical path of the
    /// observation phase, net of thread-spawn overhead).
    pub fn max_party_observe(&self) -> Duration {
        self.party_phases
            .iter()
            .map(|p| p.observe)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total time parties spent encoding messages.
    pub fn total_encode(&self) -> Duration {
        self.party_phases.iter().map(|p| p.encode).sum()
    }
}

/// Run a full scenario: parties on threads, referee on this thread.
///
/// ```
/// use gt_core::SketchConfig;
/// use gt_streams::{run_scenario, Distribution, WorkloadSpec};
/// let spec = WorkloadSpec {
///     parties: 4,
///     distinct_per_party: 2_000,
///     overlap: 0.5,
///     items_per_party: 6_000,
///     distribution: Distribution::Uniform,
///     seed: 1,
/// };
/// let config = SketchConfig::new(0.1, 0.05).unwrap();
/// let report = run_scenario(&config, 99, &spec.generate());
/// assert!(report.relative_error < 0.1);
/// assert_eq!(report.bytes_per_party.len(), 4);
/// ```
///
/// # Panics
/// Panics if a party thread panics or the referee rejects a message
/// (both indicate bugs — the runner wires coordination correctly).
pub fn run_scenario(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
) -> ScenarioReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    let observe_start = Instant::now();
    let (tx, rx) = crossbeam::channel::unbounded::<(PartyMessage, PartyPhases)>();
    let mut referee = Referee::new(config, master_seed);
    let mut bytes_per_party = vec![0usize; t];
    let mut party_phases = vec![PartyPhases::default(); t];
    let mut referee_busy = Duration::ZERO;
    crossbeam::scope(|scope| {
        for (id, stream) in streams.streams.iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut party = Party::new(id, config, master_seed);
                let observe_start = Instant::now();
                party.observe_stream(stream);
                let observe = observe_start.elapsed();
                let encode_start = Instant::now();
                let msg = party.finish();
                let encode = encode_start.elapsed();
                tx.send((msg, PartyPhases { observe, encode }))
                    .expect("referee hung up");
            });
        }
        drop(tx);
        // Referee loop, pipelined: runs on this thread while party
        // threads are still observing; exits when every sender is done.
        while let Ok((msg, phases)) = rx.recv() {
            let busy_start = Instant::now();
            bytes_per_party[msg.party_id] = msg.bytes();
            party_phases[msg.party_id] = phases;
            referee
                .receive(&msg)
                .expect("coordinated message must decode");
            referee_busy += busy_start.elapsed();
        }
    })
    .expect("party thread panicked");
    let observe_wall = observe_start.elapsed();

    let estimate_start = Instant::now();
    let estimate = referee.estimate_distinct().value;
    let referee_time = referee_busy + estimate_start.elapsed();

    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct();
    let relative_error = gt_core::relative_error(estimate, truth as f64);

    ScenarioReport {
        estimate,
        truth,
        relative_error,
        parties: t,
        total_items: streams.total_items(),
        total_bytes: bytes_per_party.iter().sum(),
        bytes_per_party,
        party_phases,
        observe_wall,
        referee_telemetry: *referee.telemetry(),
        union_metrics: referee.union_metrics(),
        referee_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Distribution, WorkloadSpec};

    #[test]
    fn end_to_end_scenario_is_accurate() {
        let spec = WorkloadSpec {
            parties: 6,
            distinct_per_party: 5_000,
            overlap: 0.5,
            items_per_party: 25_000,
            distribution: Distribution::Uniform,
            seed: 11,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();
        let report = run_scenario(&config, 77, &streams);
        assert_eq!(report.parties, 6);
        assert_eq!(report.total_items, 6 * 25_000);
        assert!(report.relative_error < 0.1, "err {}", report.relative_error);
        assert_eq!(report.bytes_per_party.len(), 6);
        assert!(report.bytes_per_party.iter().all(|&b| b > 0));
        assert_eq!(
            report.total_bytes,
            report.bytes_per_party.iter().sum::<usize>()
        );
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn report_carries_phase_timings_and_telemetry() {
        let spec = WorkloadSpec {
            parties: 4,
            distinct_per_party: 3_000,
            overlap: 0.4,
            items_per_party: 10_000,
            distribution: Distribution::Uniform,
            seed: 14,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let report = run_scenario(&config, 21, &streams);
        // Per-party phases were populated for every party.
        assert_eq!(report.party_phases.len(), 4);
        assert!(report.max_party_observe() > Duration::ZERO);
        assert!(report.max_party_observe() <= report.observe_wall);
        assert!(report.total_encode() > Duration::ZERO);
        // Referee telemetry accounts for every message, by stage.
        let t = report.referee_telemetry;
        assert_eq!(t.accepted, 4);
        assert_eq!(t.rejected(), 0);
        assert!(t.decode_time > Duration::ZERO);
        assert!(t.merge_time > Duration::ZERO);
        assert!(t.decode_time + t.merge_time <= report.referee_time);
        // Union sketch counters saw all four merges.
        assert_eq!(report.union_metrics.merge_calls, 4);
        assert!(report.union_metrics.merge_entries_absorbed > 0);
    }

    #[test]
    fn single_party_scenario() {
        let spec = WorkloadSpec {
            parties: 1,
            distinct_per_party: 1_000,
            overlap: 0.0,
            items_per_party: 2_000,
            distribution: Distribution::Uniform,
            seed: 12,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let report = run_scenario(&config, 5, &streams);
        assert_eq!(report.relative_error, 0.0); // under capacity → exact
        assert_eq!(report.estimate, report.truth as f64);
    }

    #[test]
    fn identical_streams_cost_no_extra_accuracy() {
        // overlap = 1: every party sees the same universe; the union
        // estimate must match a single party's estimate.
        let spec = WorkloadSpec {
            parties: 8,
            distinct_per_party: 30_000,
            overlap: 1.0,
            items_per_party: 30_000,
            distribution: Distribution::Uniform,
            seed: 13,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();
        let report = run_scenario(&config, 6, &streams);
        assert!(report.relative_error < 0.1, "err {}", report.relative_error);
        assert!(report.truth <= 30_000);
    }
}
