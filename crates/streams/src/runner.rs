//! Legacy scenario entry points and their report types.
//!
//! The four `run_*_scenario` functions below are the crate's original
//! end-to-end drivers. Since the scenario harness landed they are thin
//! wrappers: each builds a [`crate::scenario::ScenarioSpec`] via the
//! builder and dispatches through [`crate::scenario::run_spec_on`],
//! which routes to the same engine code (moved verbatim into
//! [`crate::scenario`]). `tests/scenario_regression.rs` pins each
//! wrapper bitwise (canonical referee wire bytes + key report fields)
//! to its pre-refactor behavior.

use std::time::Duration;

use gt_core::SketchConfig;

use crate::collector::{CollectionReport, RetryPolicy};
use crate::referee::{PartialEstimate, RefereeTelemetry};
use crate::scenario::{IngestMode, ScenarioOutcome, ScenarioSpec};
use crate::transport::TransportSpec;
use crate::workload::StreamSet;

/// One party's own phase timings, measured on its thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartyPhases {
    /// Time feeding the stream into the sketch.
    pub observe: Duration,
    /// Time encoding the end-of-stream message.
    pub encode: Duration,
}

/// Everything measured in one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The sketch estimate of the union's distinct count.
    pub estimate: f64,
    /// Exact distinct count of the union.
    pub truth: u64,
    /// `|estimate − truth| / truth` (0 when both are 0).
    pub relative_error: f64,
    /// Number of parties.
    pub parties: usize,
    /// Total items across streams.
    pub total_items: u64,
    /// Bytes each party transmitted.
    pub bytes_per_party: Vec<usize>,
    /// Total communication (referee bytes received).
    pub total_bytes: usize,
    /// Per-party observe/encode timings (index = party id) — what each
    /// party actually spent, as opposed to the wall clock of the phase.
    pub party_phases: Vec<PartyPhases>,
    /// Wall time of the pipelined observe-and-merge phase (slowest party
    /// plus thread overhead plus any referee work trailing the last
    /// message).
    pub observe_wall: Duration,
    /// Referee telemetry: decode outcomes and decode/merge phase timings.
    pub referee_telemetry: RefereeTelemetry,
    /// Observability counters of the referee's union sketch.
    pub union_metrics: gt_core::MetricsSnapshot,
    /// Referee busy time: accumulated decode + union across messages plus
    /// the final estimate. Overlaps `observe_wall` (the referee merges
    /// while parties still observe), so it is not additive with it.
    pub referee_time: Duration,
}

impl ScenarioReport {
    /// Items per second across all parties during observation.
    pub fn throughput(&self) -> f64 {
        let secs = self.observe_wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.total_items as f64 / secs
        }
    }

    /// The slowest party's observe time (the critical path of the
    /// observation phase, net of thread-spawn overhead).
    pub fn max_party_observe(&self) -> Duration {
        self.party_phases
            .iter()
            .map(|p| p.observe)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total time parties spent encoding messages.
    pub fn total_encode(&self) -> Duration {
        self.party_phases.iter().map(|p| p.encode).sum()
    }
}

/// The builder instance behind [`run_scenario`].
fn classic_spec(streams: &StreamSet) -> ScenarioSpec {
    ScenarioSpec::builder("classic")
        .from_workload(&streams.spec)
        .ingest(IngestMode::PerPartyThreads)
        .build()
}

/// Run a full scenario: parties on threads, referee on this thread.
///
/// ```
/// use gt_core::SketchConfig;
/// use gt_streams::{run_scenario, Distribution, WorkloadSpec};
/// let spec = WorkloadSpec {
///     parties: 4,
///     distinct_per_party: 2_000,
///     overlap: 0.5,
///     items_per_party: 6_000,
///     distribution: Distribution::Uniform,
///     seed: 1,
/// };
/// let config = SketchConfig::new(0.1, 0.05).unwrap();
/// let report = run_scenario(&config, 99, &spec.generate());
/// assert!(report.relative_error < 0.1);
/// assert_eq!(report.bytes_per_party.len(), 4);
/// ```
///
/// # Panics
/// Panics if a party thread panics or the referee rejects a message
/// (both indicate bugs — the runner wires coordination correctly).
pub fn run_scenario(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
) -> ScenarioReport {
    let spec = classic_spec(streams);
    match crate::scenario::run_spec_on(config, master_seed, &spec, Some(streams)) {
        ScenarioOutcome::Classic(report) => report,
        other => unreachable!("classic spec dispatched to {other:?}"),
    }
}

/// Everything measured in one **resilient** scenario run: parties behind
/// a faulty channel, a retrying collector, and degraded-mode coverage.
#[derive(Clone, Debug)]
pub struct ResilientReport {
    /// The collection plane's accounting: attempts, retransmits,
    /// duplicates, time-to-full-union, channel and referee telemetry.
    pub collection: CollectionReport,
    /// The degraded-mode answer: estimate plus coverage. When
    /// [`PartialEstimate::is_complete`] the `(ε, δ)` contract covers the
    /// full union; otherwise it covers the received union only.
    pub partial: PartialEstimate,
    /// Exact distinct count of the union of **all** streams.
    pub full_truth: u64,
    /// Exact distinct count of the union of the streams whose party was
    /// heard.
    pub received_truth: u64,
    /// Relative error of the estimate against `received_truth` — the
    /// quantity the `(ε, δ)` contract covers under faults.
    pub error_vs_received: f64,
}

impl ResilientReport {
    /// Fraction of the full union's distinct labels actually delivered —
    /// the quantity experiment `e17` sweeps against drop probability and
    /// retry budget.
    pub fn union_completeness(&self) -> f64 {
        if self.full_truth == 0 {
            1.0
        } else {
            self.received_truth as f64 / self.full_truth as f64
        }
    }
}

/// The builder instance behind [`run_resilient_scenario`].
fn resilient_spec(
    streams: &StreamSet,
    transport: TransportSpec,
    policy: RetryPolicy,
) -> ScenarioSpec {
    ScenarioSpec::builder("resilient")
        .from_workload(&streams.spec)
        .transport(transport)
        .retry(policy)
        .build()
}

/// Run a scenario through the resilient collection plane: parties observe
/// on threads as in [`run_scenario`], but their messages cross the
/// simulated faulty [`TransportSpec`] channel and a retrying
/// [`crate::collector::Collector`] drives ack/timeout/retransmit rounds
/// under `policy`.
///
/// Unlike [`run_scenario`], message loss is expected here: the report
/// carries coverage instead of panicking on an incomplete union.
pub fn run_resilient_scenario(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    spec: TransportSpec,
    policy: RetryPolicy,
) -> ResilientReport {
    let spec = resilient_spec(streams, spec, policy);
    match crate::scenario::run_spec_on(config, master_seed, &spec, Some(streams)) {
        ScenarioOutcome::Resilient(report) => report,
        other => unreachable!("resilient spec dispatched to {other:?}"),
    }
}

/// One set-expression query answered by the referee, scored against the
/// exact oracle.
#[derive(Clone, Debug)]
pub struct ExpressionQueryOutcome {
    /// The expression, rendered (leaves are party ids, e.g. `(s0 ∪ s1)`).
    pub expr: String,
    /// Nesting depth of the expression tree (a leaf has depth 1).
    pub depth: usize,
    /// The referee's answer: point estimate, per-trial variance, CI.
    pub answer: gt_core::ExpressionEstimate,
    /// Exact cardinality of the expression over the true streams.
    pub truth: u64,
    /// `|estimate − truth| / (ε · |union of referenced streams|)` — the
    /// additive error contract's yardstick; ≤ 1 means within contract.
    /// 0 when the referenced union is empty.
    pub scaled_error: f64,
}

/// One Jaccard query between two set expressions, scored against the
/// exact oracle.
#[derive(Clone, Debug)]
pub struct JaccardQueryOutcome {
    /// The two expressions, rendered.
    pub exprs: (String, String),
    /// The referee's answer.
    pub answer: gt_core::JaccardEstimate,
    /// Exact Jaccard similarity over the true streams (0 when the true
    /// union is empty, matching the engine's convention).
    pub truth: f64,
    /// `|estimate − truth|`.
    pub abs_error: f64,
}

/// Everything measured in one **expression-query** scenario run.
#[derive(Clone, Debug)]
pub struct ExpressionScenarioReport {
    /// One outcome per requested set expression, in request order.
    pub queries: Vec<ExpressionQueryOutcome>,
    /// One outcome per requested Jaccard pair, in request order.
    pub jaccard_queries: Vec<JaccardQueryOutcome>,
    /// Number of parties.
    pub parties: usize,
    /// Total items across streams.
    pub total_items: u64,
    /// The configuration's ε (the scaled-error denominator factor).
    pub epsilon: f64,
}

/// The builder instance behind [`run_expression_scenario`].
fn expression_spec(
    streams: &StreamSet,
    queries: &[gt_core::SetExpr],
    jaccard_queries: &[(gt_core::SetExpr, gt_core::SetExpr)],
) -> ScenarioSpec {
    let mut builder = ScenarioSpec::builder("expression").from_workload(&streams.spec);
    for q in queries {
        builder = builder.query_expr(q.clone());
    }
    for (e1, e2) in jaccard_queries {
        builder = builder.query_jaccard(e1.clone(), e2.clone());
    }
    builder.build()
}

/// Run an expression-query scenario: every party observes its stream and
/// reports to the referee (serially — this runner measures estimation
/// quality, not wall clock), then the referee answers each set-expression
/// and Jaccard query from its retained per-party summaries. Exact truth
/// for every query is computed from the raw streams via
/// [`gt_core::expr::SetExpr::eval_exact`].
///
/// Leaves of the query expressions are **party ids**, i.e. indices into
/// `streams.streams`.
///
/// # Panics
/// Panics if a query references a party outside the stream set or a
/// referee message is rejected (both indicate caller bugs).
pub fn run_expression_scenario(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    queries: &[gt_core::SetExpr],
    jaccard_queries: &[(gt_core::SetExpr, gt_core::SetExpr)],
) -> ExpressionScenarioReport {
    let spec = expression_spec(streams, queries, jaccard_queries);
    match crate::scenario::run_spec_on(config, master_seed, &spec, Some(streams)) {
        ScenarioOutcome::Expression(report) => report,
        other => unreachable!("expression spec dispatched to {other:?}"),
    }
}

/// One mid-stream query answered while writers were still ingesting.
#[derive(Clone, Copy, Debug)]
pub struct LiveQuerySample {
    /// Propagation epoch of the snapshot that served the query.
    pub epoch: u64,
    /// Items (duplicates included) covered by the snapshot's
    /// prefix-union.
    pub items_covered: u64,
    /// The snapshot's `(ε, δ)` distinct estimate — the contract covers
    /// the prefix-union's cardinality, not the final answer.
    pub estimate: f64,
    /// `items_covered` as a fraction of the full workload's items: the
    /// live-serving analogue of [`PartialEstimate`]'s coverage.
    pub coverage: f64,
}

/// Everything measured in one **live-query** scenario run: writers ingest
/// concurrently through a [`gt_core::ConcurrentSketch`] while the
/// caller's thread answers distinct-count queries from snapshots.
#[derive(Clone, Debug)]
pub struct LiveQueryReport {
    /// Queries answered from a fresh epoch, in observation order (always
    /// ends with the final, complete epoch).
    pub samples: Vec<LiveQuerySample>,
    /// Total snapshot polls taken, including ones that saw no new epoch.
    pub snapshots_taken: u64,
    /// True iff every consecutive snapshot pair was monotone in epoch
    /// and covered items (the protocol guarantees this; experiments gate
    /// on it).
    pub monotone: bool,
    /// Estimate from the final snapshot, after every writer flushed.
    pub final_estimate: f64,
    /// Exact distinct count of the union of all streams.
    pub truth: u64,
    /// `|final_estimate − truth| / truth` (0 when both are 0).
    pub relative_error: f64,
    /// Epoch of the final snapshot.
    pub final_epoch: u64,
    /// Number of writer threads (one per stream).
    pub parties: usize,
    /// Total items across streams.
    pub total_items: u64,
    /// Wall time of the whole ingest-and-serve phase.
    pub observe_wall: Duration,
    /// Concurrent-path counters: propagation cadence by cause, snapshot
    /// traffic, folded writer-side sketch counters.
    pub concurrent_metrics: gt_core::ConcurrentMetricsSnapshot,
}

impl LiveQueryReport {
    /// Items per second across all writers during the ingest phase.
    pub fn throughput(&self) -> f64 {
        let secs = self.observe_wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.total_items as f64 / secs
        }
    }
}

/// The builder instance behind [`run_live_query_scenario`].
fn live_spec(streams: &StreamSet, writer_threshold: u64) -> ScenarioSpec {
    ScenarioSpec::builder("live")
        .from_workload(&streams.spec)
        .ingest(IngestMode::SharedConcurrent { writer_threshold })
        .build()
}

/// Run a live-query scenario: one writer thread per stream ingests into a
/// shared [`gt_core::ConcurrentSketch`] (each writer propagating its
/// thread-local buffer every `writer_threshold` items or on level lag),
/// while this thread serves `estimate_distinct` queries from published
/// snapshots the whole time — the ROADMAP's "answer union-F₀ queries
/// while inserts are in flight" serving path.
///
/// Unlike [`run_scenario`] there is no end-of-stream message: queries
/// never block writers, every answered query is an `(ε, δ)` estimate of
/// the prefix-union its epoch covers, and once all writers finish the
/// final snapshot is bitwise-identical (canonical encoding) to a
/// sequential sketch of the full multiset.
///
/// # Panics
/// Panics if a writer thread panics.
pub fn run_live_query_scenario(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    writer_threshold: u64,
) -> LiveQueryReport {
    let spec = live_spec(streams, writer_threshold);
    match crate::scenario::run_spec_on(config, master_seed, &spec, Some(streams)) {
        ScenarioOutcome::Live(report) => report,
        other => unreachable!("live spec dispatched to {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Distribution, WorkloadSpec};

    #[test]
    fn end_to_end_scenario_is_accurate() {
        let spec = WorkloadSpec {
            parties: 6,
            distinct_per_party: 5_000,
            overlap: 0.5,
            items_per_party: 25_000,
            distribution: Distribution::Uniform,
            seed: 11,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();
        let report = run_scenario(&config, 77, &streams);
        assert_eq!(report.parties, 6);
        assert_eq!(report.total_items, 6 * 25_000);
        assert!(report.relative_error < 0.1, "err {}", report.relative_error);
        assert_eq!(report.bytes_per_party.len(), 6);
        assert!(report.bytes_per_party.iter().all(|&b| b > 0));
        assert_eq!(
            report.total_bytes,
            report.bytes_per_party.iter().sum::<usize>()
        );
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn report_carries_phase_timings_and_telemetry() {
        let spec = WorkloadSpec {
            parties: 4,
            distinct_per_party: 3_000,
            overlap: 0.4,
            items_per_party: 10_000,
            distribution: Distribution::Uniform,
            seed: 14,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let report = run_scenario(&config, 21, &streams);
        // Per-party phases were populated for every party. Phase
        // *ordering* invariants only — strict `> Duration::ZERO` checks
        // are flaky on platforms whose monotonic clock is coarser than a
        // fast decode, so positivity is not asserted here (counts below
        // prove the stages ran).
        assert_eq!(report.party_phases.len(), 4);
        assert!(report.max_party_observe() <= report.observe_wall);
        assert!(report.total_encode() <= report.observe_wall * 4);
        // Referee telemetry accounts for every message, by stage.
        let t = report.referee_telemetry;
        assert_eq!(t.accepted, 4);
        assert_eq!(t.rejected(), 0);
        assert_eq!(t.duplicates(), 0);
        assert_eq!(t.attempts(), 4);
        assert!(t.decode_time + t.merge_time <= report.referee_time);
        // Batched referee: one union merge per batch, at most one batch
        // per message, and the histogram accounts for every batch.
        assert!(t.batches >= 1 && t.batches <= 4, "batches {}", t.batches);
        assert_eq!(t.summaries_per_batch.iter().sum::<usize>(), t.batches);
        let calls = report.union_metrics.merge_calls;
        assert!((1..=4).contains(&calls), "merge_calls {calls}");
        assert!(report.union_metrics.merge_entries_absorbed > 0);
    }

    #[test]
    fn single_party_scenario() {
        let spec = WorkloadSpec {
            parties: 1,
            distinct_per_party: 1_000,
            overlap: 0.0,
            items_per_party: 2_000,
            distribution: Distribution::Uniform,
            seed: 12,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let report = run_scenario(&config, 5, &streams);
        assert_eq!(report.relative_error, 0.0); // under capacity → exact
        assert_eq!(report.estimate, report.truth as f64);
    }

    #[test]
    fn resilient_scenario_reports_coverage_under_loss() {
        let spec = WorkloadSpec {
            parties: 8,
            distinct_per_party: 3_000,
            overlap: 0.3,
            items_per_party: 8_000,
            distribution: Distribution::Uniform,
            seed: 17,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();

        // Reliable channel: complete union, matches the clean runner.
        let clean = run_resilient_scenario(
            &config,
            33,
            &streams,
            TransportSpec::reliable(1),
            RetryPolicy::one_shot(),
        );
        assert!(clean.partial.is_complete());
        assert_eq!(clean.union_completeness(), 1.0);
        assert_eq!(
            clean.partial.estimate.value,
            run_scenario(&config, 33, &streams).estimate,
            "resilient plane over a perfect channel must equal the clean runner"
        );

        // Lossy channel, no retries: degraded mode with honest coverage.
        let lossy = TransportSpec {
            jitter: 0,
            straggle_probability: 0.0,
            ..TransportSpec::lossy(0.5, 0xBAD)
        };
        let degraded =
            run_resilient_scenario(&config, 33, &streams, lossy, RetryPolicy::one_shot());
        assert!(!degraded.partial.is_complete(), "p=0.5 must lose someone");
        assert!(degraded.partial.coverage() < 1.0);
        assert!(degraded.union_completeness() < 1.0);
        assert!(
            degraded.error_vs_received < 0.1,
            "the contract still covers the received union: {}",
            degraded.error_vs_received
        );

        // Same channel with a retry budget: strictly more of the union.
        let retried =
            run_resilient_scenario(&config, 33, &streams, lossy, RetryPolicy::with_budget(8));
        assert!(
            retried.partial.parties_heard > degraded.partial.parties_heard,
            "retries must strictly improve coverage ({} vs {})",
            retried.partial.parties_heard,
            degraded.partial.parties_heard
        );
        assert!(retried.collection.retransmits > 0);
    }

    #[test]
    fn live_query_scenario_serves_monotone_valid_estimates() {
        let spec = WorkloadSpec {
            parties: 4,
            distinct_per_party: 4_000,
            overlap: 0.5,
            items_per_party: 12_000,
            distribution: Distribution::Uniform,
            seed: 23,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();
        let report = run_live_query_scenario(&config, 55, &streams, 1_000);

        assert_eq!(report.parties, 4);
        assert_eq!(report.total_items, 4 * 12_000);
        assert!(report.monotone, "snapshots regressed");
        assert!(report.relative_error < 0.1, "err {}", report.relative_error);
        // The query loop polls at least once and always records the final
        // complete epoch as its last sample.
        assert!(report.snapshots_taken >= 1);
        let last = report.samples.last().expect("final epoch always sampled");
        assert_eq!(last.epoch, report.final_epoch);
        assert_eq!(last.items_covered, report.total_items);
        assert_eq!(last.coverage, 1.0);
        assert_eq!(last.estimate, report.final_estimate);
        // Coverage and epochs are nondecreasing across samples.
        for pair in report.samples.windows(2) {
            assert!(pair[1].epoch > pair[0].epoch);
            assert!(pair[1].items_covered >= pair[0].items_covered);
        }
        // 48k items at threshold 1k must propagate many times, and every
        // propagated item is accounted for.
        let m = report.concurrent_metrics;
        assert!(m.propagations() >= 48, "{m:?}");
        assert_eq!(m.items_propagated, report.total_items);
        assert!(m.snapshot_reads >= report.snapshots_taken);
        assert_eq!(
            m.writer.trial_inserts(),
            report.total_items * config.trials() as u64
        );
    }

    #[test]
    fn live_query_final_state_is_bitwise_sequential() {
        // The concurrent serving path must converge to the exact sketch a
        // sequential observer of the concatenated streams would hold —
        // asserted on canonical encoded bytes via a second run that
        // reaches into the shared sketch.
        let spec = WorkloadSpec {
            parties: 3,
            distinct_per_party: 5_000,
            overlap: 0.3,
            items_per_party: 9_000,
            distribution: Distribution::Zipf(1.1),
            seed: 29,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.1).unwrap();

        let shared = gt_core::ConcurrentSketch::new(&config, 77);
        crossbeam::scope(|scope| {
            for stream in &streams.streams {
                let shared = &shared;
                scope.spawn(move |_| {
                    let mut w = shared.writer_with_threshold(777);
                    w.extend_slice(stream);
                });
            }
        })
        .unwrap();

        let mut sequential = gt_core::DistinctSketch::new(&config, 77);
        for stream in &streams.streams {
            sequential.extend_slice(stream);
        }
        assert_eq!(
            crate::codec::encode_sketch(shared.snapshot().sketch()),
            crate::codec::encode_sketch(&sequential),
            "concurrent final state must be canonical-bytes-identical"
        );
    }

    #[test]
    fn live_query_single_writer_is_exact_under_capacity() {
        let spec = WorkloadSpec {
            parties: 1,
            distinct_per_party: 900,
            overlap: 0.0,
            items_per_party: 1_800,
            distribution: Distribution::Uniform,
            seed: 31,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.1).unwrap();
        let report = run_live_query_scenario(&config, 5, &streams, 250);
        assert_eq!(report.relative_error, 0.0); // under capacity → exact
        assert_eq!(report.final_estimate, report.truth as f64);
        assert!(report.monotone);
    }

    #[test]
    fn expression_scenario_answers_within_contract() {
        use gt_core::SetExpr;
        let spec = WorkloadSpec {
            parties: 4,
            distinct_per_party: 8_000,
            overlap: 0.5,
            items_per_party: 16_000,
            distribution: Distribution::Uniform,
            seed: 41,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();
        let (a, b, c, d) = (
            SetExpr::leaf(0),
            SetExpr::leaf(1),
            SetExpr::leaf(2),
            SetExpr::leaf(3),
        );
        let queries = [
            a.clone().union(b.clone()),
            a.clone().union(b.clone()).intersect(c.clone()),
            a.clone()
                .union(b.clone())
                .intersect(c.clone())
                .difference(d.clone()),
        ];
        let jaccard = [(a.clone().union(b.clone()), c.clone().difference(a.clone()))];
        let report = run_expression_scenario(&config, 61, &streams, &queries, &jaccard);

        assert_eq!(report.parties, 4);
        assert_eq!(report.epsilon, 0.1);
        assert_eq!(report.queries.len(), 3);
        assert_eq!(report.queries[0].depth, 2);
        assert_eq!(report.queries[2].depth, 4);
        for q in &report.queries {
            // Additive contract with slack for the intersection queries
            // (differences of coordinated estimates compound the bound).
            assert!(
                q.scaled_error <= 3.0,
                "{} scaled error {}",
                q.expr,
                q.scaled_error
            );
            assert!(q.answer.ci_lower() <= q.answer.ci_upper());
        }
        assert_eq!(report.jaccard_queries.len(), 1);
        let j = &report.jaccard_queries[0];
        assert!(j.truth > 0.0 && j.truth < 1.0, "truth {}", j.truth);
        assert!(j.abs_error < 0.15, "jaccard err {}", j.abs_error);
    }

    #[test]
    fn identical_streams_cost_no_extra_accuracy() {
        // overlap = 1: every party sees the same universe; the union
        // estimate must match a single party's estimate.
        let spec = WorkloadSpec {
            parties: 8,
            distinct_per_party: 30_000,
            overlap: 1.0,
            items_per_party: 30_000,
            distribution: Distribution::Uniform,
            seed: 13,
        };
        let streams = spec.generate();
        let config = SketchConfig::new(0.1, 0.05).unwrap();
        let report = run_scenario(&config, 6, &streams);
        assert!(report.relative_error < 0.1, "err {}", report.relative_error);
        assert!(report.truth <= 30_000);
    }
}
