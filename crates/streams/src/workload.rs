//! Synthetic distributed-stream workloads.
//!
//! The paper's motivating deployment is a set of network monitors, each
//! seeing its own link's traffic, with flows (labels) partially shared
//! across links. No public traces from that setting are usable here
//! (substitution note in DESIGN.md §6), but the estimators under test
//! depend *only* on the distinct-label structure of the streams — which
//! this generator controls exactly:
//!
//! * **Universe structure** — each party's sub-universe is a `shared` block
//!   common to *all* parties plus a private block, giving a tunable overlap
//!   fraction. Ground truth is closed-form and also checked by the oracle.
//! * **Skew** — items are drawn from the sub-universe uniformly or
//!   Zipf(θ)-distributed (θ = 0 is uniform; θ ≈ 1 is classic web/flow
//!   skew), so duplication within a stream is realistic and controllable.
//! * **Length vs. distinct** — stream length is independent of universe
//!   size: drawing 10⁶ items from 10⁴ labels gives a 100× duplication
//!   factor, the regime where distinct counting diverges from counting.
//!
//! Determinism: every stream is a pure function of `(spec, party index)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How items are drawn from a party's sub-universe.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Distribution {
    /// Uniform over the sub-universe.
    Uniform,
    /// Zipf with exponent `theta > 0` over the sub-universe (rank 1 is the
    /// most frequent label). `theta = 0` degenerates to uniform.
    Zipf(f64),
    /// Each label of the sub-universe exactly once, in a fixed shuffled
    /// order (stream length = sub-universe size; `items_per_party` is
    /// ignored). The "every flow seen once" corner case.
    EachOnce,
}

/// Full description of a multi-party workload.
///
/// ```
/// use gt_streams::{Distribution, WorkloadSpec};
/// let spec = WorkloadSpec {
///     parties: 3,
///     distinct_per_party: 1_000,
///     overlap: 0.5,           // half of each party's labels are shared by all
///     items_per_party: 5_000, // 5x duplication on average
///     distribution: Distribution::Zipf(1.0),
///     seed: 42,
/// };
/// assert_eq!(spec.true_union_distinct(), 500 + 3 * 500);
/// let streams = spec.generate();
/// assert_eq!(streams.streams.len(), 3);
/// assert_eq!(streams.total_items(), 15_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Number of parties (streams).
    pub parties: usize,
    /// Distinct labels in each party's sub-universe.
    pub distinct_per_party: u64,
    /// Fraction of each party's sub-universe shared with **all** other
    /// parties, in `[0, 1]`.
    pub overlap: f64,
    /// Items drawn per party (ignored by [`Distribution::EachOnce`]).
    pub items_per_party: u64,
    /// Draw distribution.
    pub distribution: Distribution,
    /// Workload seed (independent of sketch seeds).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small sane default: 4 parties, 10k labels each, 25 % overlap,
    /// 50k uniform items per party.
    pub fn example() -> Self {
        WorkloadSpec {
            parties: 4,
            distinct_per_party: 10_000,
            overlap: 0.25,
            items_per_party: 50_000,
            distribution: Distribution::Uniform,
            seed: 0xBEEF,
        }
    }

    /// Number of labels shared by all parties.
    pub fn shared_labels(&self) -> u64 {
        (self.overlap.clamp(0.0, 1.0) * self.distinct_per_party as f64).round() as u64
    }

    /// Closed-form ground truth for the distinct count of the union.
    pub fn true_union_distinct(&self) -> u64 {
        let shared = self.shared_labels();
        let private = self.distinct_per_party - shared;
        shared + private * self.parties as u64
    }

    /// The sub-universe of party `p`, as a label iterator. Labels are
    /// produced by folding structured ids, so they are spread over
    /// `[0, 2^61 − 1)` and parties' shared blocks coincide exactly.
    pub fn party_universe(&self, p: usize) -> impl Iterator<Item = u64> + '_ {
        assert!(p < self.parties, "party index out of range");
        let shared = self.shared_labels();
        let private = self.distinct_per_party - shared;
        let seed = self.seed;
        let shared_iter = (0..shared).map(move |i| label_of(seed, 0, i));
        let private_iter = (0..private).map(move |i| label_of(seed, 1 + p as u64, i));
        shared_iter.chain(private_iter)
    }

    /// Generate party `p`'s stream.
    pub fn party_stream(&self, p: usize) -> Vec<u64> {
        assert!(p < self.parties, "party index out of range");
        let universe: Vec<u64> = self.party_universe(p).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ gt_hash::mix64(0x57EA_4000 + p as u64));
        match self.distribution {
            Distribution::EachOnce => {
                let mut v = universe;
                // Fisher–Yates so observation order is not label order.
                for i in (1..v.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    v.swap(i, j);
                }
                v
            }
            Distribution::Uniform => (0..self.items_per_party)
                .map(|_| universe[rng.gen_range(0..universe.len())])
                .collect(),
            Distribution::Zipf(theta) if theta <= 0.0 => (0..self.items_per_party)
                .map(|_| universe[rng.gen_range(0..universe.len())])
                .collect(),
            Distribution::Zipf(theta) => {
                let zipf = ZipfSampler::new(universe.len() as u64, theta);
                (0..self.items_per_party)
                    .map(|_| universe[zipf.sample(&mut rng) as usize])
                    .collect()
            }
        }
    }

    /// Generate all party streams.
    pub fn generate(&self) -> StreamSet {
        StreamSet {
            streams: (0..self.parties).map(|p| self.party_stream(p)).collect(),
            spec: *self,
        }
    }
}

/// Deterministic label construction: `(seed, block, index) → label`.
/// Block 0 is the shared block; block `1+p` is party `p`'s private block.
fn label_of(seed: u64, block: u64, index: u64) -> u64 {
    gt_hash::fold61(gt_hash::mix64(seed ^ (block << 48)) ^ index)
}

/// The generated streams of a workload, plus the spec that made them.
#[derive(Clone, Debug)]
pub struct StreamSet {
    /// One item vector per party.
    pub streams: Vec<Vec<u64>>,
    /// The generating spec.
    pub spec: WorkloadSpec,
}

impl StreamSet {
    /// Total items across parties.
    pub fn total_items(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Attach a deterministic value to every label (for SumDistinct
    /// workloads): `value(x) = (x mod max_value) + 1 ∈ [1, max_value]`.
    pub fn with_values(&self, max_value: u64) -> Vec<Vec<(u64, u64)>> {
        assert!(max_value >= 1);
        self.streams
            .iter()
            .map(|s| s.iter().map(|&l| (l, l % max_value + 1)).collect())
            .collect()
    }
}

/// Zipf(θ)-style sampler over ranks `[0, n)` via the inverse CDF of a
/// *truncated continuous power law*: rank `i` receives probability
/// `∫_{i+1}^{i+2} x^{-θ} dx / ∫_1^{n+1} x^{-θ} dx`.
///
/// The continuous model samples in O(1) for **any** θ > 0 (including the
/// θ = 1 harmonic case, where the discrete "quick zipf" approximations
/// break down) and matches the discrete Zipf law to within a few percent
/// on every rank — entirely sufficient for workload synthesis, where only
/// controllable skew matters. [`ZipfSampler::model_probability`] exposes
/// the model's exact per-rank probabilities so tests can calibrate
/// against the distribution actually being sampled.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
}

impl ZipfSampler {
    /// Build a sampler for ranks `[0, n)` with exponent `theta > 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(theta > 0.0, "theta must be positive (use Uniform for 0)");
        ZipfSampler { n, theta }
    }

    /// CDF mass of `[1, x]` under the (unnormalized) density `t^{-θ}`.
    fn mass(&self, x: f64) -> f64 {
        if (self.theta - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
        }
    }

    /// Inverse of [`ZipfSampler::mass`].
    fn inverse_mass(&self, m: f64) -> f64 {
        if (self.theta - 1.0).abs() < 1e-9 {
            m.exp()
        } else {
            (1.0 + (1.0 - self.theta) * m).powf(1.0 / (1.0 - self.theta))
        }
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most likely.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.gen();
        let total = self.mass(self.n as f64 + 1.0);
        let x = self.inverse_mass(u * total);
        ((x - 1.0) as u64).min(self.n - 1)
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of rank `i` under the continuous model being sampled.
    pub fn model_probability(&self, i: u64) -> f64 {
        assert!(i < self.n);
        let total = self.mass(self.n as f64 + 1.0);
        (self.mass(i as f64 + 2.0) - self.mass(i as f64 + 1.0)) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec(overlap: f64, dist: Distribution) -> WorkloadSpec {
        WorkloadSpec {
            parties: 4,
            distinct_per_party: 1_000,
            overlap,
            items_per_party: 5_000,
            distribution: dist,
            seed: 7,
        }
    }

    #[test]
    fn ground_truth_formula_matches_oracle_counting() {
        for overlap in [0.0, 0.25, 0.5, 1.0] {
            let s = spec(overlap, Distribution::Uniform);
            let mut all = HashSet::new();
            for p in 0..s.parties {
                all.extend(s.party_universe(p));
            }
            assert_eq!(
                all.len() as u64,
                s.true_union_distinct(),
                "overlap {overlap}"
            );
        }
    }

    #[test]
    fn shared_block_is_identical_across_parties() {
        let s = spec(0.5, Distribution::Uniform);
        let u0: HashSet<u64> = s.party_universe(0).collect();
        let u1: HashSet<u64> = s.party_universe(1).collect();
        let inter = u0.intersection(&u1).count() as u64;
        assert_eq!(inter, s.shared_labels());
    }

    #[test]
    fn full_overlap_means_identical_universes() {
        let s = spec(1.0, Distribution::Uniform);
        let u0: HashSet<u64> = s.party_universe(0).collect();
        let u1: HashSet<u64> = s.party_universe(3).collect();
        assert_eq!(u0, u1);
        assert_eq!(s.true_union_distinct(), 1_000);
    }

    #[test]
    fn streams_are_deterministic() {
        let s = spec(0.3, Distribution::Uniform);
        assert_eq!(s.party_stream(2), s.party_stream(2));
        assert_ne!(s.party_stream(0), s.party_stream(1));
    }

    #[test]
    fn stream_items_come_from_the_party_universe() {
        let s = spec(0.25, Distribution::Zipf(1.0));
        for p in 0..s.parties {
            let universe: HashSet<u64> = s.party_universe(p).collect();
            for &item in &s.party_stream(p) {
                assert!(universe.contains(&item));
            }
        }
    }

    #[test]
    fn each_once_covers_the_universe_exactly() {
        let s = spec(0.25, Distribution::EachOnce);
        let stream = s.party_stream(0);
        assert_eq!(stream.len() as u64, s.distinct_per_party);
        let set: HashSet<u64> = stream.iter().copied().collect();
        assert_eq!(set.len() as u64, s.distinct_per_party);
        let universe: HashSet<u64> = s.party_universe(0).collect();
        assert_eq!(set, universe);
    }

    #[test]
    fn generate_produces_all_parties() {
        let set = spec(0.25, Distribution::Uniform).generate();
        assert_eq!(set.streams.len(), 4);
        assert_eq!(set.total_items(), 4 * 5_000);
    }

    #[test]
    fn values_are_deterministic_per_label() {
        let set = spec(0.0, Distribution::Uniform).generate();
        let valued = set.with_values(10);
        for (stream, vstream) in set.streams.iter().zip(valued.iter()) {
            for (&l, &(vl, v)) in stream.iter().zip(vstream.iter()) {
                assert_eq!(l, vl);
                assert_eq!(v, l % 10 + 1);
                assert!((1..=10).contains(&v));
            }
        }
    }

    #[test]
    fn zipf_is_skewed_and_ranked() {
        let z = ZipfSampler::new(1_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u64; 1_000];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should dominate rank 99 by roughly 100^θ = 100×.
        assert!(
            counts[0] > 20 * counts[99].max(1),
            "c0 {} c99 {}",
            counts[0],
            counts[99]
        );
        // Top-rank frequency should match the continuous model.
        let p0 = counts[0] as f64 / n as f64;
        let model = z.model_probability(0);
        assert!((p0 - model).abs() / model < 0.1, "p0 {p0} model {model}");
    }

    #[test]
    fn zipf_empirical_matches_model_across_theta() {
        for theta in [0.5, 1.0, 1.5, 2.0] {
            let z = ZipfSampler::new(100, theta);
            let mut rng = SmallRng::seed_from_u64(7);
            let draws = 100_000;
            let mut counts = vec![0u64; 100];
            for _ in 0..draws {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            for rank in [0usize, 1, 9, 49] {
                let emp = counts[rank] as f64 / draws as f64;
                let model = z.model_probability(rank as u64);
                let sd = (model * (1.0 - model) / draws as f64).sqrt();
                assert!(
                    (emp - model).abs() < 6.0 * sd + 1e-4,
                    "theta {theta} rank {rank}: emp {emp} model {model}"
                );
            }
        }
    }

    #[test]
    fn zipf_model_probabilities_sum_to_one() {
        for theta in [0.5, 1.0, 2.0] {
            let z = ZipfSampler::new(500, theta);
            let total: f64 = (0..500).map(|i| z.model_probability(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta {theta}: {total}");
        }
    }

    #[test]
    fn zipf_stays_in_range() {
        for theta in [0.5, 0.99, 1.0, 1.5, 2.5] {
            let z = ZipfSampler::new(50, theta);
            let mut rng = SmallRng::seed_from_u64(2);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 50);
            }
        }
        let z1 = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(z1.sample(&mut rng), 0);
    }

    #[test]
    fn zipf_theta_zero_rejected() {
        assert!(std::panic::catch_unwind(|| ZipfSampler::new(10, 0.0)).is_err());
    }

    #[test]
    fn uniform_stream_duplication_factor_behaves() {
        // 5000 draws from 1000 labels: expect ~993 distinct (coupon
        // collector: 1000·(1 − (1 − 1/1000)^5000)).
        let s = spec(0.0, Distribution::Uniform);
        let distinct = s.party_stream(0).iter().collect::<HashSet<_>>().len();
        assert!((950..=1_000).contains(&distinct), "distinct {distinct}");
    }
}
