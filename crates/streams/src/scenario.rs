//! Declarative end-to-end scenario harness: topology × workload × fault
//! plan × query plan, executed through the whole stack.
//!
//! A [`ScenarioSpec`] is plain data describing an end-to-end run —
//! "32-party fan-in, Zipf multi-tenant traffic, 5% drop with retries,
//! flash crowd at t=150, party churn at t=200, live distinct + windowed
//! queries every 100 ticks" is ~15 lines of [`ScenarioBuilder`] calls.
//! [`run_spec`] dispatches the spec to one of five engines:
//!
//! * **Classic** — the paper's one-shot model: batch streams, perfect
//!   channel, a single end-of-stream message per party.
//! * **Resilient** — batch streams over a faulty [`TransportSpec`]
//!   channel with a retrying collector.
//! * **Expression** — batch streams plus set-expression / Jaccard
//!   queries against the referee's retained per-party summaries.
//! * **Live** — batch streams ingested concurrently through a shared
//!   [`gt_core::ConcurrentSketch`] while queries are served mid-flight.
//! * **Sustained** — the new engine of this module: a sustained-rate
//!   load generator on the virtual clock ([`Tick`]), with per-item
//!   admission→queryable latency recorded against that clock, live
//!   degraded-mode queries on a fixed cadence, mid-run party churn, and
//!   an [`E2eReport`] (throughput, p50/p99/p999 latency, coverage under
//!   degradation, transport/referee telemetry) at the end.
//!
//! The four legacy `run_*_scenario` entry points in [`crate::runner`]
//! are thin wrappers over builder instances dispatched through this
//! module — pinned behavior-equivalent by `tests/scenario_regression.rs`.
//!
//! ## Latency definition
//!
//! An item generated at virtual tick `g` becomes **queryable** at the
//! delivery tick `d` of the first summary accepted by the referee whose
//! encode tick `e ≥ g` (summaries are cumulative, so acceptance of a
//! later summary also admits earlier items). Its end-to-end latency is
//! `d − g` ticks. No wall clock is consulted anywhere in the sustained
//! engine: same spec + same seeds ⇒ bitwise-identical referee state,
//! telemetry counts, and latency histograms (property-tested in
//! `tests/scenario_determinism.rs`).
//!
//! ## Determinism contract
//!
//! The sustained engine is single-threaded by construction and every
//! stochastic choice (workload draws, channel fates) is owned by a
//! seeded [`SmallRng`]. `IngestMode::Sequential` batch runs are likewise
//! deterministic. `IngestMode::PerPartyThreads` and `SharedConcurrent`
//! batch runs produce schedule-independent *state* (canonical union
//! bytes, exactly-once counters) but timing-shaped telemetry (batch
//! counts, phase durations) may vary run to run.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gt_core::{DistinctSketch, LatestTs, SetExpr, SketchConfig, SlidingWindowSketch};

use crate::codec::{encode_full_frame, encode_sketch, payload_fingerprint, WirePayload};
use crate::collector::{Collector, RetryPolicy};
use crate::oracle::StreamOracle;
use crate::party::{DeltaParty, Party, PartyMessage};
use crate::referee::{Receipt, Referee, RefereeOf, RefereeTelemetry};
use crate::runner::{
    ExpressionQueryOutcome, ExpressionScenarioReport, JaccardQueryOutcome, LiveQueryReport,
    LiveQuerySample, PartyPhases, ResilientReport, ScenarioReport,
};
use crate::transport::{Delivery, Tick, Transport, TransportSpec, TransportTelemetry};
use crate::workload::{Distribution, StreamSet, WorkloadSpec, ZipfSampler};

/// Latencies above this many ticks share one overflow bucket in the
/// [`LatencyHistogram`]; quantiles saturate here.
pub const LATENCY_CLAMP: Tick = 4096;

// ---------------------------------------------------------------------
// Spec types (plain data)
// ---------------------------------------------------------------------

/// How parties feed their streams into the system (batch engines only;
/// the sustained engine is single-threaded by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestMode {
    /// One OS thread per party, referee pipelined on the caller's thread
    /// (the legacy [`crate::runner::run_scenario`] shape).
    PerPartyThreads,
    /// Parties observe serially in id order and the referee receives one
    /// batch of all messages — fully deterministic, for replay tests.
    Sequential,
    /// All parties write into one shared [`gt_core::ConcurrentSketch`]
    /// while queries are served from snapshots (the legacy
    /// [`crate::runner::run_live_query_scenario`] shape).
    SharedConcurrent {
        /// Writer-local buffer threshold before propagation.
        writer_threshold: u64,
    },
}

/// Who participates and how they ingest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologySpec {
    /// Number of parties (streams).
    pub parties: usize,
    /// Ingest mode for batch engines.
    pub ingest: IngestMode,
    /// Aggregate batch-load summaries through a collector tree of this
    /// depth instead of shipping every party message straight to the
    /// referee (`None` = flat). The fan-out is derived so the tree has
    /// exactly this many merge tiers; the root union is **bitwise
    /// identical** to the flat union ([`crate::topology`]).
    pub tree_depth: Option<usize>,
}

/// How parties report their summaries over time (sustained load only;
/// batch load always ships one end-of-stream summary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReportingMode {
    /// Every report re-ships the party's full cumulative summary —
    /// `O(summary)` bytes per cadence tick (the paper's one-shot model,
    /// repeated).
    #[default]
    FullReship,
    /// The continuous-monitoring delta plane: parties ship compact
    /// [`crate::codec::Frame`]s — a full frame first, then deltas coded
    /// against the last acked base — and the referee maintains a live
    /// union that is bitwise identical to a fresh full ship at every
    /// ack point. `O(changes)` bytes per cadence tick in steady state.
    DeltaPlane,
}

/// A rate-multiplier window for the sustained engine: between `from`
/// (inclusive) and `until` (exclusive) each party's per-tick rate is
/// scaled by `rate_multiplier` (a flash crowd is `8.0`, a lull `0.25`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadPhase {
    /// First tick the multiplier applies to.
    pub from: Tick,
    /// First tick past the window.
    pub until: Tick,
    /// Factor applied to the base per-party rate.
    pub rate_multiplier: f64,
}

/// How much traffic arrives, and in what shape.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadShape {
    /// The paper's model: each party's whole stream exists up front and
    /// is shipped as one end-of-stream summary.
    Batch {
        /// Items drawn per party (ignored by [`Distribution::EachOnce`]).
        items_per_party: u64,
    },
    /// Continuous traffic on the virtual clock: every alive party draws
    /// `rate_per_party` items per tick (scaled by any matching
    /// [`LoadPhase`]) and ships a cumulative summary every
    /// `report_every` ticks.
    Sustained {
        /// Base items per party per tick.
        rate_per_party: u64,
        /// Total virtual ticks to run.
        duration: Tick,
        /// Summary cadence, in ticks.
        report_every: Tick,
        /// Rate-multiplier windows (first match wins; default ×1).
        phases: Vec<LoadPhase>,
    },
}

/// The traffic's label structure plus its [`LoadShape`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPlan {
    /// Distinct labels in each party's sub-universe.
    pub distinct_per_party: u64,
    /// Fraction of each party's sub-universe shared with all parties.
    pub overlap: f64,
    /// Draw distribution. In the sustained engine
    /// [`Distribution::EachOnce`] cycles the sub-universe in order.
    pub distribution: Distribution,
    /// Workload seed (independent of sketch seeds).
    pub seed: u64,
    /// Batch or sustained load.
    pub load: LoadShape,
}

impl WorkloadPlan {
    /// The equivalent [`WorkloadSpec`] for `parties` parties
    /// (`items_per_party` is 0 for sustained load — the engine draws
    /// incrementally instead of pre-generating).
    pub fn to_workload_spec(&self, parties: usize) -> WorkloadSpec {
        WorkloadSpec {
            parties,
            distinct_per_party: self.distinct_per_party,
            overlap: self.overlap,
            items_per_party: match self.load {
                LoadShape::Batch { items_per_party } => items_per_party,
                LoadShape::Sustained { .. } => 0,
            },
            distribution: self.distribution,
            seed: self.seed,
        }
    }
}

/// What happens to one party mid-run (sustained engine only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// The party stops generating at `at` but ships a parting summary
    /// first (failover done right).
    GracefulLeave,
    /// The party stops generating at `at` and ships nothing further;
    /// items not covered by an earlier summary are lost.
    Crash,
    /// The party is inactive before `at` and starts generating at `at`.
    Join,
}

/// One churn event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Which party.
    pub party: usize,
    /// Virtual tick of the event.
    pub at: Tick,
    /// What happens.
    pub kind: ChurnKind,
}

/// Channel faults, retry budget, and churn.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Simulated channel; `None` means a direct in-process channel for
    /// batch engines and a reliable channel for the sustained engine.
    pub transport: Option<TransportSpec>,
    /// Retry behaviour (resilient collector rounds / sustained-engine
    /// final retransmit rounds).
    pub retry: RetryPolicy,
    /// Mid-run churn (sustained engine only; batch engines ignore it).
    pub churn: Vec<ChurnEvent>,
}

/// Which live queries run, and how often.
#[derive(Clone, Debug, Default)]
pub struct QueryPlan {
    /// Query cadence in ticks (sustained engine; 0 = every tick).
    pub every: Tick,
    /// Sample `estimate_distinct_partial` each cadence tick.
    pub distinct: bool,
    /// Sample a sliding-window distinct count over the last `w` ticks.
    pub window: Option<Tick>,
    /// Set expressions evaluated via `query_partial` (leaves are party
    /// ids).
    pub expressions: Vec<SetExpr>,
    /// Expression pairs evaluated via `query_jaccard_partial`.
    pub jaccard: Vec<(SetExpr, SetExpr)>,
}

/// A complete end-to-end scenario: topology × workload × fault plan ×
/// query plan, all plain data. Build one with [`ScenarioSpec::builder`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (report and JSON key).
    pub name: String,
    /// Who participates and how they ingest.
    pub topology: TopologySpec,
    /// Traffic structure and load shape.
    pub workload: WorkloadPlan,
    /// Channel faults, retries, churn.
    pub faults: FaultPlan,
    /// Live query plan.
    pub queries: QueryPlan,
    /// Full re-ship vs incremental delta frames (sustained load only).
    pub reporting: ReportingMode,
}

impl ScenarioSpec {
    /// Start building a scenario with sane defaults: 4 parties,
    /// per-party-thread ingest, 1 000 distinct labels each at 25 %
    /// overlap, uniform draws, batch load of 5 000 items per party, no
    /// faults, no queries.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            spec: ScenarioSpec {
                name: name.into(),
                topology: TopologySpec {
                    parties: 4,
                    ingest: IngestMode::PerPartyThreads,
                    tree_depth: None,
                },
                workload: WorkloadPlan {
                    distinct_per_party: 1_000,
                    overlap: 0.25,
                    distribution: Distribution::Uniform,
                    seed: 0xBEEF,
                    load: LoadShape::Batch {
                        items_per_party: 5_000,
                    },
                },
                faults: FaultPlan {
                    transport: None,
                    retry: RetryPolicy::one_shot(),
                    churn: Vec::new(),
                },
                queries: QueryPlan::default(),
                reporting: ReportingMode::default(),
            },
        }
    }
}

/// Fluent builder for [`ScenarioSpec`]. Every method returns `self`.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Number of parties.
    pub fn parties(mut self, parties: usize) -> Self {
        self.spec.topology.parties = parties;
        self
    }

    /// Batch ingest mode.
    pub fn ingest(mut self, mode: IngestMode) -> Self {
        self.spec.topology.ingest = mode;
        self
    }

    /// Route batch-load summaries through a collector tree with this
    /// many merge tiers (see [`TopologySpec::tree_depth`]).
    pub fn tree_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "a tree needs at least one merge tier");
        self.spec.topology.tree_depth = Some(depth);
        self
    }

    /// Report via the continuous-monitoring delta plane instead of full
    /// re-ships (see [`ReportingMode::DeltaPlane`]; sustained load only).
    pub fn delta_plane(mut self) -> Self {
        self.spec.reporting = ReportingMode::DeltaPlane;
        self
    }

    /// Distinct labels per party.
    pub fn distinct_per_party(mut self, n: u64) -> Self {
        self.spec.workload.distinct_per_party = n;
        self
    }

    /// Shared-universe overlap fraction.
    pub fn overlap(mut self, overlap: f64) -> Self {
        self.spec.workload.overlap = overlap;
        self
    }

    /// Draw distribution.
    pub fn distribution(mut self, d: Distribution) -> Self {
        self.spec.workload.distribution = d;
        self
    }

    /// Workload seed.
    pub fn workload_seed(mut self, seed: u64) -> Self {
        self.spec.workload.seed = seed;
        self
    }

    /// Copy parties, universe structure, distribution, seed, and batch
    /// size from an existing [`WorkloadSpec`] — how the legacy runner
    /// wrappers become builder instances.
    pub fn from_workload(mut self, wl: &WorkloadSpec) -> Self {
        self.spec.topology.parties = wl.parties;
        self.spec.workload.distinct_per_party = wl.distinct_per_party;
        self.spec.workload.overlap = wl.overlap;
        self.spec.workload.distribution = wl.distribution;
        self.spec.workload.seed = wl.seed;
        self.spec.workload.load = LoadShape::Batch {
            items_per_party: wl.items_per_party,
        };
        self
    }

    /// Batch load: each party's whole stream exists up front.
    pub fn batch(mut self, items_per_party: u64) -> Self {
        self.spec.workload.load = LoadShape::Batch { items_per_party };
        self
    }

    /// Sustained load: `rate` items per party per tick for `duration`
    /// ticks, shipping cumulative summaries every `report_every` ticks.
    pub fn sustained(mut self, rate: u64, duration: Tick, report_every: Tick) -> Self {
        self.spec.workload.load = LoadShape::Sustained {
            rate_per_party: rate,
            duration,
            report_every,
            phases: Vec::new(),
        };
        self
    }

    /// Add a rate-multiplier window to a sustained load (panics on batch
    /// load — call [`ScenarioBuilder::sustained`] first).
    pub fn phase(mut self, from: Tick, until: Tick, rate_multiplier: f64) -> Self {
        match &mut self.spec.workload.load {
            LoadShape::Sustained { phases, .. } => phases.push(LoadPhase {
                from,
                until,
                rate_multiplier,
            }),
            LoadShape::Batch { .. } => panic!("phase() requires sustained load"),
        }
        self
    }

    /// Route messages through a simulated faulty channel.
    pub fn transport(mut self, spec: TransportSpec) -> Self {
        self.spec.faults.transport = Some(spec);
        self
    }

    /// Retry policy for the collection plane.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.spec.faults.retry = policy;
        self
    }

    /// Party `party` joins (starts generating) at tick `at`.
    pub fn join(mut self, party: usize, at: Tick) -> Self {
        self.spec.faults.churn.push(ChurnEvent {
            party,
            at,
            kind: ChurnKind::Join,
        });
        self
    }

    /// Party `party` leaves gracefully at tick `at` (parting summary
    /// shipped first).
    pub fn graceful_leave(mut self, party: usize, at: Tick) -> Self {
        self.spec.faults.churn.push(ChurnEvent {
            party,
            at,
            kind: ChurnKind::GracefulLeave,
        });
        self
    }

    /// Party `party` crashes at tick `at` (nothing further is shipped).
    pub fn crash(mut self, party: usize, at: Tick) -> Self {
        self.spec.faults.churn.push(ChurnEvent {
            party,
            at,
            kind: ChurnKind::Crash,
        });
        self
    }

    /// Live-query cadence in ticks.
    pub fn query_every(mut self, every: Tick) -> Self {
        self.spec.queries.every = every;
        self
    }

    /// Sample the degraded-mode distinct estimate each cadence tick.
    pub fn query_distinct(mut self) -> Self {
        self.spec.queries.distinct = true;
        self
    }

    /// Sample a sliding-window distinct count over the last `window`
    /// ticks each cadence tick.
    pub fn query_window(mut self, window: Tick) -> Self {
        self.spec.queries.window = Some(window);
        self
    }

    /// Add a set-expression query (leaves are party ids).
    pub fn query_expr(mut self, expr: SetExpr) -> Self {
        self.spec.queries.expressions.push(expr);
        self
    }

    /// Add a Jaccard query between two expressions.
    pub fn query_jaccard(mut self, e1: SetExpr, e2: SetExpr) -> Self {
        self.spec.queries.jaccard.push((e1, e2));
        self
    }

    /// Finish: validate and return the spec.
    pub fn build(self) -> ScenarioSpec {
        let spec = self.spec;
        assert!(spec.topology.parties > 0, "need at least one party");
        assert!(
            spec.workload.distinct_per_party > 0,
            "need a non-empty universe"
        );
        for ev in &spec.faults.churn {
            assert!(
                ev.party < spec.topology.parties,
                "churn event references party {} of {}",
                ev.party,
                spec.topology.parties
            );
        }
        spec
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// What a [`ScenarioSpec`] produced, by engine.
#[derive(Clone, Debug)]
pub enum ScenarioOutcome {
    /// One-shot batch run over a perfect channel.
    Classic(ScenarioReport),
    /// Batch run through the faulty-channel retrying collector.
    Resilient(ResilientReport),
    /// Batch run answering set-expression / Jaccard queries.
    Expression(ExpressionScenarioReport),
    /// Concurrent-ingest run serving queries mid-flight.
    Live(LiveQueryReport),
    /// Sustained-rate run on the virtual clock.
    Sustained(Box<E2eReport>),
}

/// Run a spec end to end, generating its streams from the workload plan.
///
/// Dispatch: sustained load → the sustained engine; batch load with
/// [`IngestMode::SharedConcurrent`] → live engine; batch load with a
/// transport → resilient engine; batch load with expression or Jaccard
/// queries → expression engine; otherwise the classic engine.
pub fn run_spec(config: &SketchConfig, master_seed: u64, spec: &ScenarioSpec) -> ScenarioOutcome {
    run_spec_on(config, master_seed, spec, None)
}

/// [`run_spec`] with an optional pre-generated stream set for batch
/// engines (must have one stream per party). The sustained engine
/// always draws incrementally and ignores `streams`.
pub fn run_spec_on(
    config: &SketchConfig,
    master_seed: u64,
    spec: &ScenarioSpec,
    streams: Option<&StreamSet>,
) -> ScenarioOutcome {
    match &spec.workload.load {
        LoadShape::Sustained { .. } => match spec.reporting {
            ReportingMode::FullReship => {
                ScenarioOutcome::Sustained(Box::new(run_sustained(config, master_seed, spec)))
            }
            ReportingMode::DeltaPlane => {
                ScenarioOutcome::Sustained(Box::new(run_continuous(config, master_seed, spec)))
            }
        },
        LoadShape::Batch { .. } => {
            let generated;
            let streams = match streams {
                Some(s) => s,
                None => {
                    generated = spec
                        .workload
                        .to_workload_spec(spec.topology.parties)
                        .generate();
                    &generated
                }
            };
            assert_eq!(
                streams.streams.len(),
                spec.topology.parties,
                "stream set does not match the topology"
            );
            if let Some(depth) = spec.topology.tree_depth {
                assert!(
                    spec.faults.transport.is_none()
                        && !matches!(spec.topology.ingest, IngestMode::SharedConcurrent { .. }),
                    "tree aggregation composes with the classic batch engine only"
                );
                return ScenarioOutcome::Classic(run_tree_engine(
                    config,
                    master_seed,
                    streams,
                    depth,
                ));
            }
            if let IngestMode::SharedConcurrent { writer_threshold } = spec.topology.ingest {
                return ScenarioOutcome::Live(run_live_engine(
                    config,
                    master_seed,
                    streams,
                    writer_threshold,
                ));
            }
            if let Some(tspec) = spec.faults.transport {
                return ScenarioOutcome::Resilient(run_resilient_engine(
                    config,
                    master_seed,
                    streams,
                    tspec,
                    spec.faults.retry,
                ));
            }
            if !spec.queries.expressions.is_empty() || !spec.queries.jaccard.is_empty() {
                return ScenarioOutcome::Expression(run_expression_engine(
                    config,
                    master_seed,
                    streams,
                    &spec.queries.expressions,
                    &spec.queries.jaccard,
                ));
            }
            ScenarioOutcome::Classic(run_classic_engine(
                config,
                master_seed,
                streams,
                spec.topology.ingest,
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Batch engines (moved here from crate::runner; the legacy entry points
// are now thin wrappers over builder instances dispatched above)
// ---------------------------------------------------------------------

/// Classic one-shot engine. `PerPartyThreads` runs one OS thread per
/// party with the referee pipelined on the caller's thread;
/// `Sequential` observes parties in id order and hands the referee one
/// batch of all messages (deterministic telemetry for replay tests).
pub(crate) fn run_classic_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    ingest: IngestMode,
) -> ScenarioReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    let observe_start = Instant::now();
    let mut referee = Referee::new(config, master_seed);
    let mut bytes_per_party = vec![0usize; t];
    let mut party_phases = vec![PartyPhases::default(); t];
    let mut referee_busy = std::time::Duration::ZERO;

    match ingest {
        IngestMode::Sequential => {
            let mut batch: Vec<PartyMessage> = Vec::with_capacity(t);
            for (id, stream) in streams.streams.iter().enumerate() {
                let mut party = Party::new(id, config, master_seed);
                let observe_start = Instant::now();
                party.observe_stream(stream);
                let observe = observe_start.elapsed();
                let encode_start = Instant::now();
                let msg = party.finish();
                let encode = encode_start.elapsed();
                bytes_per_party[id] = msg.bytes();
                party_phases[id] = PartyPhases { observe, encode };
                batch.push(msg);
            }
            let busy_start = Instant::now();
            for outcome in referee.receive_batch(&batch) {
                outcome.expect("coordinated message must decode");
            }
            referee_busy += busy_start.elapsed();
        }
        IngestMode::PerPartyThreads | IngestMode::SharedConcurrent { .. } => {
            let (tx, rx) = crossbeam::channel::unbounded::<(PartyMessage, PartyPhases)>();
            crossbeam::scope(|scope| {
                for (id, stream) in streams.streams.iter().enumerate() {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        let mut party = Party::new(id, config, master_seed);
                        let observe_start = Instant::now();
                        party.observe_stream(stream);
                        let observe = observe_start.elapsed();
                        let encode_start = Instant::now();
                        let msg = party.finish();
                        let encode = encode_start.elapsed();
                        tx.send((msg, PartyPhases { observe, encode }))
                            .expect("referee hung up");
                    });
                }
                drop(tx);
                // Referee loop, pipelined: runs on this thread while
                // party threads are still observing; exits when every
                // sender is done. Messages that queued up while the
                // referee was busy are drained into one batch and
                // unioned through the tree-reduction batch path.
                let mut batch: Vec<PartyMessage> = Vec::with_capacity(t);
                while let Ok((msg, phases)) = rx.recv() {
                    let busy_start = Instant::now();
                    batch.clear();
                    bytes_per_party[msg.party_id] = msg.bytes();
                    party_phases[msg.party_id] = phases;
                    batch.push(msg);
                    while let Ok((msg, phases)) = rx.try_recv() {
                        bytes_per_party[msg.party_id] = msg.bytes();
                        party_phases[msg.party_id] = phases;
                        batch.push(msg);
                    }
                    for outcome in referee.receive_batch(&batch) {
                        outcome.expect("coordinated message must decode");
                    }
                    referee_busy += busy_start.elapsed();
                }
            })
            .expect("party thread panicked");
        }
    }
    let observe_wall = observe_start.elapsed();

    let estimate_start = Instant::now();
    let estimate = referee.estimate_distinct().value;
    let referee_time = referee_busy + estimate_start.elapsed();

    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct();
    let relative_error = gt_core::relative_error(estimate, truth as f64);

    ScenarioReport {
        estimate,
        truth,
        relative_error,
        parties: t,
        total_items: streams.total_items(),
        total_bytes: bytes_per_party.iter().sum(),
        bytes_per_party,
        party_phases,
        observe_wall,
        referee_telemetry: *referee.telemetry(),
        union_metrics: referee.union_metrics(),
        referee_time,
    }
}

/// The fan-out that gives a `depth`-tier collector tree over `parties`
/// leaves: the smallest `f ≥ 2` with `f^depth ≥ parties`.
pub(crate) fn tree_fanout_for_depth(parties: usize, depth: usize) -> usize {
    assert!(depth >= 1, "a tree needs at least one merge tier");
    let mut fanout = 2usize.max((parties as f64).powf(1.0 / depth as f64).ceil() as usize);
    // powf rounding can land one off in either direction; walk to the
    // exact smallest fan-out.
    while fanout > 2 && (fanout - 1).pow(depth as u32) >= parties {
        fanout -= 1;
    }
    while fanout.pow(depth as u32) < parties {
        fanout += 1;
    }
    fanout
}

/// Tree engine: serial observation, then hierarchical aggregation
/// through intermediate collectors ([`crate::topology::aggregate_tree`])
/// with the fan-out derived from the requested depth; the referee
/// receives the single root message. The union — and therefore the
/// estimate — is bitwise identical to the flat classic engine on the
/// same seed (the tree reassociation is lossless), which
/// `tree_union_is_bitwise_identical_to_flat` pins.
pub(crate) fn run_tree_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    depth: usize,
) -> ScenarioReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");
    let fanout = tree_fanout_for_depth(t, depth);

    let observe_start = Instant::now();
    let mut bytes_per_party = vec![0usize; t];
    let mut party_phases = vec![PartyPhases::default(); t];
    let mut messages: Vec<PartyMessage> = Vec::with_capacity(t);
    for (id, stream) in streams.streams.iter().enumerate() {
        let mut party = Party::new(id, config, master_seed);
        let observe_start = Instant::now();
        party.observe_stream(stream);
        let observe = observe_start.elapsed();
        let encode_start = Instant::now();
        let msg = party.finish();
        let encode = encode_start.elapsed();
        bytes_per_party[id] = msg.bytes();
        party_phases[id] = PartyPhases { observe, encode };
        messages.push(msg);
    }
    let observe_wall = observe_start.elapsed();

    let busy_start = Instant::now();
    let tree = crate::topology::aggregate_tree(config, master_seed, messages, fanout)
        .expect("coordinated messages must aggregate");
    let mut referee = Referee::new(config, master_seed);
    referee
        .receive(&PartyMessage {
            party_id: 0,
            payload: tree.root_canonical.clone(),
            items_observed: streams.total_items(),
        })
        .expect("root message must decode");
    let estimate = referee.estimate_distinct().value;
    let referee_time = busy_start.elapsed();

    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct();
    ScenarioReport {
        estimate,
        truth,
        relative_error: gt_core::relative_error(estimate, truth as f64),
        parties: t,
        total_items: streams.total_items(),
        total_bytes: tree.bytes_per_tier.iter().sum(),
        bytes_per_party,
        party_phases,
        observe_wall,
        referee_telemetry: *referee.telemetry(),
        union_metrics: referee.union_metrics(),
        referee_time,
    }
}

/// Resilient engine: batch observation, then the retrying collection
/// plane over the faulty channel.
pub(crate) fn run_resilient_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    spec: TransportSpec,
    policy: RetryPolicy,
) -> ResilientReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    // Observation phase: one thread per party, as in the clean runner.
    let messages: Vec<PartyMessage> = crossbeam::scope(|scope| {
        let handles: Vec<_> = streams
            .streams
            .iter()
            .enumerate()
            .map(|(id, stream)| {
                scope.spawn(move |_| {
                    let mut party = Party::new(id, config, master_seed);
                    party.observe_stream(stream);
                    party.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect()
    })
    .expect("party thread panicked");

    // Collection phase: retrying plane over the faulty channel.
    let mut collector: Collector = Collector::new(config, master_seed, spec, policy);
    let collection = collector.collect(&messages);
    let referee = collector.into_referee();
    let partial = referee.estimate_distinct_partial(t);

    let full_oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let received_oracle = StreamOracle::of_streams(
        streams
            .streams
            .iter()
            .zip(&collection.per_party)
            .filter(|(_, p)| p.acked_at.is_some())
            .map(|(s, _)| s.as_slice()),
    );
    let full_truth = full_oracle.distinct();
    let received_truth = received_oracle.distinct();

    ResilientReport {
        collection,
        partial,
        full_truth,
        received_truth,
        error_vs_received: gt_core::relative_error(partial.estimate.value, received_truth as f64),
    }
}

/// Expression engine: serial observation, then set-expression and
/// Jaccard queries scored against the exact oracle.
pub(crate) fn run_expression_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    queries: &[SetExpr],
    jaccard_queries: &[(SetExpr, SetExpr)],
) -> ExpressionScenarioReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    let mut referee = Referee::new(config, master_seed);
    for (id, stream) in streams.streams.iter().enumerate() {
        let mut party = Party::new(id, config, master_seed);
        party.observe_stream(stream);
        referee
            .receive(&party.finish())
            .expect("coordinated message must decode");
    }

    let sets: Vec<HashSet<u64>> = streams
        .streams
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();

    let queries = queries
        .iter()
        .map(|expr| {
            let answer = referee.query(expr).expect("query references heard parties");
            let truth = expr
                .eval_exact(&sets)
                .expect("oracle shares the leaves")
                .len() as u64;
            // Union of every referenced stream: the additive contract's scale.
            let mut referenced: HashSet<u64> = HashSet::new();
            expr.for_each_leaf(&mut |i| referenced.extend(&sets[i]));
            let scale = config.epsilon() * referenced.len() as f64;
            let scaled_error = if scale == 0.0 {
                0.0
            } else {
                (answer.estimate.value - truth as f64).abs() / scale
            };
            ExpressionQueryOutcome {
                expr: expr.to_string(),
                depth: expr.depth(),
                answer,
                truth,
                scaled_error,
            }
        })
        .collect();

    let jaccard_queries = jaccard_queries
        .iter()
        .map(|(e1, e2)| {
            let answer = referee
                .query_jaccard(e1, e2)
                .expect("query references heard parties");
            let s1 = e1.eval_exact(&sets).expect("oracle shares the leaves");
            let s2 = e2.eval_exact(&sets).expect("oracle shares the leaves");
            let union = s1.union(&s2).count();
            let truth = if union == 0 {
                0.0
            } else {
                s1.intersection(&s2).count() as f64 / union as f64
            };
            JaccardQueryOutcome {
                exprs: (e1.to_string(), e2.to_string()),
                abs_error: (answer.jaccard - truth).abs(),
                answer,
                truth,
            }
        })
        .collect();

    ExpressionScenarioReport {
        queries,
        jaccard_queries,
        parties: t,
        total_items: streams.total_items(),
        epsilon: config.epsilon(),
    }
}

/// Live engine: concurrent writers into a shared sketch, queries served
/// from snapshots on the caller's thread the whole time.
pub(crate) fn run_live_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    writer_threshold: u64,
) -> LiveQueryReport {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let t = streams.streams.len();
    assert!(t > 0, "need at least one writer");
    let total_items = streams.total_items();

    let shared = gt_core::ConcurrentSketch::new(config, master_seed);
    let writers_done = AtomicUsize::new(0);
    let mut samples: Vec<LiveQuerySample> = Vec::new();
    let mut snapshots_taken = 0u64;
    let mut monotone = true;

    let observe_start = Instant::now();
    crossbeam::scope(|scope| {
        for stream in &streams.streams {
            let shared = &shared;
            let writers_done = &writers_done;
            scope.spawn(move |_| {
                let mut writer = shared.writer_with_threshold(writer_threshold);
                writer.extend_slice(stream);
                drop(writer); // flush the tail before reporting done
                writers_done.fetch_add(1, Ordering::Release);
            });
        }
        // Query loop on this thread: serve estimates from snapshots while
        // writers run. Samples are recorded per *new epoch*; monotonicity
        // is tracked across every poll (count/ordering property, no
        // timing assumptions).
        let mut last_epoch = 0u64;
        let mut last_items = 0u64;
        loop {
            let done = writers_done.load(Ordering::Acquire) >= t;
            let snap = shared.snapshot();
            snapshots_taken += 1;
            if snap.epoch() < last_epoch || snap.items_observed() < last_items {
                monotone = false;
            }
            if snap.epoch() != last_epoch || (done && samples.is_empty()) {
                samples.push(LiveQuerySample {
                    epoch: snap.epoch(),
                    items_covered: snap.items_observed(),
                    estimate: snap.estimate_distinct().value,
                    coverage: if total_items == 0 {
                        1.0
                    } else {
                        snap.items_observed() as f64 / total_items as f64
                    },
                });
            }
            last_epoch = snap.epoch();
            last_items = snap.items_observed();
            if done {
                break;
            }
            std::thread::yield_now();
        }
    })
    .expect("writer thread panicked");
    let observe_wall = observe_start.elapsed();

    let final_snap = shared.snapshot();
    let final_estimate = final_snap.estimate_distinct().value;
    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct();

    LiveQueryReport {
        samples,
        snapshots_taken,
        monotone,
        final_estimate,
        truth,
        relative_error: gt_core::relative_error(final_estimate, truth as f64),
        final_epoch: final_snap.epoch(),
        parties: t,
        total_items,
        observe_wall,
        concurrent_metrics: shared.metrics_snapshot(),
    }
}

// ---------------------------------------------------------------------
// Sustained engine
// ---------------------------------------------------------------------

/// A tick-resolution latency histogram: bucket `i` counts items whose
/// admission→queryable latency was exactly `i` ticks (clamped at
/// [`LATENCY_CLAMP`]). Derives `Eq`, so same-seed replays can assert
/// bitwise-identical latency distributions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: Tick,
}

impl LatencyHistogram {
    /// Record `n` items at `latency` ticks.
    pub fn record(&mut self, latency: Tick, n: u64) {
        if n == 0 {
            return;
        }
        let idx = latency.min(LATENCY_CLAMP) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.max = self.max.max(latency);
    }

    /// Items recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest latency recorded (unclamped).
    pub fn max(&self) -> Tick {
        self.max
    }

    /// The smallest latency `L` such that at least `⌈q·count⌉` items had
    /// latency ≤ `L` (0 when empty; saturates at [`LATENCY_CLAMP`]).
    pub fn quantile(&self, q: f64) -> Tick {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return i as Tick;
            }
        }
        LATENCY_CLAMP
    }

    /// Median latency in ticks.
    pub fn p50(&self) -> Tick {
        self.quantile(0.50)
    }

    /// 99th-percentile latency in ticks.
    pub fn p99(&self) -> Tick {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency in ticks.
    pub fn p999(&self) -> Tick {
        self.quantile(0.999)
    }

    /// Mean latency in ticks (clamped items count at the clamp).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| i as u64 * b)
            .sum();
        sum as f64 / self.count as f64
    }
}

/// One degraded-mode distinct sample from the query plan.
#[derive(Clone, Copy, Debug)]
pub struct DistinctSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// `estimate_distinct_partial` point estimate.
    pub estimate: f64,
    /// Parties heard at query time.
    pub parties_heard: usize,
    /// Parties active (joined) at query time.
    pub parties_expected: usize,
    /// `parties_heard / parties_expected` (1 when none expected).
    pub coverage: f64,
}

/// One sliding-window distinct sample: the estimate over the last
/// `window` ticks against the engine's exact recency oracle.
#[derive(Clone, Copy, Debug)]
pub struct WindowSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// Window width in ticks.
    pub window: Tick,
    /// Merged sliding-window estimate over all parties.
    pub estimate: f64,
    /// Exact count of labels last seen in `(at − window, at]`.
    pub truth: u64,
}

/// One set-expression sample (`query_partial`).
#[derive(Clone, Copy, Debug)]
pub struct ExpressionSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// Index into [`QueryPlan::expressions`].
    pub query: usize,
    /// Point estimate.
    pub estimate: f64,
    /// Fraction of referenced parties heard.
    pub coverage: f64,
}

/// One Jaccard sample (`query_jaccard_partial`).
#[derive(Clone, Copy, Debug)]
pub struct JaccardSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// Index into [`QueryPlan::jaccard`].
    pub pair: usize,
    /// Jaccard estimate.
    pub jaccard: f64,
    /// Fraction of referenced parties heard.
    pub coverage: f64,
}

/// What the continuous-monitoring delta plane did during a sustained
/// run — present on [`E2eReport::delta`] when the scenario used
/// [`ReportingMode::DeltaPlane`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaPlaneReport {
    /// Delta frames applied by the referee.
    pub delta_frames: u64,
    /// Full frames applied (initial ships and post-resync re-keys).
    pub full_frames: u64,
    /// Wire bytes of applied delta frames.
    pub delta_bytes: u64,
    /// Wire bytes of applied full frames.
    pub full_bytes: u64,
    /// Resyncs requested (delta refused for an unknown/mismatched base).
    pub resyncs: u64,
    /// Per-generation acks sent back to parties.
    pub acks_sent: u64,
    /// Acks lost on the return path ([`RetryPolicy::ack_drop_probability`]).
    pub acks_lost: u64,
    /// Final acked (applied) generation per party, indexed by party id
    /// (0 = never heard).
    pub acked_generations: Vec<u64>,
    /// Mean over query ticks of the worst per-party estimate staleness,
    /// in virtual ticks (tick of query minus encode tick of the last
    /// applied frame).
    pub staleness_mean: f64,
    /// Worst staleness observed at any query tick.
    pub staleness_max: Tick,
    /// Bitwise live-union-vs-full-ship equivalence checks run (one per
    /// tick that applied at least one frame).
    pub oracle_checks: u64,
    /// Equivalence checks that failed — **must be zero**; a nonzero
    /// count means the incremental union diverged from a fresh full
    /// ship.
    pub oracle_failures: u64,
    /// Checks skipped because a party had already pruned the snapshot
    /// for its acked generation (mid-resync windows).
    pub oracle_skipped: u64,
}

impl DeltaPlaneReport {
    /// Mean applied delta-frame size in bytes (0 when none).
    pub fn mean_delta_frame(&self) -> f64 {
        if self.delta_frames == 0 {
            0.0
        } else {
            self.delta_bytes as f64 / self.delta_frames as f64
        }
    }

    /// Mean applied full-frame size in bytes (0 when none).
    pub fn mean_full_frame(&self) -> f64 {
        if self.full_frames == 0 {
            0.0
        } else {
            self.full_bytes as f64 / self.full_frames as f64
        }
    }
}

/// Everything a sustained-rate scenario run measured.
#[derive(Clone, Debug)]
pub struct E2eReport {
    /// Scenario name.
    pub name: String,
    /// Parties in the topology.
    pub parties: usize,
    /// Virtual ticks run (before final retry rounds).
    pub duration: Tick,
    /// Items generated across all parties.
    pub total_items: u64,
    /// Items that became queryable (covered by an accepted summary).
    pub items_acked: u64,
    /// Summary messages encoded and first-sent (excludes retransmits).
    pub reports_sent: usize,
    /// Final retransmit rounds driven after the load ended.
    pub retry_rounds: usize,
    /// Admission→queryable latency per item, in virtual ticks.
    pub latency: LatencyHistogram,
    /// Parties heard / parties that sent ≥ 1 summary (1 when none sent).
    pub party_coverage: f64,
    /// Items acked / items generated (1 when none generated).
    pub item_coverage: f64,
    /// Final union distinct estimate.
    pub final_estimate: f64,
    /// Exact distinct count of everything generated.
    pub truth: u64,
    /// `|final_estimate − truth| / truth` — only meaningful at full
    /// coverage (at partial coverage the contract covers the heard
    /// union, as in [`crate::referee::PartialEstimate`]).
    pub relative_error: f64,
    /// Degraded-mode distinct samples, in query order.
    pub distinct_samples: Vec<DistinctSample>,
    /// Sliding-window samples, in query order.
    pub window_samples: Vec<WindowSample>,
    /// Set-expression samples, in query order.
    pub expression_samples: Vec<ExpressionSample>,
    /// Jaccard samples, in query order.
    pub jaccard_samples: Vec<JaccardSample>,
    /// Channel-side telemetry (authoritative drop counts).
    pub transport: TransportTelemetry,
    /// Referee-side telemetry (accepts, duplicates, rejects).
    pub referee: RefereeTelemetry,
    /// Canonical encoded bytes of the final union sketch — the bitwise
    /// determinism witness.
    pub union_canonical: bytes::Bytes,
    /// Total summary bytes put on the wire (first sends + engine-driven
    /// retransmits; the steady-state communication cost E24 measures).
    pub bytes_sent: u64,
    /// Delta-plane accounting, when the run used
    /// [`ReportingMode::DeltaPlane`].
    pub delta: Option<DeltaPlaneReport>,
    /// Wall time of the whole run (diagnostics only — never asserted).
    pub run_wall: std::time::Duration,
}

impl E2eReport {
    /// Wall-clock ingest throughput in items per second (diagnostics;
    /// `f64::INFINITY` if the clock read zero).
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.run_wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.total_items as f64 / secs
        }
    }

    /// Offered load in items per virtual tick (deterministic).
    pub fn offered_rate_per_tick(&self) -> f64 {
        if self.duration == 0 {
            0.0
        } else {
            self.total_items as f64 / self.duration as f64
        }
    }

    /// Everything deterministic about this run, folded into one
    /// `Eq`-comparable value: canonical union bytes, latency histogram,
    /// exactly-once counters, telemetry counts (timings excluded), and
    /// every query sample (estimates as IEEE bit patterns). Two
    /// same-seed runs of the same spec must compare equal — the replay
    /// property `tests/scenario_determinism.rs` checks.
    pub fn determinism_key(&self) -> E2eDeterminismKey {
        let r = &self.referee;
        let d = self.delta.clone().unwrap_or_default();
        E2eDeterminismKey {
            union_canonical: self.union_canonical.clone(),
            bytes_sent: self.bytes_sent,
            delta_counts: [
                d.delta_frames,
                d.full_frames,
                d.delta_bytes,
                d.full_bytes,
                d.resyncs,
                d.acks_sent,
                d.acks_lost,
                d.oracle_failures,
            ],
            latency: self.latency.clone(),
            total_items: self.total_items,
            items_acked: self.items_acked,
            reports_sent: self.reports_sent,
            retry_rounds: self.retry_rounds,
            truth: self.truth,
            final_estimate_bits: self.final_estimate.to_bits(),
            party_coverage_bits: self.party_coverage.to_bits(),
            item_coverage_bits: self.item_coverage.to_bits(),
            transport: self.transport,
            referee_counts: [
                r.accepted,
                r.duplicates_suppressed,
                r.duplicates_merged,
                r.rejected(),
                r.batches,
            ],
            samples: self
                .distinct_samples
                .iter()
                .map(|s| (s.at, 0usize, s.estimate.to_bits(), s.parties_heard as u64))
                .chain(
                    self.window_samples
                        .iter()
                        .map(|s| (s.at, 1, s.estimate.to_bits(), s.truth)),
                )
                .chain(
                    self.expression_samples
                        .iter()
                        .map(|s| (s.at, 2, s.estimate.to_bits(), s.query as u64)),
                )
                .chain(
                    self.jaccard_samples
                        .iter()
                        .map(|s| (s.at, 3, s.jaccard.to_bits(), s.pair as u64)),
                )
                .collect(),
        }
    }
}

/// The `Eq`-comparable replay witness of an [`E2eReport`] — see
/// [`E2eReport::determinism_key`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct E2eDeterminismKey {
    /// Canonical encoded bytes of the final union sketch.
    pub union_canonical: bytes::Bytes,
    /// Summary bytes put on the wire.
    pub bytes_sent: u64,
    /// Delta-plane counts: delta/full frames, delta/full bytes, resyncs,
    /// acks sent/lost, oracle failures (all zero off the delta plane).
    pub delta_counts: [u64; 8],
    /// Full latency histogram.
    pub latency: LatencyHistogram,
    /// Items generated.
    pub total_items: u64,
    /// Items acked.
    pub items_acked: u64,
    /// Summaries first-sent.
    pub reports_sent: usize,
    /// Final retry rounds.
    pub retry_rounds: usize,
    /// Exact distinct truth.
    pub truth: u64,
    /// Final estimate, as IEEE bits.
    pub final_estimate_bits: u64,
    /// Party coverage, as IEEE bits.
    pub party_coverage_bits: u64,
    /// Item coverage, as IEEE bits.
    pub item_coverage_bits: u64,
    /// Channel telemetry (all counts).
    pub transport: TransportTelemetry,
    /// Referee counts: accepted, dup-suppressed, dup-merged, rejected,
    /// batches (timings excluded — they are wall-clock).
    pub referee_counts: [usize; 5],
    /// Every query sample: `(tick, kind, estimate bits, aux)`.
    pub samples: Vec<(Tick, usize, u64, u64)>,
}

/// Per-party runtime state of the sustained engine.
struct PartyRt {
    sketch: DistinctSketch,
    window: Option<SlidingWindowSketch>,
    rng: SmallRng,
    universe: Vec<u64>,
    zipf: Option<ZipfSampler>,
    each_once: bool,
    /// Items generated but not yet covered by an accepted summary:
    /// `(generation tick, count)` in tick order.
    pending: VecDeque<(Tick, u64)>,
    generated: u64,
    /// Items covered by the most recent encode (skip no-op re-encodes).
    last_encoded_items: u64,
    /// Most recent summary and its encode tick, for final retransmits.
    last_encode: Option<(Tick, PartyMessage)>,
    joined_at: Tick,
    leave_at: Option<Tick>,
    graceful: bool,
    sends: usize,
}

impl PartyRt {
    fn draw(&mut self) -> u64 {
        let idx = match &self.zipf {
            Some(z) => z.sample(&mut self.rng) as usize,
            None if self.each_once => (self.generated as usize) % self.universe.len(),
            None => self.rng.gen_range(0..self.universe.len()),
        };
        self.universe[idx]
    }

    /// Generating at tick `t`?
    fn generating(&self, t: Tick) -> bool {
        self.joined_at <= t && self.leave_at.is_none_or(|l| t < l)
    }

    /// Allowed to send at tick `t`? (Graceful leavers ship their parting
    /// summary at the leave tick; crashers ship nothing from theirs.)
    fn can_send(&self, t: Tick) -> bool {
        self.joined_at <= t
            && match self.leave_at {
                None => true,
                Some(l) => t < l || (t == l && self.graceful),
            }
    }
}

/// Feed one tick's (or retry round's) deliveries to the referee and
/// account latency: an accepted summary admits every pending item of its
/// party generated at or before the summary's encode tick.
fn absorb_deliveries(
    deliveries: &[Delivery],
    referee: &mut Referee,
    meta: &HashMap<(usize, u64), Tick>,
    parties: &mut [PartyRt],
    hist: &mut LatencyHistogram,
    items_acked: &mut u64,
) {
    if deliveries.is_empty() {
        return;
    }
    let msgs: Vec<PartyMessage> = deliveries.iter().map(|d| d.msg.clone()).collect();
    let receipts = referee.receive_batch(&msgs);
    for (d, receipt) in deliveries.iter().zip(receipts) {
        if !matches!(receipt, Ok(Receipt::Merged | Receipt::MergedVariant)) {
            // Duplicates changed nothing; corrupt deliveries decode to
            // an error (or, rarely, to an unknown-fingerprint variant
            // that the meta lookup below rejects).
            continue;
        }
        let fp = payload_fingerprint(&d.msg.payload);
        let Some(&encode_tick) = meta.get(&(d.msg.party_id, fp)) else {
            continue;
        };
        let rt = &mut parties[d.msg.party_id];
        while let Some(&(gen_tick, n)) = rt.pending.front() {
            if gen_tick > encode_tick {
                break;
            }
            hist.record(d.at.saturating_sub(gen_tick), n);
            *items_acked += n;
            rt.pending.pop_front();
        }
    }
}

/// The base-rate multiplier at tick `t` (first matching phase wins).
fn multiplier_at(phases: &[LoadPhase], t: Tick) -> f64 {
    phases
        .iter()
        .find(|p| p.from <= t && t < p.until)
        .map_or(1.0, |p| p.rate_multiplier)
}

/// Run a sustained-load spec on the virtual clock.
///
/// # Panics
/// Panics if the spec's load shape is not [`LoadShape::Sustained`].
pub fn run_sustained(config: &SketchConfig, master_seed: u64, spec: &ScenarioSpec) -> E2eReport {
    let wall_start = Instant::now();
    let LoadShape::Sustained {
        rate_per_party,
        duration,
        report_every,
        ref phases,
    } = spec.workload.load
    else {
        panic!("run_sustained requires LoadShape::Sustained");
    };
    let parties = spec.topology.parties;
    assert!(parties > 0, "need at least one party");
    let report_every = report_every.max(1);
    let query_every = spec.queries.every.max(1);
    let wants_queries = spec.queries.distinct
        || spec.queries.window.is_some()
        || !spec.queries.expressions.is_empty()
        || !spec.queries.jaccard.is_empty();

    let wl = spec.workload.to_workload_spec(parties);
    let mut ps: Vec<PartyRt> = (0..parties)
        .map(|p| {
            let universe: Vec<u64> = wl.party_universe(p).collect();
            let zipf = match spec.workload.distribution {
                Distribution::Zipf(theta) if theta > 0.0 => {
                    Some(ZipfSampler::new(universe.len() as u64, theta))
                }
                _ => None,
            };
            PartyRt {
                sketch: DistinctSketch::new(config, master_seed),
                window: spec
                    .queries
                    .window
                    .map(|_| SlidingWindowSketch::new(config, master_seed)),
                rng: SmallRng::seed_from_u64(wl.seed ^ gt_hash::mix64(0x57EA_4000 + p as u64)),
                universe,
                zipf,
                each_once: spec.workload.distribution == Distribution::EachOnce,
                pending: VecDeque::new(),
                generated: 0,
                last_encoded_items: 0,
                last_encode: None,
                joined_at: 0,
                leave_at: None,
                graceful: false,
                sends: 0,
            }
        })
        .collect();
    for ev in &spec.faults.churn {
        assert!(ev.party < parties, "churn references party {}", ev.party);
        match ev.kind {
            ChurnKind::Join => ps[ev.party].joined_at = ev.at,
            ChurnKind::GracefulLeave => {
                ps[ev.party].leave_at = Some(ev.at);
                ps[ev.party].graceful = true;
            }
            ChurnKind::Crash => {
                ps[ev.party].leave_at = Some(ev.at);
                ps[ev.party].graceful = false;
            }
        }
    }

    let tspec = spec
        .faults
        .transport
        .unwrap_or_else(|| TransportSpec::reliable(wl.seed ^ 0x51AE));
    let mut transport = Transport::new(tspec);
    let mut referee = Referee::new(config, master_seed);
    let mut meta: HashMap<(usize, u64), Tick> = HashMap::new();
    let mut hist = LatencyHistogram::default();
    let mut seen_exact: HashSet<u64> = HashSet::new();
    let mut last_seen: HashMap<u64, Tick> = HashMap::new();
    let mut total_items = 0u64;
    let mut items_acked = 0u64;
    let mut reports_sent = 0usize;
    let mut bytes_sent = 0u64;
    let mut gen_buf: Vec<u64> = Vec::new();
    let mut distinct_samples = Vec::new();
    let mut window_samples = Vec::new();
    let mut expression_samples = Vec::new();
    let mut jaccard_samples = Vec::new();

    for t in 1..=duration {
        // 1. Generation: every alive party draws its per-tick quota.
        for rt in ps.iter_mut() {
            if !rt.generating(t) {
                continue;
            }
            let n = (rate_per_party as f64 * multiplier_at(phases, t)).round() as u64;
            if n == 0 {
                continue;
            }
            gen_buf.clear();
            for _ in 0..n {
                let label = rt.draw();
                rt.generated += 1;
                gen_buf.push(label);
            }
            rt.sketch.extend_slice(&gen_buf);
            if let Some(w) = &mut rt.window {
                for &label in &gen_buf {
                    w.insert(label, t);
                }
            }
            for &label in &gen_buf {
                seen_exact.insert(label);
                if spec.queries.window.is_some() {
                    last_seen.insert(label, t);
                }
            }
            rt.pending.push_back((t, n));
            total_items += n;
        }

        // 2. Reporting: cadence ticks, parting summaries at graceful
        // leaves, and a final flush at the end of the run.
        for (p, rt) in ps.iter_mut().enumerate() {
            if !rt.can_send(t) {
                continue;
            }
            let parting = rt.leave_at == Some(t) && rt.graceful;
            if !(t % report_every == 0 || parting || t == duration) {
                continue;
            }
            if rt.generated == 0 || rt.generated == rt.last_encoded_items {
                continue; // nothing new to report
            }
            let payload = encode_sketch(&rt.sketch);
            let msg = PartyMessage {
                party_id: p,
                payload,
                items_observed: rt.sketch.items_observed(),
            };
            let fp = payload_fingerprint(&msg.payload);
            meta.entry((p, fp)).or_insert(t);
            rt.last_encode = Some((t, msg.clone()));
            rt.last_encoded_items = rt.generated;
            rt.sends += 1;
            reports_sent += 1;
            bytes_sent += msg.bytes() as u64;
            transport.send(msg);
        }

        // 3. Delivery: advance the clock, feed the referee, account
        // admission→queryable latency.
        let deliveries = transport.advance(t);
        absorb_deliveries(
            &deliveries,
            &mut referee,
            &meta,
            &mut ps,
            &mut hist,
            &mut items_acked,
        );

        // 4. Live queries on the cadence.
        if wants_queries && t % query_every == 0 {
            let expected = ps.iter().filter(|rt| rt.joined_at <= t).count();
            if spec.queries.distinct {
                let pe = referee.estimate_distinct_partial(expected);
                distinct_samples.push(DistinctSample {
                    at: t,
                    estimate: pe.estimate.value,
                    parties_heard: pe.parties_heard,
                    parties_expected: expected,
                    coverage: pe.coverage(),
                });
            }
            if let Some(w) = spec.queries.window {
                let mut merged: Option<SlidingWindowSketch> = None;
                for rt in &ps {
                    if let Some(ws) = &rt.window {
                        match &mut merged {
                            None => merged = Some(ws.clone()),
                            Some(m) => m.merge_from(ws).expect("shared seed and config"),
                        }
                    }
                }
                let estimate = merged.map_or(0.0, |m| m.estimate_distinct_last(t, w).value);
                let truth = last_seen
                    .values()
                    .filter(|&&ts| ts <= t && ts + w > t)
                    .count() as u64;
                window_samples.push(WindowSample {
                    at: t,
                    window: w,
                    estimate,
                    truth,
                });
            }
            for (i, expr) in spec.queries.expressions.iter().enumerate() {
                if let Ok(pe) = referee.query_partial(expr) {
                    expression_samples.push(ExpressionSample {
                        at: t,
                        query: i,
                        estimate: pe.estimate.estimate.value,
                        coverage: pe.coverage(),
                    });
                }
            }
            for (i, (e1, e2)) in spec.queries.jaccard.iter().enumerate() {
                if let Ok(pj) = referee.query_jaccard_partial(e1, e2) {
                    jaccard_samples.push(JaccardSample {
                        at: t,
                        pair: i,
                        jaccard: pj.estimate.jaccard,
                        coverage: pj.coverage(),
                    });
                }
            }
        }
    }

    // Final retransmit rounds: parties still up whose last summary
    // covers unacked items resend it under the retry budget with capped
    // exponential backoff, exactly like the collector's rounds.
    let mut retry_rounds = 0usize;
    let mut timeout = spec.faults.retry.initial_timeout.max(1);
    let timeout_cap = spec.faults.retry.max_timeout.max(timeout);
    loop {
        let needy: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, rt)| {
                rt.leave_at.is_none()
                    && matches!(
                        (&rt.last_encode, rt.pending.front()),
                        (Some((enc, _)), Some(&(gen, _))) if gen <= *enc
                    )
            })
            .map(|(p, _)| p)
            .collect();
        if needy.is_empty() || retry_rounds + 1 >= spec.faults.retry.max_attempts {
            break;
        }
        retry_rounds += 1;
        for p in needy {
            let (_, msg) = ps[p].last_encode.clone().expect("checked above");
            ps[p].sends += 1;
            bytes_sent += msg.bytes() as u64;
            transport.send(msg);
        }
        let deadline = transport.now().saturating_add(timeout);
        let deliveries = transport.advance(deadline);
        absorb_deliveries(
            &deliveries,
            &mut referee,
            &meta,
            &mut ps,
            &mut hist,
            &mut items_acked,
        );
        timeout = timeout.saturating_mul(2).min(timeout_cap);
    }
    // At-least-once channels deliver late rather than never: drain the
    // stragglers still on the wire.
    let stragglers = transport.drain();
    absorb_deliveries(
        &stragglers,
        &mut referee,
        &meta,
        &mut ps,
        &mut hist,
        &mut items_acked,
    );

    let senders = ps.iter().filter(|rt| rt.sends > 0).count();
    let heard = (0..parties).filter(|&p| referee.has_heard(p)).count();
    let party_coverage = if senders == 0 {
        1.0
    } else {
        heard as f64 / senders as f64
    };
    let item_coverage = if total_items == 0 {
        1.0
    } else {
        items_acked as f64 / total_items as f64
    };
    let final_estimate = referee.estimate_distinct().value;
    let truth = seen_exact.len() as u64;

    E2eReport {
        name: spec.name.clone(),
        parties,
        duration,
        total_items,
        items_acked,
        reports_sent,
        retry_rounds,
        latency: hist,
        party_coverage,
        item_coverage,
        final_estimate,
        truth,
        relative_error: gt_core::relative_error(final_estimate, truth as f64),
        distinct_samples,
        window_samples,
        expression_samples,
        jaccard_samples,
        transport: transport.telemetry(),
        referee: *referee.telemetry(),
        union_canonical: encode_sketch(referee.union_sketch()),
        bytes_sent,
        delta: None,
        run_wall: wall_start.elapsed(),
    }
}

// ---------------------------------------------------------------------
// Continuous-monitoring engine (delta plane)
// ---------------------------------------------------------------------

/// Per-party runtime state of the continuous-monitoring engine.
struct ContinuousRt<V: WirePayload + PartialEq> {
    dp: DeltaParty<V>,
    rng: SmallRng,
    universe: Vec<u64>,
    zipf: Option<ZipfSampler>,
    each_once: bool,
    /// Items generated but not yet covered by an applied frame.
    pending: VecDeque<(Tick, u64)>,
    generated: u64,
    /// Items covered by the most recent emitted frame.
    last_emitted_items: u64,
    /// Most recent frame and its encode tick, for retransmits.
    last_frame: Option<(Tick, PartyMessage)>,
    /// Encode tick of the newest frame the referee applied — the
    /// staleness anchor for this party.
    applied_emit_tick: Option<Tick>,
    /// A resync notice arrived: the next emission must happen even if no
    /// new items did (it re-keys the chain with a full frame).
    needs_reemit: bool,
    joined_at: Tick,
    leave_at: Option<Tick>,
    graceful: bool,
    sends: usize,
}

impl<V: WirePayload + PartialEq> ContinuousRt<V> {
    fn draw(&mut self) -> u64 {
        let idx = match &self.zipf {
            Some(z) => z.sample(&mut self.rng) as usize,
            None if self.each_once => (self.generated as usize) % self.universe.len(),
            None => self.rng.gen_range(0..self.universe.len()),
        };
        self.universe[idx]
    }

    fn generating(&self, t: Tick) -> bool {
        self.joined_at <= t && self.leave_at.is_none_or(|l| t < l)
    }

    fn can_send(&self, t: Tick) -> bool {
        self.joined_at <= t
            && match self.leave_at {
                None => true,
                Some(l) => t < l || (t == l && self.graceful),
            }
    }
}

/// Feed one tick's deliveries to the frame path, account latency, and
/// drive the per-generation ack/resync return channel. Returns whether
/// any frame was applied (an ack point — the oracle checks there).
#[allow(clippy::too_many_arguments)]
fn absorb_frame_deliveries<V: WirePayload + PartialEq>(
    deliveries: &[Delivery],
    referee: &mut RefereeOf<V>,
    meta: &HashMap<(usize, u64), Tick>,
    ps: &mut [ContinuousRt<V>],
    hist: &mut LatencyHistogram,
    items_acked: &mut u64,
    ack_rng: &mut SmallRng,
    ack_drop: f64,
    report: &mut DeltaPlaneReport,
) -> bool {
    let mut any_applied = false;
    for d in deliveries {
        let p = d.msg.party_id;
        match referee.receive_frame(&d.msg) {
            Ok(Receipt::Merged) => {
                any_applied = true;
                let fp = payload_fingerprint(&d.msg.payload);
                if let Some(&enc) = meta.get(&(p, fp)) {
                    let rt = &mut ps[p];
                    rt.applied_emit_tick = Some(rt.applied_emit_tick.map_or(enc, |a| a.max(enc)));
                    while let Some(&(gen_tick, n)) = rt.pending.front() {
                        if gen_tick > enc {
                            break;
                        }
                        hist.record(d.at.saturating_sub(gen_tick), n);
                        *items_acked += n;
                        rt.pending.pop_front();
                    }
                }
                send_generation_ack(referee, ps, p, ack_rng, ack_drop, report);
            }
            // Re-ack duplicates: the original ack may be the thing that
            // was lost, and the cumulative ack lets the party advance
            // its base and prune snapshots.
            Ok(Receipt::Duplicate) => {
                send_generation_ack(referee, ps, p, ack_rng, ack_drop, report);
            }
            Ok(Receipt::NeedResync) => {
                ps[p].dp.handle_resync();
                ps[p].needs_reemit = true;
            }
            // MergedVariant is unreachable on the frame path; corrupt
            // deliveries error out and are counted by referee telemetry.
            Ok(Receipt::MergedVariant) | Err(_) => {}
        }
    }
    any_applied
}

/// Route the referee's cumulative per-generation ack back to a party,
/// subject to return-path loss.
fn send_generation_ack<V: WirePayload + PartialEq>(
    referee: &RefereeOf<V>,
    ps: &mut [ContinuousRt<V>],
    party: usize,
    ack_rng: &mut SmallRng,
    ack_drop: f64,
    report: &mut DeltaPlaneReport,
) {
    let Some(generation) = referee.acked_generation(party) else {
        return;
    };
    report.acks_sent += 1;
    if ack_drop > 0.0 && ack_rng.gen_bool(ack_drop) {
        report.acks_lost += 1;
        return;
    }
    ps[party].dp.handle_ack(generation);
}

/// The always-on equivalence oracle: a fresh referee full-shipped each
/// party's snapshot at its applied generation must produce canonical
/// union bytes identical to the live union. `None` when some party has
/// already pruned the needed snapshot (mid-resync window) — the check
/// is skipped, not failed.
fn live_union_matches_full_ship<V: WirePayload + PartialEq>(
    config: &SketchConfig,
    master_seed: u64,
    referee: &RefereeOf<V>,
    ps: &[ContinuousRt<V>],
) -> Option<bool> {
    let mut oracle: RefereeOf<V> = RefereeOf::new(config, master_seed);
    for (p, rt) in ps.iter().enumerate() {
        let Some(generation) = referee.acked_generation(p) else {
            continue;
        };
        let snap = rt.dp.snapshot_for(generation)?;
        let msg = PartyMessage {
            party_id: p,
            payload: encode_full_frame(snap, 1),
            items_observed: snap.items_observed(),
        };
        if !matches!(oracle.receive_frame(&msg), Ok(Receipt::Merged)) {
            return Some(false);
        }
    }
    Some(encode_sketch(oracle.union_sketch()) == encode_sketch(referee.union_sketch()))
}

/// Run a sustained-load spec through the continuous-monitoring delta
/// plane: parties ship delta frames on the report cadence, the referee
/// maintains a live union with per-generation acks (and resyncs) on the
/// return path, and live queries — including the distributed windowed
/// query — are answered from the referee between deltas.
///
/// Windowed queries are answered **referee-side** (timestamps travel in
/// the frames as [`LatestTs`] payloads and reconcile by `max`), unlike
/// [`run_sustained`]'s party-side merge — so their error includes the
/// reporting staleness this engine measures.
///
/// # Panics
/// Panics if the spec's load shape is not [`LoadShape::Sustained`].
pub fn run_continuous(config: &SketchConfig, master_seed: u64, spec: &ScenarioSpec) -> E2eReport {
    if spec.queries.window.is_some() {
        run_continuous_impl::<LatestTs>(config, master_seed, spec, LatestTs, |r, now, w| {
            r.query_distinct_since(now.saturating_sub(w).saturating_add(1))
                .value
        })
    } else {
        run_continuous_impl::<()>(config, master_seed, spec, |_| (), |_, _, _| 0.0)
    }
}

fn run_continuous_impl<V: WirePayload + PartialEq>(
    config: &SketchConfig,
    master_seed: u64,
    spec: &ScenarioSpec,
    payload_at: impl Fn(Tick) -> V,
    window_answer: impl Fn(&RefereeOf<V>, Tick, Tick) -> f64,
) -> E2eReport {
    let wall_start = Instant::now();
    let LoadShape::Sustained {
        rate_per_party,
        duration,
        report_every,
        ref phases,
    } = spec.workload.load
    else {
        panic!("run_continuous requires LoadShape::Sustained");
    };
    let parties = spec.topology.parties;
    assert!(parties > 0, "need at least one party");
    let report_every = report_every.max(1);
    let query_every = spec.queries.every.max(1);
    let wants_queries = spec.queries.distinct
        || spec.queries.window.is_some()
        || !spec.queries.expressions.is_empty()
        || !spec.queries.jaccard.is_empty();

    let wl = spec.workload.to_workload_spec(parties);
    let mut ps: Vec<ContinuousRt<V>> = (0..parties)
        .map(|p| {
            let universe: Vec<u64> = wl.party_universe(p).collect();
            let zipf = match spec.workload.distribution {
                Distribution::Zipf(theta) if theta > 0.0 => {
                    Some(ZipfSampler::new(universe.len() as u64, theta))
                }
                _ => None,
            };
            ContinuousRt {
                dp: DeltaParty::new(p, config, master_seed),
                rng: SmallRng::seed_from_u64(wl.seed ^ gt_hash::mix64(0x57EA_4000 + p as u64)),
                universe,
                zipf,
                each_once: spec.workload.distribution == Distribution::EachOnce,
                pending: VecDeque::new(),
                generated: 0,
                last_emitted_items: 0,
                last_frame: None,
                applied_emit_tick: None,
                needs_reemit: false,
                joined_at: 0,
                leave_at: None,
                graceful: false,
                sends: 0,
            }
        })
        .collect();
    for ev in &spec.faults.churn {
        assert!(ev.party < parties, "churn references party {}", ev.party);
        match ev.kind {
            ChurnKind::Join => ps[ev.party].joined_at = ev.at,
            ChurnKind::GracefulLeave => {
                ps[ev.party].leave_at = Some(ev.at);
                ps[ev.party].graceful = true;
            }
            ChurnKind::Crash => {
                ps[ev.party].leave_at = Some(ev.at);
                ps[ev.party].graceful = false;
            }
        }
    }

    let tspec = spec
        .faults
        .transport
        .unwrap_or_else(|| TransportSpec::reliable(wl.seed ^ 0x51AE));
    let mut transport = Transport::new(tspec);
    let mut referee: RefereeOf<V> = RefereeOf::new(config, master_seed);
    // The ack return path owns its own RNG stream, exactly like the
    // collector's, so forward fates are identical with and without ack
    // loss.
    let mut ack_rng = SmallRng::seed_from_u64(wl.seed ^ 0xACC0_ACC0_ACC0_ACC0);
    let ack_drop = spec.faults.retry.ack_drop_probability.clamp(0.0, 1.0);
    let mut delta_report = DeltaPlaneReport::default();
    let mut meta: HashMap<(usize, u64), Tick> = HashMap::new();
    let mut hist = LatencyHistogram::default();
    let mut seen_exact: HashSet<u64> = HashSet::new();
    let mut last_seen: HashMap<u64, Tick> = HashMap::new();
    let mut total_items = 0u64;
    let mut items_acked = 0u64;
    let mut reports_sent = 0usize;
    let mut bytes_sent = 0u64;
    let mut staleness_sum = 0u64;
    let mut staleness_ticks = 0u64;
    let mut distinct_samples = Vec::new();
    let mut window_samples = Vec::new();
    let mut expression_samples = Vec::new();
    let mut jaccard_samples = Vec::new();

    for t in 1..=duration {
        // 1. Generation.
        for rt in ps.iter_mut() {
            if !rt.generating(t) {
                continue;
            }
            let n = (rate_per_party as f64 * multiplier_at(phases, t)).round() as u64;
            if n == 0 {
                continue;
            }
            for _ in 0..n {
                let label = rt.draw();
                rt.generated += 1;
                rt.dp.observe_with(label, payload_at(t));
                seen_exact.insert(label);
                if spec.queries.window.is_some() {
                    last_seen.insert(label, t);
                }
            }
            rt.pending.push_back((t, n));
            total_items += n;
        }

        // 2. Frame emission on the cadence (plus parting frames, the
        // final flush, and forced re-emits after a resync).
        for (p, rt) in ps.iter_mut().enumerate() {
            if !rt.can_send(t) {
                continue;
            }
            let parting = rt.leave_at == Some(t) && rt.graceful;
            if !(t % report_every == 0 || parting || t == duration) {
                continue;
            }
            let items = rt.dp.sketch().items_observed();
            if items == 0 || (items == rt.last_emitted_items && !rt.needs_reemit) {
                continue;
            }
            let msg = rt.dp.emit_frame();
            meta.entry((p, payload_fingerprint(&msg.payload))).or_insert(t);
            rt.last_frame = Some((t, msg.clone()));
            rt.last_emitted_items = items;
            rt.needs_reemit = false;
            rt.sends += 1;
            reports_sent += 1;
            bytes_sent += msg.bytes() as u64;
            transport.send(msg);
        }

        // 3. Delivery, per-generation acks, latency accounting.
        let deliveries = transport.advance(t);
        let applied = absorb_frame_deliveries(
            &deliveries,
            &mut referee,
            &meta,
            &mut ps,
            &mut hist,
            &mut items_acked,
            &mut ack_rng,
            ack_drop,
            &mut delta_report,
        );

        // 4. The always-on equivalence oracle at every ack point.
        if applied {
            match live_union_matches_full_ship(config, master_seed, &referee, &ps) {
                Some(true) => delta_report.oracle_checks += 1,
                Some(false) => {
                    delta_report.oracle_checks += 1;
                    delta_report.oracle_failures += 1;
                }
                None => delta_report.oracle_skipped += 1,
            }
        }

        // 5. Live queries between deltas.
        if wants_queries && t % query_every == 0 {
            let mut worst_staleness = 0u64;
            for rt in ps.iter() {
                if rt.sends == 0 {
                    continue;
                }
                worst_staleness =
                    worst_staleness.max(t.saturating_sub(rt.applied_emit_tick.unwrap_or(0)));
            }
            staleness_sum += worst_staleness;
            staleness_ticks += 1;
            delta_report.staleness_max = delta_report.staleness_max.max(worst_staleness);

            let expected = ps.iter().filter(|rt| rt.joined_at <= t).count();
            if spec.queries.distinct {
                let pe = referee.estimate_distinct_partial(expected);
                distinct_samples.push(DistinctSample {
                    at: t,
                    estimate: pe.estimate.value,
                    parties_heard: pe.parties_heard,
                    parties_expected: expected,
                    coverage: pe.coverage(),
                });
            }
            if let Some(w) = spec.queries.window {
                let estimate = window_answer(&referee, t, w);
                let truth = last_seen
                    .values()
                    .filter(|&&ts| ts <= t && ts + w > t)
                    .count() as u64;
                window_samples.push(WindowSample {
                    at: t,
                    window: w,
                    estimate,
                    truth,
                });
            }
            for (i, expr) in spec.queries.expressions.iter().enumerate() {
                if let Ok(pe) = referee.query_partial(expr) {
                    expression_samples.push(ExpressionSample {
                        at: t,
                        query: i,
                        estimate: pe.estimate.estimate.value,
                        coverage: pe.coverage(),
                    });
                }
            }
            for (i, (e1, e2)) in spec.queries.jaccard.iter().enumerate() {
                if let Ok(pj) = referee.query_jaccard_partial(e1, e2) {
                    jaccard_samples.push(JaccardSample {
                        at: t,
                        pair: i,
                        jaccard: pj.estimate.jaccard,
                        coverage: pj.coverage(),
                    });
                }
            }
        }
    }

    // Final retransmit rounds under the retry budget, with resync
    // fallbacks re-keyed as fresh full frames.
    let mut retry_rounds = 0usize;
    let mut timeout = spec.faults.retry.initial_timeout.max(1);
    let timeout_cap = spec.faults.retry.max_timeout.max(timeout);
    loop {
        let needy: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, rt)| {
                rt.leave_at.is_none()
                    && ((rt.needs_reemit && !rt.pending.is_empty())
                        || matches!(
                            (&rt.last_frame, rt.pending.front()),
                            (Some((enc, _)), Some(&(gen, _))) if gen <= *enc
                        ))
            })
            .map(|(p, _)| p)
            .collect();
        if needy.is_empty() || retry_rounds + 1 >= spec.faults.retry.max_attempts {
            break;
        }
        retry_rounds += 1;
        for p in needy {
            let now = transport.now();
            let msg = if ps[p].needs_reemit {
                let msg = ps[p].dp.emit_frame();
                meta.entry((p, payload_fingerprint(&msg.payload)))
                    .or_insert(now);
                ps[p].last_frame = Some((now, msg.clone()));
                ps[p].last_emitted_items = ps[p].dp.sketch().items_observed();
                ps[p].needs_reemit = false;
                msg
            } else {
                ps[p].last_frame.clone().expect("checked above").1
            };
            ps[p].sends += 1;
            bytes_sent += msg.bytes() as u64;
            transport.send(msg);
        }
        let deadline = transport.now().saturating_add(timeout);
        let deliveries = transport.advance(deadline);
        absorb_frame_deliveries(
            &deliveries,
            &mut referee,
            &meta,
            &mut ps,
            &mut hist,
            &mut items_acked,
            &mut ack_rng,
            ack_drop,
            &mut delta_report,
        );
        timeout = timeout.saturating_mul(2).min(timeout_cap);
    }
    let stragglers = transport.drain();
    absorb_frame_deliveries(
        &stragglers,
        &mut referee,
        &meta,
        &mut ps,
        &mut hist,
        &mut items_acked,
        &mut ack_rng,
        ack_drop,
        &mut delta_report,
    );

    let rt = referee.delta_telemetry();
    delta_report.delta_frames = rt.delta_frames;
    delta_report.full_frames = rt.full_frames;
    delta_report.delta_bytes = rt.delta_bytes;
    delta_report.full_bytes = rt.full_bytes;
    delta_report.resyncs = rt.resyncs_requested;
    delta_report.acked_generations = (0..parties)
        .map(|p| referee.acked_generation(p).unwrap_or(0))
        .collect();
    delta_report.staleness_mean = if staleness_ticks == 0 {
        0.0
    } else {
        staleness_sum as f64 / staleness_ticks as f64
    };

    let senders = ps.iter().filter(|rt| rt.sends > 0).count();
    let heard = (0..parties).filter(|&p| referee.has_heard(p)).count();
    let party_coverage = if senders == 0 {
        1.0
    } else {
        heard as f64 / senders as f64
    };
    let item_coverage = if total_items == 0 {
        1.0
    } else {
        items_acked as f64 / total_items as f64
    };
    let final_estimate = referee.estimate_distinct().value;
    let truth = seen_exact.len() as u64;

    E2eReport {
        name: spec.name.clone(),
        parties,
        duration,
        total_items,
        items_acked,
        reports_sent,
        retry_rounds,
        latency: hist,
        party_coverage,
        item_coverage,
        final_estimate,
        truth,
        relative_error: gt_core::relative_error(final_estimate, truth as f64),
        distinct_samples,
        window_samples,
        expression_samples,
        jaccard_samples,
        transport: transport.telemetry(),
        referee: *referee.telemetry(),
        union_canonical: encode_sketch(referee.union_sketch()),
        bytes_sent,
        delta: Some(delta_report),
        run_wall: wall_start.elapsed(),
    }
}

// ---------------------------------------------------------------------
// Named scenarios
// ---------------------------------------------------------------------

/// The six named end-to-end scenarios experiment `e23` runs. `quick`
/// shrinks durations for CI (each scenario well under 2 s); full mode
/// runs 10× longer with the same structure.
pub fn named_suite(quick: bool) -> Vec<ScenarioSpec> {
    vec![
        steady_state(quick),
        flash_crowd(quick),
        churn_failover(quick),
        multi_tenant_zipf(quick),
        lossy_fan_in(quick),
        windowed_recency(quick),
    ]
}

fn scale(quick: bool, base: Tick) -> Tick {
    if quick {
        base
    } else {
        base * 10
    }
}

/// 8 parties, uniform traffic, perfect channel: the baseline. Expected
/// coverage 1.0 exactly.
pub fn steady_state(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("steady_state")
        .parties(8)
        .distinct_per_party(4_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E01)
        .sustained(4, d, 20)
        .query_every(100)
        .query_distinct()
        .build()
}

/// Mid-run flash crowd: the per-party rate jumps 8× for a quarter of
/// the run, stressing summary cadence and latency tails.
pub fn flash_crowd(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("flash_crowd")
        .parties(8)
        .distinct_per_party(4_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E02)
        .sustained(3, d, 20)
        .phase(d / 2, d * 3 / 4, 8.0)
        .query_every(100)
        .query_distinct()
        .build()
}

/// Mid-run churn: one graceful leave (parting summary ships), one
/// crash (tail items lost), one late join.
pub fn churn_failover(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("churn_failover")
        .parties(8)
        .distinct_per_party(4_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E03)
        .sustained(4, d, 20)
        .graceful_leave(2, d * 3 / 8)
        .crash(3, d / 2)
        .join(7, d / 2)
        .query_every(100)
        .query_distinct()
        .build()
}

/// 16 tenants with Zipf(1.1) skew: heavy duplication per tenant, the
/// regime where distinct counting diverges from counting.
pub fn multi_tenant_zipf(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 300);
    ScenarioSpec::builder("multi_tenant_zipf")
        .parties(16)
        .distinct_per_party(2_000)
        .overlap(0.2)
        .distribution(Distribution::Zipf(1.1))
        .workload_seed(0x000E_2E04)
        .sustained(3, d, 25)
        .query_every(100)
        .query_distinct()
        .build()
}

/// 32-party fan-in over a 5%-drop channel with stragglers and a retry
/// budget of 8 — the ISSUE's network-monitoring headline shape.
pub fn lossy_fan_in(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 300);
    ScenarioSpec::builder("lossy_fan_in")
        .parties(32)
        .distinct_per_party(2_000)
        .overlap(0.25)
        .workload_seed(0x000E_2E05)
        .sustained(2, d, 25)
        .transport(TransportSpec {
            drop_probability: 0.05,
            corrupt_probability: 0.01,
            base_latency: 2,
            jitter: 3,
            straggle_probability: 0.05,
            straggle_latency: 40,
            seed: 0x000E_2E05,
        })
        .retry(RetryPolicy::with_budget(8))
        .query_every(100)
        .query_distinct()
        .build()
}

/// Sliding-window recency queries over sustained traffic, scored
/// against the engine's exact recency oracle.
pub fn windowed_recency(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("windowed_recency")
        .parties(6)
        .distinct_per_party(3_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E06)
        .sustained(4, d, 20)
        .query_every(50)
        .query_distinct()
        .query_window(100)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn small_sustained() -> ScenarioSpec {
        ScenarioSpec::builder("small")
            .parties(4)
            .distinct_per_party(500)
            .overlap(0.25)
            .workload_seed(7)
            .sustained(3, 60, 10)
            .query_every(20)
            .query_distinct()
            .build()
    }

    #[test]
    fn sustained_reliable_run_acks_everything() {
        let report = run_sustained(&cfg(), 42, &small_sustained());
        assert_eq!(report.parties, 4);
        assert_eq!(report.duration, 60);
        assert_eq!(report.total_items, 4 * 3 * 60);
        assert_eq!(report.items_acked, report.total_items);
        assert_eq!(report.item_coverage, 1.0);
        assert_eq!(report.party_coverage, 1.0);
        assert!(report.reports_sent >= 4 * 6, "cumulative summary cadence");
        assert_eq!(report.retry_rounds, 0, "reliable channel needs no retries");
        assert_eq!(report.latency.count(), report.total_items);
        // Unit latency, report cadence 10: worst case an item waits 9
        // ticks for the next summary + 1 tick of transport.
        assert!(report.latency.p50() <= 10, "p50 {}", report.latency.p50());
        assert!(report.latency.max() <= 10, "max {}", report.latency.max());
        assert!(report.latency.p50() <= report.latency.p99());
        assert!(report.latency.p99() <= report.latency.p999());
        assert!(!report.distinct_samples.is_empty());
        let last = report.distinct_samples.last().unwrap();
        assert_eq!(last.parties_expected, 4);
        assert!(report.truth > 0);
        assert!(
            report.relative_error < 0.1,
            "err {} (estimate {} truth {})",
            report.relative_error,
            report.final_estimate,
            report.truth
        );
        assert!(!report.union_canonical.is_empty());
    }

    #[test]
    fn sustained_run_is_deterministic() {
        let a = run_sustained(&cfg(), 42, &small_sustained());
        let b = run_sustained(&cfg(), 42, &small_sustained());
        assert_eq!(a.determinism_key(), b.determinism_key());
        let c = run_sustained(&cfg(), 43, &small_sustained());
        assert_ne!(
            a.determinism_key().union_canonical,
            c.determinism_key().union_canonical,
            "different master seed must change the union bytes"
        );
    }

    #[test]
    fn flash_crowd_phase_multiplies_rate() {
        let base = ScenarioSpec::builder("base")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(3)
            .sustained(2, 40, 10)
            .build();
        let crowd = ScenarioSpec::builder("crowd")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(3)
            .sustained(2, 40, 10)
            .phase(20, 30, 5.0)
            .build();
        let r_base = run_sustained(&cfg(), 1, &base);
        let r_crowd = run_sustained(&cfg(), 1, &crowd);
        // 10 ticks at 5x instead of 1x: 2 parties * 2 rate * 10 * 4 extra.
        assert_eq!(r_base.total_items, 2 * 2 * 40);
        assert_eq!(r_crowd.total_items, r_base.total_items + 2 * 2 * 10 * 4);
        assert_eq!(r_crowd.item_coverage, 1.0);
    }

    #[test]
    fn churn_crash_loses_tail_items_exactly_once() {
        // Party 1 crashes mid-run right after a report tick: items it
        // generated after its last summary can never be acked, and its
        // last acked summary still counts exactly once.
        let spec = ScenarioSpec::builder("crash")
            .parties(2)
            .distinct_per_party(400)
            .workload_seed(9)
            .sustained(2, 40, 10)
            .crash(1, 35)
            .query_every(10)
            .query_distinct()
            .build();
        let report = run_sustained(&cfg(), 5, &spec);
        // Party 1 generated through tick 34; its last summary covered
        // through tick 30, so ticks 31..=34 (2 items each) are lost.
        assert_eq!(report.total_items, 2 * 2 * 40 - 2 * 6);
        assert_eq!(report.items_acked, report.total_items - 2 * 4);
        assert!(report.item_coverage < 1.0);
        assert_eq!(report.party_coverage, 1.0, "the crashed party was heard");
        let t = report.referee;
        assert_eq!(t.accepted, 2, "each party counted exactly once");
    }

    #[test]
    fn churn_join_starts_late() {
        let spec = ScenarioSpec::builder("join")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(11)
            .sustained(2, 40, 10)
            .join(1, 21)
            .build();
        let report = run_sustained(&cfg(), 5, &spec);
        // Party 0: 40 ticks; party 1: ticks 21..=40 only.
        assert_eq!(report.total_items, 2 * 40 + 2 * 20);
        assert_eq!(report.item_coverage, 1.0);
    }

    #[test]
    fn graceful_leave_ships_parting_summary() {
        // Leave at a tick that is NOT on the report cadence: without the
        // parting summary the tail would be lost.
        let spec = ScenarioSpec::builder("leave")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(13)
            .sustained(2, 40, 10)
            .graceful_leave(1, 27)
            .build();
        let report = run_sustained(&cfg(), 5, &spec);
        // Party 1 generates ticks 1..=26 and flushes at 27.
        assert_eq!(report.total_items, 2 * 40 + 2 * 26);
        assert_eq!(report.item_coverage, 1.0, "parting summary covers the tail");
    }

    #[test]
    fn lossy_channel_retries_recover_coverage() {
        let lossy = TransportSpec {
            jitter: 0,
            straggle_probability: 0.0,
            ..TransportSpec::lossy(0.4, 0x1055)
        };
        let build = |retry: RetryPolicy| {
            ScenarioSpec::builder("lossy")
                .parties(6)
                .distinct_per_party(400)
                .workload_seed(17)
                .sustained(2, 60, 15)
                .transport(lossy)
                .retry(retry)
                .build()
        };
        let one_shot = run_sustained(&cfg(), 3, &build(RetryPolicy::one_shot()));
        let retried = run_sustained(&cfg(), 3, &build(RetryPolicy::with_budget(8)));
        assert!(one_shot.transport.dropped > 0, "p=0.4 must drop summaries");
        assert!(
            retried.item_coverage >= one_shot.item_coverage,
            "retries cannot reduce coverage"
        );
        assert_eq!(
            retried.item_coverage, 1.0,
            "budget 8 at p=0.4 recovers the final summaries"
        );
        assert!(retried.retry_rounds > 0 || one_shot.item_coverage == 1.0);
    }

    #[test]
    fn window_queries_track_the_exact_recency_oracle() {
        let spec = ScenarioSpec::builder("window")
            .parties(3)
            .distinct_per_party(500)
            .workload_seed(19)
            .sustained(4, 80, 10)
            .query_every(20)
            .query_window(30)
            .build();
        let report = run_sustained(&cfg(), 7, &spec);
        assert!(!report.window_samples.is_empty());
        for s in &report.window_samples {
            assert_eq!(s.window, 30);
            assert!(s.truth > 0, "traffic flowed in every window");
            let err = (s.estimate - s.truth as f64).abs() / s.truth as f64;
            assert!(
                err < 0.25,
                "tick {}: est {} truth {}",
                s.at,
                s.estimate,
                s.truth
            );
        }
    }

    #[test]
    fn expression_and_jaccard_samples_report_coverage() {
        let spec = ScenarioSpec::builder("expr")
            .parties(3)
            .distinct_per_party(400)
            .overlap(0.5)
            .workload_seed(23)
            .sustained(3, 60, 10)
            .query_every(30)
            .query_expr(SetExpr::leaf(0).union(SetExpr::leaf(1)))
            .query_jaccard(SetExpr::leaf(0), SetExpr::leaf(2))
            .build();
        let report = run_sustained(&cfg(), 9, &spec);
        assert!(!report.expression_samples.is_empty());
        assert!(!report.jaccard_samples.is_empty());
        let last_e = report.expression_samples.last().unwrap();
        assert_eq!(last_e.coverage, 1.0);
        assert!(last_e.estimate > 0.0);
        let last_j = report.jaccard_samples.last().unwrap();
        assert_eq!(last_j.coverage, 1.0);
        assert!(last_j.jaccard > 0.0 && last_j.jaccard < 1.0);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.p50(), 0);
        h.record(1, 50);
        h.record(2, 49);
        h.record(100, 1);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 2);
        assert_eq!(h.p999(), 100);
        assert_eq!(h.max(), 100);
        assert!(h.mean() > 1.0 && h.mean() < 3.0);
        // Clamp: huge latencies land in the overflow bucket.
        h.record(1 << 40, 1);
        assert_eq!(h.max(), 1 << 40);
        assert_eq!(h.quantile(1.0), LATENCY_CLAMP);
    }

    #[test]
    fn dispatch_routes_by_spec_shape() {
        let config = cfg();
        let classic = ScenarioSpec::builder("c").parties(2).batch(500).build();
        assert!(matches!(
            run_spec(&config, 1, &classic),
            ScenarioOutcome::Classic(_)
        ));
        let resilient = ScenarioSpec::builder("r")
            .parties(2)
            .batch(500)
            .transport(TransportSpec::reliable(1))
            .build();
        assert!(matches!(
            run_spec(&config, 1, &resilient),
            ScenarioOutcome::Resilient(_)
        ));
        let expr = ScenarioSpec::builder("e")
            .parties(2)
            .batch(500)
            .query_expr(SetExpr::leaf(0))
            .build();
        assert!(matches!(
            run_spec(&config, 1, &expr),
            ScenarioOutcome::Expression(_)
        ));
        let live = ScenarioSpec::builder("l")
            .parties(2)
            .batch(500)
            .ingest(IngestMode::SharedConcurrent {
                writer_threshold: 100,
            })
            .build();
        assert!(matches!(
            run_spec(&config, 1, &live),
            ScenarioOutcome::Live(_)
        ));
        let sustained = ScenarioSpec::builder("s")
            .parties(2)
            .sustained(2, 20, 5)
            .build();
        assert!(matches!(
            run_spec(&config, 1, &sustained),
            ScenarioOutcome::Sustained(_)
        ));
    }

    #[test]
    fn sequential_ingest_matches_threaded_state() {
        let spec = ScenarioSpec::builder("seq")
            .parties(4)
            .distinct_per_party(2_000)
            .batch(5_000)
            .ingest(IngestMode::Sequential)
            .build();
        let config = cfg();
        let streams = spec.workload.to_workload_spec(4).generate();
        let seq = run_classic_engine(&config, 3, &streams, IngestMode::Sequential);
        let thr = run_classic_engine(&config, 3, &streams, IngestMode::PerPartyThreads);
        assert_eq!(seq.estimate, thr.estimate);
        assert_eq!(seq.truth, thr.truth);
        assert_eq!(seq.total_bytes, thr.total_bytes);
        assert_eq!(
            seq.referee_telemetry.accepted,
            thr.referee_telemetry.accepted
        );
        // Sequential mode is one batch, always.
        assert_eq!(seq.referee_telemetry.batches, 1);
    }

    #[test]
    fn named_suite_has_six_distinct_scenarios() {
        let suite = named_suite(true);
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "scenario names must be unique");
        for spec in &suite {
            assert!(matches!(spec.workload.load, LoadShape::Sustained { .. }));
            assert!(spec.queries.distinct, "every scenario samples distinct");
        }
    }

    #[test]
    #[should_panic(expected = "phase() requires sustained load")]
    fn phase_on_batch_load_panics() {
        let _ = ScenarioSpec::builder("bad").phase(0, 10, 2.0);
    }

    #[test]
    #[should_panic(expected = "churn event references party")]
    fn churn_out_of_range_panics() {
        let _ = ScenarioSpec::builder("bad").parties(2).crash(5, 10).build();
    }

    // ---- delta plane (continuous-monitoring engine) ----

    fn delta_spec() -> ScenarioSpec {
        ScenarioSpec::builder("delta_small")
            .parties(4)
            .distinct_per_party(500)
            .overlap(0.25)
            .workload_seed(7)
            .sustained(3, 60, 10)
            .query_every(20)
            .query_distinct()
            .delta_plane()
            .build()
    }

    #[test]
    fn delta_plane_matches_full_reship_union_and_cuts_bytes() {
        let full = run_sustained(&cfg(), 42, &small_sustained());
        let delta = run_continuous(&cfg(), 42, &delta_spec());
        // Same workload seed, both at full coverage: the final unions
        // hold the same samples at the same levels, so the estimates are
        // bit-for-bit equal. (Canonical bytes differ only in per-trial
        // item counters: the classic engine absorb-merges every cumulative
        // re-ship while the delta plane stays exactly-once; the engine's
        // built-in oracle covers the bitwise claim against a fresh ship.)
        assert_eq!(delta.item_coverage, 1.0);
        assert_eq!(delta.final_estimate.to_bits(), full.final_estimate.to_bits());
        assert_eq!(delta.truth, full.truth);
        let d = delta.delta.as_ref().expect("delta engine reports stats");
        assert_eq!(d.oracle_failures, 0);
        assert!(d.oracle_checks > 0, "the oracle must actually run");
        assert_eq!(d.resyncs, 0, "reliable channel never resyncs");
        assert_eq!(d.full_frames, 4, "one initial full frame per party");
        assert!(d.delta_frames > 0);
        // The communication claim, in miniature: shipping deltas beats
        // re-shipping cumulative summaries on the same traffic.
        assert!(
            delta.bytes_sent < full.bytes_sent,
            "delta {} full {}",
            delta.bytes_sent,
            full.bytes_sent
        );
    }

    #[test]
    fn delta_plane_is_deterministic_under_faults() {
        let spec = ScenarioSpec::builder("delta_faulty")
            .parties(4)
            .distinct_per_party(400)
            .overlap(0.2)
            .workload_seed(11)
            .sustained(3, 80, 10)
            .transport(TransportSpec::lossy(0.2, 0xFA17))
            .retry(RetryPolicy {
                ack_drop_probability: 0.2,
                ..RetryPolicy::with_budget(6)
            })
            .query_every(20)
            .query_distinct()
            .delta_plane()
            .build();
        let a = run_continuous(&cfg(), 42, &spec);
        let b = run_continuous(&cfg(), 42, &spec);
        assert_eq!(a.determinism_key(), b.determinism_key());
        let d = a.delta.as_ref().unwrap();
        assert_eq!(d.oracle_failures, 0, "dup/reorder/loss must not corrupt");
        assert!(d.acks_sent > 0);
    }

    #[test]
    fn delta_plane_windowed_queries_answer_from_the_referee() {
        // Under-capacity and cadence-aligned: at every query tick the
        // referee has just applied fresh frames, so the distributed
        // window answer is exact.
        let spec = ScenarioSpec::builder("delta_window")
            .parties(2)
            .distinct_per_party(150)
            .overlap(0.0)
            .distribution(Distribution::EachOnce)
            .workload_seed(3)
            .sustained(5, 40, 4)
            .query_every(4)
            .query_window(8)
            .build();
        let spec = ScenarioSpec {
            reporting: ReportingMode::DeltaPlane,
            ..spec
        };
        let report = run_continuous(&cfg(), 42, &spec);
        assert!(!report.window_samples.is_empty());
        for s in &report.window_samples {
            assert_eq!(
                s.estimate, s.truth as f64,
                "window at {} estimate {} truth {}",
                s.at, s.estimate, s.truth
            );
        }
        let d = report.delta.as_ref().unwrap();
        assert_eq!(d.oracle_failures, 0);
        assert_eq!(d.staleness_max, 0, "cadence-aligned queries are fresh");
    }

    #[test]
    fn run_spec_dispatches_delta_plane() {
        match run_spec(&cfg(), 42, &delta_spec()) {
            ScenarioOutcome::Sustained(r) => {
                assert!(r.delta.is_some(), "delta plane must report its stats")
            }
            other => panic!("expected sustained outcome, got {other:?}"),
        }
    }

    // ---- tree-depth knob ----

    #[test]
    fn tree_fanout_derivation_is_exact() {
        assert_eq!(tree_fanout_for_depth(9, 2), 3);
        assert_eq!(tree_fanout_for_depth(4, 2), 2);
        assert_eq!(tree_fanout_for_depth(8, 3), 2);
        assert_eq!(tree_fanout_for_depth(27, 3), 3);
        assert_eq!(tree_fanout_for_depth(5, 1), 5);
        assert_eq!(tree_fanout_for_depth(2, 4), 2);
    }

    #[test]
    fn depth_two_tree_union_is_bitwise_identical_to_flat() {
        let config = cfg();
        let wl = WorkloadSpec {
            parties: 9,
            distinct_per_party: 600,
            overlap: 0.3,
            items_per_party: 2_000,
            distribution: Distribution::Uniform,
            seed: 5,
        };
        let streams = wl.generate();
        // Flat union at a single referee.
        let mut referee = Referee::new(&config, 42);
        let mut messages = Vec::new();
        for (id, stream) in streams.streams.iter().enumerate() {
            let mut party = Party::new(id, &config, 42);
            party.observe_stream(stream);
            let msg = party.finish();
            messages.push(msg.clone());
            referee.receive(&msg).unwrap();
        }
        let flat = encode_sketch(referee.union_sketch());
        // Depth-2 tree over the same messages, same seed.
        let fanout = tree_fanout_for_depth(9, 2);
        let tree = crate::topology::aggregate_tree(&config, 42, messages, fanout).unwrap();
        assert_eq!(tree.tiers, 2);
        assert_eq!(tree.root_canonical, flat, "tree reassociation is lossless");
    }

    #[test]
    fn tree_depth_spec_matches_flat_classic_run() {
        let base = ScenarioSpec::builder("flat")
            .parties(6)
            .ingest(IngestMode::Sequential)
            .distinct_per_party(400)
            .overlap(0.25)
            .workload_seed(9)
            .batch(1_500)
            .build();
        let tree = ScenarioSpec::builder("tree")
            .parties(6)
            .ingest(IngestMode::Sequential)
            .tree_depth(2)
            .distinct_per_party(400)
            .overlap(0.25)
            .workload_seed(9)
            .batch(1_500)
            .build();
        let (flat_rep, tree_rep) = match (run_spec(&cfg(), 42, &base), run_spec(&cfg(), 42, &tree))
        {
            (ScenarioOutcome::Classic(a), ScenarioOutcome::Classic(b)) => (a, b),
            other => panic!("expected classic outcomes, got {other:?}"),
        };
        assert_eq!(flat_rep.estimate.to_bits(), tree_rep.estimate.to_bits());
        assert_eq!(flat_rep.truth, tree_rep.truth);
    }
}
