//! Declarative end-to-end scenario harness: topology × workload × fault
//! plan × query plan, executed through the whole stack.
//!
//! A [`ScenarioSpec`] is plain data describing an end-to-end run —
//! "32-party fan-in, Zipf multi-tenant traffic, 5% drop with retries,
//! flash crowd at t=150, party churn at t=200, live distinct + windowed
//! queries every 100 ticks" is ~15 lines of [`ScenarioBuilder`] calls.
//! [`run_spec`] dispatches the spec to one of five engines:
//!
//! * **Classic** — the paper's one-shot model: batch streams, perfect
//!   channel, a single end-of-stream message per party.
//! * **Resilient** — batch streams over a faulty [`TransportSpec`]
//!   channel with a retrying collector.
//! * **Expression** — batch streams plus set-expression / Jaccard
//!   queries against the referee's retained per-party summaries.
//! * **Live** — batch streams ingested concurrently through a shared
//!   [`gt_core::ConcurrentSketch`] while queries are served mid-flight.
//! * **Sustained** — the new engine of this module: a sustained-rate
//!   load generator on the virtual clock ([`Tick`]), with per-item
//!   admission→queryable latency recorded against that clock, live
//!   degraded-mode queries on a fixed cadence, mid-run party churn, and
//!   an [`E2eReport`] (throughput, p50/p99/p999 latency, coverage under
//!   degradation, transport/referee telemetry) at the end.
//!
//! The four legacy `run_*_scenario` entry points in [`crate::runner`]
//! are thin wrappers over builder instances dispatched through this
//! module — pinned behavior-equivalent by `tests/scenario_regression.rs`.
//!
//! ## Latency definition
//!
//! An item generated at virtual tick `g` becomes **queryable** at the
//! delivery tick `d` of the first summary accepted by the referee whose
//! encode tick `e ≥ g` (summaries are cumulative, so acceptance of a
//! later summary also admits earlier items). Its end-to-end latency is
//! `d − g` ticks. No wall clock is consulted anywhere in the sustained
//! engine: same spec + same seeds ⇒ bitwise-identical referee state,
//! telemetry counts, and latency histograms (property-tested in
//! `tests/scenario_determinism.rs`).
//!
//! ## Determinism contract
//!
//! The sustained engine is single-threaded by construction and every
//! stochastic choice (workload draws, channel fates) is owned by a
//! seeded [`SmallRng`]. `IngestMode::Sequential` batch runs are likewise
//! deterministic. `IngestMode::PerPartyThreads` and `SharedConcurrent`
//! batch runs produce schedule-independent *state* (canonical union
//! bytes, exactly-once counters) but timing-shaped telemetry (batch
//! counts, phase durations) may vary run to run.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gt_core::{DistinctSketch, SetExpr, SketchConfig, SlidingWindowSketch};

use crate::codec::{encode_sketch, payload_fingerprint};
use crate::collector::{Collector, RetryPolicy};
use crate::oracle::StreamOracle;
use crate::party::{Party, PartyMessage};
use crate::referee::{Receipt, Referee, RefereeTelemetry};
use crate::runner::{
    ExpressionQueryOutcome, ExpressionScenarioReport, JaccardQueryOutcome, LiveQueryReport,
    LiveQuerySample, PartyPhases, ResilientReport, ScenarioReport,
};
use crate::transport::{Delivery, Tick, Transport, TransportSpec, TransportTelemetry};
use crate::workload::{Distribution, StreamSet, WorkloadSpec, ZipfSampler};

/// Latencies above this many ticks share one overflow bucket in the
/// [`LatencyHistogram`]; quantiles saturate here.
pub const LATENCY_CLAMP: Tick = 4096;

// ---------------------------------------------------------------------
// Spec types (plain data)
// ---------------------------------------------------------------------

/// How parties feed their streams into the system (batch engines only;
/// the sustained engine is single-threaded by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestMode {
    /// One OS thread per party, referee pipelined on the caller's thread
    /// (the legacy [`crate::runner::run_scenario`] shape).
    PerPartyThreads,
    /// Parties observe serially in id order and the referee receives one
    /// batch of all messages — fully deterministic, for replay tests.
    Sequential,
    /// All parties write into one shared [`gt_core::ConcurrentSketch`]
    /// while queries are served from snapshots (the legacy
    /// [`crate::runner::run_live_query_scenario`] shape).
    SharedConcurrent {
        /// Writer-local buffer threshold before propagation.
        writer_threshold: u64,
    },
}

/// Who participates and how they ingest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologySpec {
    /// Number of parties (streams).
    pub parties: usize,
    /// Ingest mode for batch engines.
    pub ingest: IngestMode,
}

/// A rate-multiplier window for the sustained engine: between `from`
/// (inclusive) and `until` (exclusive) each party's per-tick rate is
/// scaled by `rate_multiplier` (a flash crowd is `8.0`, a lull `0.25`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadPhase {
    /// First tick the multiplier applies to.
    pub from: Tick,
    /// First tick past the window.
    pub until: Tick,
    /// Factor applied to the base per-party rate.
    pub rate_multiplier: f64,
}

/// How much traffic arrives, and in what shape.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadShape {
    /// The paper's model: each party's whole stream exists up front and
    /// is shipped as one end-of-stream summary.
    Batch {
        /// Items drawn per party (ignored by [`Distribution::EachOnce`]).
        items_per_party: u64,
    },
    /// Continuous traffic on the virtual clock: every alive party draws
    /// `rate_per_party` items per tick (scaled by any matching
    /// [`LoadPhase`]) and ships a cumulative summary every
    /// `report_every` ticks.
    Sustained {
        /// Base items per party per tick.
        rate_per_party: u64,
        /// Total virtual ticks to run.
        duration: Tick,
        /// Summary cadence, in ticks.
        report_every: Tick,
        /// Rate-multiplier windows (first match wins; default ×1).
        phases: Vec<LoadPhase>,
    },
}

/// The traffic's label structure plus its [`LoadShape`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPlan {
    /// Distinct labels in each party's sub-universe.
    pub distinct_per_party: u64,
    /// Fraction of each party's sub-universe shared with all parties.
    pub overlap: f64,
    /// Draw distribution. In the sustained engine
    /// [`Distribution::EachOnce`] cycles the sub-universe in order.
    pub distribution: Distribution,
    /// Workload seed (independent of sketch seeds).
    pub seed: u64,
    /// Batch or sustained load.
    pub load: LoadShape,
}

impl WorkloadPlan {
    /// The equivalent [`WorkloadSpec`] for `parties` parties
    /// (`items_per_party` is 0 for sustained load — the engine draws
    /// incrementally instead of pre-generating).
    pub fn to_workload_spec(&self, parties: usize) -> WorkloadSpec {
        WorkloadSpec {
            parties,
            distinct_per_party: self.distinct_per_party,
            overlap: self.overlap,
            items_per_party: match self.load {
                LoadShape::Batch { items_per_party } => items_per_party,
                LoadShape::Sustained { .. } => 0,
            },
            distribution: self.distribution,
            seed: self.seed,
        }
    }
}

/// What happens to one party mid-run (sustained engine only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// The party stops generating at `at` but ships a parting summary
    /// first (failover done right).
    GracefulLeave,
    /// The party stops generating at `at` and ships nothing further;
    /// items not covered by an earlier summary are lost.
    Crash,
    /// The party is inactive before `at` and starts generating at `at`.
    Join,
}

/// One churn event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Which party.
    pub party: usize,
    /// Virtual tick of the event.
    pub at: Tick,
    /// What happens.
    pub kind: ChurnKind,
}

/// Channel faults, retry budget, and churn.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Simulated channel; `None` means a direct in-process channel for
    /// batch engines and a reliable channel for the sustained engine.
    pub transport: Option<TransportSpec>,
    /// Retry behaviour (resilient collector rounds / sustained-engine
    /// final retransmit rounds).
    pub retry: RetryPolicy,
    /// Mid-run churn (sustained engine only; batch engines ignore it).
    pub churn: Vec<ChurnEvent>,
}

/// Which live queries run, and how often.
#[derive(Clone, Debug, Default)]
pub struct QueryPlan {
    /// Query cadence in ticks (sustained engine; 0 = every tick).
    pub every: Tick,
    /// Sample `estimate_distinct_partial` each cadence tick.
    pub distinct: bool,
    /// Sample a sliding-window distinct count over the last `w` ticks.
    pub window: Option<Tick>,
    /// Set expressions evaluated via `query_partial` (leaves are party
    /// ids).
    pub expressions: Vec<SetExpr>,
    /// Expression pairs evaluated via `query_jaccard_partial`.
    pub jaccard: Vec<(SetExpr, SetExpr)>,
}

/// A complete end-to-end scenario: topology × workload × fault plan ×
/// query plan, all plain data. Build one with [`ScenarioSpec::builder`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (report and JSON key).
    pub name: String,
    /// Who participates and how they ingest.
    pub topology: TopologySpec,
    /// Traffic structure and load shape.
    pub workload: WorkloadPlan,
    /// Channel faults, retries, churn.
    pub faults: FaultPlan,
    /// Live query plan.
    pub queries: QueryPlan,
}

impl ScenarioSpec {
    /// Start building a scenario with sane defaults: 4 parties,
    /// per-party-thread ingest, 1 000 distinct labels each at 25 %
    /// overlap, uniform draws, batch load of 5 000 items per party, no
    /// faults, no queries.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            spec: ScenarioSpec {
                name: name.into(),
                topology: TopologySpec {
                    parties: 4,
                    ingest: IngestMode::PerPartyThreads,
                },
                workload: WorkloadPlan {
                    distinct_per_party: 1_000,
                    overlap: 0.25,
                    distribution: Distribution::Uniform,
                    seed: 0xBEEF,
                    load: LoadShape::Batch {
                        items_per_party: 5_000,
                    },
                },
                faults: FaultPlan {
                    transport: None,
                    retry: RetryPolicy::one_shot(),
                    churn: Vec::new(),
                },
                queries: QueryPlan::default(),
            },
        }
    }
}

/// Fluent builder for [`ScenarioSpec`]. Every method returns `self`.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Number of parties.
    pub fn parties(mut self, parties: usize) -> Self {
        self.spec.topology.parties = parties;
        self
    }

    /// Batch ingest mode.
    pub fn ingest(mut self, mode: IngestMode) -> Self {
        self.spec.topology.ingest = mode;
        self
    }

    /// Distinct labels per party.
    pub fn distinct_per_party(mut self, n: u64) -> Self {
        self.spec.workload.distinct_per_party = n;
        self
    }

    /// Shared-universe overlap fraction.
    pub fn overlap(mut self, overlap: f64) -> Self {
        self.spec.workload.overlap = overlap;
        self
    }

    /// Draw distribution.
    pub fn distribution(mut self, d: Distribution) -> Self {
        self.spec.workload.distribution = d;
        self
    }

    /// Workload seed.
    pub fn workload_seed(mut self, seed: u64) -> Self {
        self.spec.workload.seed = seed;
        self
    }

    /// Copy parties, universe structure, distribution, seed, and batch
    /// size from an existing [`WorkloadSpec`] — how the legacy runner
    /// wrappers become builder instances.
    pub fn from_workload(mut self, wl: &WorkloadSpec) -> Self {
        self.spec.topology.parties = wl.parties;
        self.spec.workload.distinct_per_party = wl.distinct_per_party;
        self.spec.workload.overlap = wl.overlap;
        self.spec.workload.distribution = wl.distribution;
        self.spec.workload.seed = wl.seed;
        self.spec.workload.load = LoadShape::Batch {
            items_per_party: wl.items_per_party,
        };
        self
    }

    /// Batch load: each party's whole stream exists up front.
    pub fn batch(mut self, items_per_party: u64) -> Self {
        self.spec.workload.load = LoadShape::Batch { items_per_party };
        self
    }

    /// Sustained load: `rate` items per party per tick for `duration`
    /// ticks, shipping cumulative summaries every `report_every` ticks.
    pub fn sustained(mut self, rate: u64, duration: Tick, report_every: Tick) -> Self {
        self.spec.workload.load = LoadShape::Sustained {
            rate_per_party: rate,
            duration,
            report_every,
            phases: Vec::new(),
        };
        self
    }

    /// Add a rate-multiplier window to a sustained load (panics on batch
    /// load — call [`ScenarioBuilder::sustained`] first).
    pub fn phase(mut self, from: Tick, until: Tick, rate_multiplier: f64) -> Self {
        match &mut self.spec.workload.load {
            LoadShape::Sustained { phases, .. } => phases.push(LoadPhase {
                from,
                until,
                rate_multiplier,
            }),
            LoadShape::Batch { .. } => panic!("phase() requires sustained load"),
        }
        self
    }

    /// Route messages through a simulated faulty channel.
    pub fn transport(mut self, spec: TransportSpec) -> Self {
        self.spec.faults.transport = Some(spec);
        self
    }

    /// Retry policy for the collection plane.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.spec.faults.retry = policy;
        self
    }

    /// Party `party` joins (starts generating) at tick `at`.
    pub fn join(mut self, party: usize, at: Tick) -> Self {
        self.spec.faults.churn.push(ChurnEvent {
            party,
            at,
            kind: ChurnKind::Join,
        });
        self
    }

    /// Party `party` leaves gracefully at tick `at` (parting summary
    /// shipped first).
    pub fn graceful_leave(mut self, party: usize, at: Tick) -> Self {
        self.spec.faults.churn.push(ChurnEvent {
            party,
            at,
            kind: ChurnKind::GracefulLeave,
        });
        self
    }

    /// Party `party` crashes at tick `at` (nothing further is shipped).
    pub fn crash(mut self, party: usize, at: Tick) -> Self {
        self.spec.faults.churn.push(ChurnEvent {
            party,
            at,
            kind: ChurnKind::Crash,
        });
        self
    }

    /// Live-query cadence in ticks.
    pub fn query_every(mut self, every: Tick) -> Self {
        self.spec.queries.every = every;
        self
    }

    /// Sample the degraded-mode distinct estimate each cadence tick.
    pub fn query_distinct(mut self) -> Self {
        self.spec.queries.distinct = true;
        self
    }

    /// Sample a sliding-window distinct count over the last `window`
    /// ticks each cadence tick.
    pub fn query_window(mut self, window: Tick) -> Self {
        self.spec.queries.window = Some(window);
        self
    }

    /// Add a set-expression query (leaves are party ids).
    pub fn query_expr(mut self, expr: SetExpr) -> Self {
        self.spec.queries.expressions.push(expr);
        self
    }

    /// Add a Jaccard query between two expressions.
    pub fn query_jaccard(mut self, e1: SetExpr, e2: SetExpr) -> Self {
        self.spec.queries.jaccard.push((e1, e2));
        self
    }

    /// Finish: validate and return the spec.
    pub fn build(self) -> ScenarioSpec {
        let spec = self.spec;
        assert!(spec.topology.parties > 0, "need at least one party");
        assert!(
            spec.workload.distinct_per_party > 0,
            "need a non-empty universe"
        );
        for ev in &spec.faults.churn {
            assert!(
                ev.party < spec.topology.parties,
                "churn event references party {} of {}",
                ev.party,
                spec.topology.parties
            );
        }
        spec
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// What a [`ScenarioSpec`] produced, by engine.
#[derive(Clone, Debug)]
pub enum ScenarioOutcome {
    /// One-shot batch run over a perfect channel.
    Classic(ScenarioReport),
    /// Batch run through the faulty-channel retrying collector.
    Resilient(ResilientReport),
    /// Batch run answering set-expression / Jaccard queries.
    Expression(ExpressionScenarioReport),
    /// Concurrent-ingest run serving queries mid-flight.
    Live(LiveQueryReport),
    /// Sustained-rate run on the virtual clock.
    Sustained(Box<E2eReport>),
}

/// Run a spec end to end, generating its streams from the workload plan.
///
/// Dispatch: sustained load → the sustained engine; batch load with
/// [`IngestMode::SharedConcurrent`] → live engine; batch load with a
/// transport → resilient engine; batch load with expression or Jaccard
/// queries → expression engine; otherwise the classic engine.
pub fn run_spec(config: &SketchConfig, master_seed: u64, spec: &ScenarioSpec) -> ScenarioOutcome {
    run_spec_on(config, master_seed, spec, None)
}

/// [`run_spec`] with an optional pre-generated stream set for batch
/// engines (must have one stream per party). The sustained engine
/// always draws incrementally and ignores `streams`.
pub fn run_spec_on(
    config: &SketchConfig,
    master_seed: u64,
    spec: &ScenarioSpec,
    streams: Option<&StreamSet>,
) -> ScenarioOutcome {
    match &spec.workload.load {
        LoadShape::Sustained { .. } => {
            ScenarioOutcome::Sustained(Box::new(run_sustained(config, master_seed, spec)))
        }
        LoadShape::Batch { .. } => {
            let generated;
            let streams = match streams {
                Some(s) => s,
                None => {
                    generated = spec
                        .workload
                        .to_workload_spec(spec.topology.parties)
                        .generate();
                    &generated
                }
            };
            assert_eq!(
                streams.streams.len(),
                spec.topology.parties,
                "stream set does not match the topology"
            );
            if let IngestMode::SharedConcurrent { writer_threshold } = spec.topology.ingest {
                return ScenarioOutcome::Live(run_live_engine(
                    config,
                    master_seed,
                    streams,
                    writer_threshold,
                ));
            }
            if let Some(tspec) = spec.faults.transport {
                return ScenarioOutcome::Resilient(run_resilient_engine(
                    config,
                    master_seed,
                    streams,
                    tspec,
                    spec.faults.retry,
                ));
            }
            if !spec.queries.expressions.is_empty() || !spec.queries.jaccard.is_empty() {
                return ScenarioOutcome::Expression(run_expression_engine(
                    config,
                    master_seed,
                    streams,
                    &spec.queries.expressions,
                    &spec.queries.jaccard,
                ));
            }
            ScenarioOutcome::Classic(run_classic_engine(
                config,
                master_seed,
                streams,
                spec.topology.ingest,
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Batch engines (moved here from crate::runner; the legacy entry points
// are now thin wrappers over builder instances dispatched above)
// ---------------------------------------------------------------------

/// Classic one-shot engine. `PerPartyThreads` runs one OS thread per
/// party with the referee pipelined on the caller's thread;
/// `Sequential` observes parties in id order and hands the referee one
/// batch of all messages (deterministic telemetry for replay tests).
pub(crate) fn run_classic_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    ingest: IngestMode,
) -> ScenarioReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    let observe_start = Instant::now();
    let mut referee = Referee::new(config, master_seed);
    let mut bytes_per_party = vec![0usize; t];
    let mut party_phases = vec![PartyPhases::default(); t];
    let mut referee_busy = std::time::Duration::ZERO;

    match ingest {
        IngestMode::Sequential => {
            let mut batch: Vec<PartyMessage> = Vec::with_capacity(t);
            for (id, stream) in streams.streams.iter().enumerate() {
                let mut party = Party::new(id, config, master_seed);
                let observe_start = Instant::now();
                party.observe_stream(stream);
                let observe = observe_start.elapsed();
                let encode_start = Instant::now();
                let msg = party.finish();
                let encode = encode_start.elapsed();
                bytes_per_party[id] = msg.bytes();
                party_phases[id] = PartyPhases { observe, encode };
                batch.push(msg);
            }
            let busy_start = Instant::now();
            for outcome in referee.receive_batch(&batch) {
                outcome.expect("coordinated message must decode");
            }
            referee_busy += busy_start.elapsed();
        }
        IngestMode::PerPartyThreads | IngestMode::SharedConcurrent { .. } => {
            let (tx, rx) = crossbeam::channel::unbounded::<(PartyMessage, PartyPhases)>();
            crossbeam::scope(|scope| {
                for (id, stream) in streams.streams.iter().enumerate() {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        let mut party = Party::new(id, config, master_seed);
                        let observe_start = Instant::now();
                        party.observe_stream(stream);
                        let observe = observe_start.elapsed();
                        let encode_start = Instant::now();
                        let msg = party.finish();
                        let encode = encode_start.elapsed();
                        tx.send((msg, PartyPhases { observe, encode }))
                            .expect("referee hung up");
                    });
                }
                drop(tx);
                // Referee loop, pipelined: runs on this thread while
                // party threads are still observing; exits when every
                // sender is done. Messages that queued up while the
                // referee was busy are drained into one batch and
                // unioned through the tree-reduction batch path.
                let mut batch: Vec<PartyMessage> = Vec::with_capacity(t);
                while let Ok((msg, phases)) = rx.recv() {
                    let busy_start = Instant::now();
                    batch.clear();
                    bytes_per_party[msg.party_id] = msg.bytes();
                    party_phases[msg.party_id] = phases;
                    batch.push(msg);
                    while let Ok((msg, phases)) = rx.try_recv() {
                        bytes_per_party[msg.party_id] = msg.bytes();
                        party_phases[msg.party_id] = phases;
                        batch.push(msg);
                    }
                    for outcome in referee.receive_batch(&batch) {
                        outcome.expect("coordinated message must decode");
                    }
                    referee_busy += busy_start.elapsed();
                }
            })
            .expect("party thread panicked");
        }
    }
    let observe_wall = observe_start.elapsed();

    let estimate_start = Instant::now();
    let estimate = referee.estimate_distinct().value;
    let referee_time = referee_busy + estimate_start.elapsed();

    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct();
    let relative_error = gt_core::relative_error(estimate, truth as f64);

    ScenarioReport {
        estimate,
        truth,
        relative_error,
        parties: t,
        total_items: streams.total_items(),
        total_bytes: bytes_per_party.iter().sum(),
        bytes_per_party,
        party_phases,
        observe_wall,
        referee_telemetry: *referee.telemetry(),
        union_metrics: referee.union_metrics(),
        referee_time,
    }
}

/// Resilient engine: batch observation, then the retrying collection
/// plane over the faulty channel.
pub(crate) fn run_resilient_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    spec: TransportSpec,
    policy: RetryPolicy,
) -> ResilientReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    // Observation phase: one thread per party, as in the clean runner.
    let messages: Vec<PartyMessage> = crossbeam::scope(|scope| {
        let handles: Vec<_> = streams
            .streams
            .iter()
            .enumerate()
            .map(|(id, stream)| {
                scope.spawn(move |_| {
                    let mut party = Party::new(id, config, master_seed);
                    party.observe_stream(stream);
                    party.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect()
    })
    .expect("party thread panicked");

    // Collection phase: retrying plane over the faulty channel.
    let mut collector: Collector = Collector::new(config, master_seed, spec, policy);
    let collection = collector.collect(&messages);
    let referee = collector.into_referee();
    let partial = referee.estimate_distinct_partial(t);

    let full_oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let received_oracle = StreamOracle::of_streams(
        streams
            .streams
            .iter()
            .zip(&collection.per_party)
            .filter(|(_, p)| p.acked_at.is_some())
            .map(|(s, _)| s.as_slice()),
    );
    let full_truth = full_oracle.distinct();
    let received_truth = received_oracle.distinct();

    ResilientReport {
        collection,
        partial,
        full_truth,
        received_truth,
        error_vs_received: gt_core::relative_error(partial.estimate.value, received_truth as f64),
    }
}

/// Expression engine: serial observation, then set-expression and
/// Jaccard queries scored against the exact oracle.
pub(crate) fn run_expression_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    queries: &[SetExpr],
    jaccard_queries: &[(SetExpr, SetExpr)],
) -> ExpressionScenarioReport {
    let t = streams.streams.len();
    assert!(t > 0, "need at least one party");

    let mut referee = Referee::new(config, master_seed);
    for (id, stream) in streams.streams.iter().enumerate() {
        let mut party = Party::new(id, config, master_seed);
        party.observe_stream(stream);
        referee
            .receive(&party.finish())
            .expect("coordinated message must decode");
    }

    let sets: Vec<HashSet<u64>> = streams
        .streams
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect();

    let queries = queries
        .iter()
        .map(|expr| {
            let answer = referee.query(expr).expect("query references heard parties");
            let truth = expr
                .eval_exact(&sets)
                .expect("oracle shares the leaves")
                .len() as u64;
            // Union of every referenced stream: the additive contract's scale.
            let mut referenced: HashSet<u64> = HashSet::new();
            expr.for_each_leaf(&mut |i| referenced.extend(&sets[i]));
            let scale = config.epsilon() * referenced.len() as f64;
            let scaled_error = if scale == 0.0 {
                0.0
            } else {
                (answer.estimate.value - truth as f64).abs() / scale
            };
            ExpressionQueryOutcome {
                expr: expr.to_string(),
                depth: expr.depth(),
                answer,
                truth,
                scaled_error,
            }
        })
        .collect();

    let jaccard_queries = jaccard_queries
        .iter()
        .map(|(e1, e2)| {
            let answer = referee
                .query_jaccard(e1, e2)
                .expect("query references heard parties");
            let s1 = e1.eval_exact(&sets).expect("oracle shares the leaves");
            let s2 = e2.eval_exact(&sets).expect("oracle shares the leaves");
            let union = s1.union(&s2).count();
            let truth = if union == 0 {
                0.0
            } else {
                s1.intersection(&s2).count() as f64 / union as f64
            };
            JaccardQueryOutcome {
                exprs: (e1.to_string(), e2.to_string()),
                abs_error: (answer.jaccard - truth).abs(),
                answer,
                truth,
            }
        })
        .collect();

    ExpressionScenarioReport {
        queries,
        jaccard_queries,
        parties: t,
        total_items: streams.total_items(),
        epsilon: config.epsilon(),
    }
}

/// Live engine: concurrent writers into a shared sketch, queries served
/// from snapshots on the caller's thread the whole time.
pub(crate) fn run_live_engine(
    config: &SketchConfig,
    master_seed: u64,
    streams: &StreamSet,
    writer_threshold: u64,
) -> LiveQueryReport {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let t = streams.streams.len();
    assert!(t > 0, "need at least one writer");
    let total_items = streams.total_items();

    let shared = gt_core::ConcurrentSketch::new(config, master_seed);
    let writers_done = AtomicUsize::new(0);
    let mut samples: Vec<LiveQuerySample> = Vec::new();
    let mut snapshots_taken = 0u64;
    let mut monotone = true;

    let observe_start = Instant::now();
    crossbeam::scope(|scope| {
        for stream in &streams.streams {
            let shared = &shared;
            let writers_done = &writers_done;
            scope.spawn(move |_| {
                let mut writer = shared.writer_with_threshold(writer_threshold);
                writer.extend_slice(stream);
                drop(writer); // flush the tail before reporting done
                writers_done.fetch_add(1, Ordering::Release);
            });
        }
        // Query loop on this thread: serve estimates from snapshots while
        // writers run. Samples are recorded per *new epoch*; monotonicity
        // is tracked across every poll (count/ordering property, no
        // timing assumptions).
        let mut last_epoch = 0u64;
        let mut last_items = 0u64;
        loop {
            let done = writers_done.load(Ordering::Acquire) >= t;
            let snap = shared.snapshot();
            snapshots_taken += 1;
            if snap.epoch() < last_epoch || snap.items_observed() < last_items {
                monotone = false;
            }
            if snap.epoch() != last_epoch || (done && samples.is_empty()) {
                samples.push(LiveQuerySample {
                    epoch: snap.epoch(),
                    items_covered: snap.items_observed(),
                    estimate: snap.estimate_distinct().value,
                    coverage: if total_items == 0 {
                        1.0
                    } else {
                        snap.items_observed() as f64 / total_items as f64
                    },
                });
            }
            last_epoch = snap.epoch();
            last_items = snap.items_observed();
            if done {
                break;
            }
            std::thread::yield_now();
        }
    })
    .expect("writer thread panicked");
    let observe_wall = observe_start.elapsed();

    let final_snap = shared.snapshot();
    let final_estimate = final_snap.estimate_distinct().value;
    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let truth = oracle.distinct();

    LiveQueryReport {
        samples,
        snapshots_taken,
        monotone,
        final_estimate,
        truth,
        relative_error: gt_core::relative_error(final_estimate, truth as f64),
        final_epoch: final_snap.epoch(),
        parties: t,
        total_items,
        observe_wall,
        concurrent_metrics: shared.metrics_snapshot(),
    }
}

// ---------------------------------------------------------------------
// Sustained engine
// ---------------------------------------------------------------------

/// A tick-resolution latency histogram: bucket `i` counts items whose
/// admission→queryable latency was exactly `i` ticks (clamped at
/// [`LATENCY_CLAMP`]). Derives `Eq`, so same-seed replays can assert
/// bitwise-identical latency distributions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: Tick,
}

impl LatencyHistogram {
    /// Record `n` items at `latency` ticks.
    pub fn record(&mut self, latency: Tick, n: u64) {
        if n == 0 {
            return;
        }
        let idx = latency.min(LATENCY_CLAMP) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.max = self.max.max(latency);
    }

    /// Items recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest latency recorded (unclamped).
    pub fn max(&self) -> Tick {
        self.max
    }

    /// The smallest latency `L` such that at least `⌈q·count⌉` items had
    /// latency ≤ `L` (0 when empty; saturates at [`LATENCY_CLAMP`]).
    pub fn quantile(&self, q: f64) -> Tick {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return i as Tick;
            }
        }
        LATENCY_CLAMP
    }

    /// Median latency in ticks.
    pub fn p50(&self) -> Tick {
        self.quantile(0.50)
    }

    /// 99th-percentile latency in ticks.
    pub fn p99(&self) -> Tick {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency in ticks.
    pub fn p999(&self) -> Tick {
        self.quantile(0.999)
    }

    /// Mean latency in ticks (clamped items count at the clamp).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| i as u64 * b)
            .sum();
        sum as f64 / self.count as f64
    }
}

/// One degraded-mode distinct sample from the query plan.
#[derive(Clone, Copy, Debug)]
pub struct DistinctSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// `estimate_distinct_partial` point estimate.
    pub estimate: f64,
    /// Parties heard at query time.
    pub parties_heard: usize,
    /// Parties active (joined) at query time.
    pub parties_expected: usize,
    /// `parties_heard / parties_expected` (1 when none expected).
    pub coverage: f64,
}

/// One sliding-window distinct sample: the estimate over the last
/// `window` ticks against the engine's exact recency oracle.
#[derive(Clone, Copy, Debug)]
pub struct WindowSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// Window width in ticks.
    pub window: Tick,
    /// Merged sliding-window estimate over all parties.
    pub estimate: f64,
    /// Exact count of labels last seen in `(at − window, at]`.
    pub truth: u64,
}

/// One set-expression sample (`query_partial`).
#[derive(Clone, Copy, Debug)]
pub struct ExpressionSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// Index into [`QueryPlan::expressions`].
    pub query: usize,
    /// Point estimate.
    pub estimate: f64,
    /// Fraction of referenced parties heard.
    pub coverage: f64,
}

/// One Jaccard sample (`query_jaccard_partial`).
#[derive(Clone, Copy, Debug)]
pub struct JaccardSample {
    /// Virtual tick of the query.
    pub at: Tick,
    /// Index into [`QueryPlan::jaccard`].
    pub pair: usize,
    /// Jaccard estimate.
    pub jaccard: f64,
    /// Fraction of referenced parties heard.
    pub coverage: f64,
}

/// Everything a sustained-rate scenario run measured.
#[derive(Clone, Debug)]
pub struct E2eReport {
    /// Scenario name.
    pub name: String,
    /// Parties in the topology.
    pub parties: usize,
    /// Virtual ticks run (before final retry rounds).
    pub duration: Tick,
    /// Items generated across all parties.
    pub total_items: u64,
    /// Items that became queryable (covered by an accepted summary).
    pub items_acked: u64,
    /// Summary messages encoded and first-sent (excludes retransmits).
    pub reports_sent: usize,
    /// Final retransmit rounds driven after the load ended.
    pub retry_rounds: usize,
    /// Admission→queryable latency per item, in virtual ticks.
    pub latency: LatencyHistogram,
    /// Parties heard / parties that sent ≥ 1 summary (1 when none sent).
    pub party_coverage: f64,
    /// Items acked / items generated (1 when none generated).
    pub item_coverage: f64,
    /// Final union distinct estimate.
    pub final_estimate: f64,
    /// Exact distinct count of everything generated.
    pub truth: u64,
    /// `|final_estimate − truth| / truth` — only meaningful at full
    /// coverage (at partial coverage the contract covers the heard
    /// union, as in [`crate::referee::PartialEstimate`]).
    pub relative_error: f64,
    /// Degraded-mode distinct samples, in query order.
    pub distinct_samples: Vec<DistinctSample>,
    /// Sliding-window samples, in query order.
    pub window_samples: Vec<WindowSample>,
    /// Set-expression samples, in query order.
    pub expression_samples: Vec<ExpressionSample>,
    /// Jaccard samples, in query order.
    pub jaccard_samples: Vec<JaccardSample>,
    /// Channel-side telemetry (authoritative drop counts).
    pub transport: TransportTelemetry,
    /// Referee-side telemetry (accepts, duplicates, rejects).
    pub referee: RefereeTelemetry,
    /// Canonical encoded bytes of the final union sketch — the bitwise
    /// determinism witness.
    pub union_canonical: bytes::Bytes,
    /// Wall time of the whole run (diagnostics only — never asserted).
    pub run_wall: std::time::Duration,
}

impl E2eReport {
    /// Wall-clock ingest throughput in items per second (diagnostics;
    /// `f64::INFINITY` if the clock read zero).
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.run_wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.total_items as f64 / secs
        }
    }

    /// Offered load in items per virtual tick (deterministic).
    pub fn offered_rate_per_tick(&self) -> f64 {
        if self.duration == 0 {
            0.0
        } else {
            self.total_items as f64 / self.duration as f64
        }
    }

    /// Everything deterministic about this run, folded into one
    /// `Eq`-comparable value: canonical union bytes, latency histogram,
    /// exactly-once counters, telemetry counts (timings excluded), and
    /// every query sample (estimates as IEEE bit patterns). Two
    /// same-seed runs of the same spec must compare equal — the replay
    /// property `tests/scenario_determinism.rs` checks.
    pub fn determinism_key(&self) -> E2eDeterminismKey {
        let r = &self.referee;
        E2eDeterminismKey {
            union_canonical: self.union_canonical.clone(),
            latency: self.latency.clone(),
            total_items: self.total_items,
            items_acked: self.items_acked,
            reports_sent: self.reports_sent,
            retry_rounds: self.retry_rounds,
            truth: self.truth,
            final_estimate_bits: self.final_estimate.to_bits(),
            party_coverage_bits: self.party_coverage.to_bits(),
            item_coverage_bits: self.item_coverage.to_bits(),
            transport: self.transport,
            referee_counts: [
                r.accepted,
                r.duplicates_suppressed,
                r.duplicates_merged,
                r.rejected(),
                r.batches,
            ],
            samples: self
                .distinct_samples
                .iter()
                .map(|s| (s.at, 0usize, s.estimate.to_bits(), s.parties_heard as u64))
                .chain(
                    self.window_samples
                        .iter()
                        .map(|s| (s.at, 1, s.estimate.to_bits(), s.truth)),
                )
                .chain(
                    self.expression_samples
                        .iter()
                        .map(|s| (s.at, 2, s.estimate.to_bits(), s.query as u64)),
                )
                .chain(
                    self.jaccard_samples
                        .iter()
                        .map(|s| (s.at, 3, s.jaccard.to_bits(), s.pair as u64)),
                )
                .collect(),
        }
    }
}

/// The `Eq`-comparable replay witness of an [`E2eReport`] — see
/// [`E2eReport::determinism_key`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct E2eDeterminismKey {
    /// Canonical encoded bytes of the final union sketch.
    pub union_canonical: bytes::Bytes,
    /// Full latency histogram.
    pub latency: LatencyHistogram,
    /// Items generated.
    pub total_items: u64,
    /// Items acked.
    pub items_acked: u64,
    /// Summaries first-sent.
    pub reports_sent: usize,
    /// Final retry rounds.
    pub retry_rounds: usize,
    /// Exact distinct truth.
    pub truth: u64,
    /// Final estimate, as IEEE bits.
    pub final_estimate_bits: u64,
    /// Party coverage, as IEEE bits.
    pub party_coverage_bits: u64,
    /// Item coverage, as IEEE bits.
    pub item_coverage_bits: u64,
    /// Channel telemetry (all counts).
    pub transport: TransportTelemetry,
    /// Referee counts: accepted, dup-suppressed, dup-merged, rejected,
    /// batches (timings excluded — they are wall-clock).
    pub referee_counts: [usize; 5],
    /// Every query sample: `(tick, kind, estimate bits, aux)`.
    pub samples: Vec<(Tick, usize, u64, u64)>,
}

/// Per-party runtime state of the sustained engine.
struct PartyRt {
    sketch: DistinctSketch,
    window: Option<SlidingWindowSketch>,
    rng: SmallRng,
    universe: Vec<u64>,
    zipf: Option<ZipfSampler>,
    each_once: bool,
    /// Items generated but not yet covered by an accepted summary:
    /// `(generation tick, count)` in tick order.
    pending: VecDeque<(Tick, u64)>,
    generated: u64,
    /// Items covered by the most recent encode (skip no-op re-encodes).
    last_encoded_items: u64,
    /// Most recent summary and its encode tick, for final retransmits.
    last_encode: Option<(Tick, PartyMessage)>,
    joined_at: Tick,
    leave_at: Option<Tick>,
    graceful: bool,
    sends: usize,
}

impl PartyRt {
    fn draw(&mut self) -> u64 {
        let idx = match &self.zipf {
            Some(z) => z.sample(&mut self.rng) as usize,
            None if self.each_once => (self.generated as usize) % self.universe.len(),
            None => self.rng.gen_range(0..self.universe.len()),
        };
        self.universe[idx]
    }

    /// Generating at tick `t`?
    fn generating(&self, t: Tick) -> bool {
        self.joined_at <= t && self.leave_at.is_none_or(|l| t < l)
    }

    /// Allowed to send at tick `t`? (Graceful leavers ship their parting
    /// summary at the leave tick; crashers ship nothing from theirs.)
    fn can_send(&self, t: Tick) -> bool {
        self.joined_at <= t
            && match self.leave_at {
                None => true,
                Some(l) => t < l || (t == l && self.graceful),
            }
    }
}

/// Feed one tick's (or retry round's) deliveries to the referee and
/// account latency: an accepted summary admits every pending item of its
/// party generated at or before the summary's encode tick.
fn absorb_deliveries(
    deliveries: &[Delivery],
    referee: &mut Referee,
    meta: &HashMap<(usize, u64), Tick>,
    parties: &mut [PartyRt],
    hist: &mut LatencyHistogram,
    items_acked: &mut u64,
) {
    if deliveries.is_empty() {
        return;
    }
    let msgs: Vec<PartyMessage> = deliveries.iter().map(|d| d.msg.clone()).collect();
    let receipts = referee.receive_batch(&msgs);
    for (d, receipt) in deliveries.iter().zip(receipts) {
        if !matches!(receipt, Ok(Receipt::Merged | Receipt::MergedVariant)) {
            // Duplicates changed nothing; corrupt deliveries decode to
            // an error (or, rarely, to an unknown-fingerprint variant
            // that the meta lookup below rejects).
            continue;
        }
        let fp = payload_fingerprint(&d.msg.payload);
        let Some(&encode_tick) = meta.get(&(d.msg.party_id, fp)) else {
            continue;
        };
        let rt = &mut parties[d.msg.party_id];
        while let Some(&(gen_tick, n)) = rt.pending.front() {
            if gen_tick > encode_tick {
                break;
            }
            hist.record(d.at.saturating_sub(gen_tick), n);
            *items_acked += n;
            rt.pending.pop_front();
        }
    }
}

/// The base-rate multiplier at tick `t` (first matching phase wins).
fn multiplier_at(phases: &[LoadPhase], t: Tick) -> f64 {
    phases
        .iter()
        .find(|p| p.from <= t && t < p.until)
        .map_or(1.0, |p| p.rate_multiplier)
}

/// Run a sustained-load spec on the virtual clock.
///
/// # Panics
/// Panics if the spec's load shape is not [`LoadShape::Sustained`].
pub fn run_sustained(config: &SketchConfig, master_seed: u64, spec: &ScenarioSpec) -> E2eReport {
    let wall_start = Instant::now();
    let LoadShape::Sustained {
        rate_per_party,
        duration,
        report_every,
        ref phases,
    } = spec.workload.load
    else {
        panic!("run_sustained requires LoadShape::Sustained");
    };
    let parties = spec.topology.parties;
    assert!(parties > 0, "need at least one party");
    let report_every = report_every.max(1);
    let query_every = spec.queries.every.max(1);
    let wants_queries = spec.queries.distinct
        || spec.queries.window.is_some()
        || !spec.queries.expressions.is_empty()
        || !spec.queries.jaccard.is_empty();

    let wl = spec.workload.to_workload_spec(parties);
    let mut ps: Vec<PartyRt> = (0..parties)
        .map(|p| {
            let universe: Vec<u64> = wl.party_universe(p).collect();
            let zipf = match spec.workload.distribution {
                Distribution::Zipf(theta) if theta > 0.0 => {
                    Some(ZipfSampler::new(universe.len() as u64, theta))
                }
                _ => None,
            };
            PartyRt {
                sketch: DistinctSketch::new(config, master_seed),
                window: spec
                    .queries
                    .window
                    .map(|_| SlidingWindowSketch::new(config, master_seed)),
                rng: SmallRng::seed_from_u64(wl.seed ^ gt_hash::mix64(0x57EA_4000 + p as u64)),
                universe,
                zipf,
                each_once: spec.workload.distribution == Distribution::EachOnce,
                pending: VecDeque::new(),
                generated: 0,
                last_encoded_items: 0,
                last_encode: None,
                joined_at: 0,
                leave_at: None,
                graceful: false,
                sends: 0,
            }
        })
        .collect();
    for ev in &spec.faults.churn {
        assert!(ev.party < parties, "churn references party {}", ev.party);
        match ev.kind {
            ChurnKind::Join => ps[ev.party].joined_at = ev.at,
            ChurnKind::GracefulLeave => {
                ps[ev.party].leave_at = Some(ev.at);
                ps[ev.party].graceful = true;
            }
            ChurnKind::Crash => {
                ps[ev.party].leave_at = Some(ev.at);
                ps[ev.party].graceful = false;
            }
        }
    }

    let tspec = spec
        .faults
        .transport
        .unwrap_or_else(|| TransportSpec::reliable(wl.seed ^ 0x51AE));
    let mut transport = Transport::new(tspec);
    let mut referee = Referee::new(config, master_seed);
    let mut meta: HashMap<(usize, u64), Tick> = HashMap::new();
    let mut hist = LatencyHistogram::default();
    let mut seen_exact: HashSet<u64> = HashSet::new();
    let mut last_seen: HashMap<u64, Tick> = HashMap::new();
    let mut total_items = 0u64;
    let mut items_acked = 0u64;
    let mut reports_sent = 0usize;
    let mut gen_buf: Vec<u64> = Vec::new();
    let mut distinct_samples = Vec::new();
    let mut window_samples = Vec::new();
    let mut expression_samples = Vec::new();
    let mut jaccard_samples = Vec::new();

    for t in 1..=duration {
        // 1. Generation: every alive party draws its per-tick quota.
        for rt in ps.iter_mut() {
            if !rt.generating(t) {
                continue;
            }
            let n = (rate_per_party as f64 * multiplier_at(phases, t)).round() as u64;
            if n == 0 {
                continue;
            }
            gen_buf.clear();
            for _ in 0..n {
                let label = rt.draw();
                rt.generated += 1;
                gen_buf.push(label);
            }
            rt.sketch.extend_slice(&gen_buf);
            if let Some(w) = &mut rt.window {
                for &label in &gen_buf {
                    w.insert(label, t);
                }
            }
            for &label in &gen_buf {
                seen_exact.insert(label);
                if spec.queries.window.is_some() {
                    last_seen.insert(label, t);
                }
            }
            rt.pending.push_back((t, n));
            total_items += n;
        }

        // 2. Reporting: cadence ticks, parting summaries at graceful
        // leaves, and a final flush at the end of the run.
        for (p, rt) in ps.iter_mut().enumerate() {
            if !rt.can_send(t) {
                continue;
            }
            let parting = rt.leave_at == Some(t) && rt.graceful;
            if !(t % report_every == 0 || parting || t == duration) {
                continue;
            }
            if rt.generated == 0 || rt.generated == rt.last_encoded_items {
                continue; // nothing new to report
            }
            let payload = encode_sketch(&rt.sketch);
            let msg = PartyMessage {
                party_id: p,
                payload,
                items_observed: rt.sketch.items_observed(),
            };
            let fp = payload_fingerprint(&msg.payload);
            meta.entry((p, fp)).or_insert(t);
            rt.last_encode = Some((t, msg.clone()));
            rt.last_encoded_items = rt.generated;
            rt.sends += 1;
            reports_sent += 1;
            transport.send(msg);
        }

        // 3. Delivery: advance the clock, feed the referee, account
        // admission→queryable latency.
        let deliveries = transport.advance(t);
        absorb_deliveries(
            &deliveries,
            &mut referee,
            &meta,
            &mut ps,
            &mut hist,
            &mut items_acked,
        );

        // 4. Live queries on the cadence.
        if wants_queries && t % query_every == 0 {
            let expected = ps.iter().filter(|rt| rt.joined_at <= t).count();
            if spec.queries.distinct {
                let pe = referee.estimate_distinct_partial(expected);
                distinct_samples.push(DistinctSample {
                    at: t,
                    estimate: pe.estimate.value,
                    parties_heard: pe.parties_heard,
                    parties_expected: expected,
                    coverage: pe.coverage(),
                });
            }
            if let Some(w) = spec.queries.window {
                let mut merged: Option<SlidingWindowSketch> = None;
                for rt in &ps {
                    if let Some(ws) = &rt.window {
                        match &mut merged {
                            None => merged = Some(ws.clone()),
                            Some(m) => m.merge_from(ws).expect("shared seed and config"),
                        }
                    }
                }
                let estimate = merged.map_or(0.0, |m| m.estimate_distinct_last(t, w).value);
                let truth = last_seen
                    .values()
                    .filter(|&&ts| ts <= t && ts + w > t)
                    .count() as u64;
                window_samples.push(WindowSample {
                    at: t,
                    window: w,
                    estimate,
                    truth,
                });
            }
            for (i, expr) in spec.queries.expressions.iter().enumerate() {
                if let Ok(pe) = referee.query_partial(expr) {
                    expression_samples.push(ExpressionSample {
                        at: t,
                        query: i,
                        estimate: pe.estimate.estimate.value,
                        coverage: pe.coverage(),
                    });
                }
            }
            for (i, (e1, e2)) in spec.queries.jaccard.iter().enumerate() {
                if let Ok(pj) = referee.query_jaccard_partial(e1, e2) {
                    jaccard_samples.push(JaccardSample {
                        at: t,
                        pair: i,
                        jaccard: pj.estimate.jaccard,
                        coverage: pj.coverage(),
                    });
                }
            }
        }
    }

    // Final retransmit rounds: parties still up whose last summary
    // covers unacked items resend it under the retry budget with capped
    // exponential backoff, exactly like the collector's rounds.
    let mut retry_rounds = 0usize;
    let mut timeout = spec.faults.retry.initial_timeout.max(1);
    let timeout_cap = spec.faults.retry.max_timeout.max(timeout);
    loop {
        let needy: Vec<usize> = ps
            .iter()
            .enumerate()
            .filter(|(_, rt)| {
                rt.leave_at.is_none()
                    && matches!(
                        (&rt.last_encode, rt.pending.front()),
                        (Some((enc, _)), Some(&(gen, _))) if gen <= *enc
                    )
            })
            .map(|(p, _)| p)
            .collect();
        if needy.is_empty() || retry_rounds + 1 >= spec.faults.retry.max_attempts {
            break;
        }
        retry_rounds += 1;
        for p in needy {
            let (_, msg) = ps[p].last_encode.clone().expect("checked above");
            ps[p].sends += 1;
            transport.send(msg);
        }
        let deadline = transport.now().saturating_add(timeout);
        let deliveries = transport.advance(deadline);
        absorb_deliveries(
            &deliveries,
            &mut referee,
            &meta,
            &mut ps,
            &mut hist,
            &mut items_acked,
        );
        timeout = timeout.saturating_mul(2).min(timeout_cap);
    }
    // At-least-once channels deliver late rather than never: drain the
    // stragglers still on the wire.
    let stragglers = transport.drain();
    absorb_deliveries(
        &stragglers,
        &mut referee,
        &meta,
        &mut ps,
        &mut hist,
        &mut items_acked,
    );

    let senders = ps.iter().filter(|rt| rt.sends > 0).count();
    let heard = (0..parties).filter(|&p| referee.has_heard(p)).count();
    let party_coverage = if senders == 0 {
        1.0
    } else {
        heard as f64 / senders as f64
    };
    let item_coverage = if total_items == 0 {
        1.0
    } else {
        items_acked as f64 / total_items as f64
    };
    let final_estimate = referee.estimate_distinct().value;
    let truth = seen_exact.len() as u64;

    E2eReport {
        name: spec.name.clone(),
        parties,
        duration,
        total_items,
        items_acked,
        reports_sent,
        retry_rounds,
        latency: hist,
        party_coverage,
        item_coverage,
        final_estimate,
        truth,
        relative_error: gt_core::relative_error(final_estimate, truth as f64),
        distinct_samples,
        window_samples,
        expression_samples,
        jaccard_samples,
        transport: transport.telemetry(),
        referee: *referee.telemetry(),
        union_canonical: encode_sketch(referee.union_sketch()),
        run_wall: wall_start.elapsed(),
    }
}

// ---------------------------------------------------------------------
// Named scenarios
// ---------------------------------------------------------------------

/// The six named end-to-end scenarios experiment `e23` runs. `quick`
/// shrinks durations for CI (each scenario well under 2 s); full mode
/// runs 10× longer with the same structure.
pub fn named_suite(quick: bool) -> Vec<ScenarioSpec> {
    vec![
        steady_state(quick),
        flash_crowd(quick),
        churn_failover(quick),
        multi_tenant_zipf(quick),
        lossy_fan_in(quick),
        windowed_recency(quick),
    ]
}

fn scale(quick: bool, base: Tick) -> Tick {
    if quick {
        base
    } else {
        base * 10
    }
}

/// 8 parties, uniform traffic, perfect channel: the baseline. Expected
/// coverage 1.0 exactly.
pub fn steady_state(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("steady_state")
        .parties(8)
        .distinct_per_party(4_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E01)
        .sustained(4, d, 20)
        .query_every(100)
        .query_distinct()
        .build()
}

/// Mid-run flash crowd: the per-party rate jumps 8× for a quarter of
/// the run, stressing summary cadence and latency tails.
pub fn flash_crowd(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("flash_crowd")
        .parties(8)
        .distinct_per_party(4_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E02)
        .sustained(3, d, 20)
        .phase(d / 2, d * 3 / 4, 8.0)
        .query_every(100)
        .query_distinct()
        .build()
}

/// Mid-run churn: one graceful leave (parting summary ships), one
/// crash (tail items lost), one late join.
pub fn churn_failover(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("churn_failover")
        .parties(8)
        .distinct_per_party(4_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E03)
        .sustained(4, d, 20)
        .graceful_leave(2, d * 3 / 8)
        .crash(3, d / 2)
        .join(7, d / 2)
        .query_every(100)
        .query_distinct()
        .build()
}

/// 16 tenants with Zipf(1.1) skew: heavy duplication per tenant, the
/// regime where distinct counting diverges from counting.
pub fn multi_tenant_zipf(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 300);
    ScenarioSpec::builder("multi_tenant_zipf")
        .parties(16)
        .distinct_per_party(2_000)
        .overlap(0.2)
        .distribution(Distribution::Zipf(1.1))
        .workload_seed(0x000E_2E04)
        .sustained(3, d, 25)
        .query_every(100)
        .query_distinct()
        .build()
}

/// 32-party fan-in over a 5%-drop channel with stragglers and a retry
/// budget of 8 — the ISSUE's network-monitoring headline shape.
pub fn lossy_fan_in(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 300);
    ScenarioSpec::builder("lossy_fan_in")
        .parties(32)
        .distinct_per_party(2_000)
        .overlap(0.25)
        .workload_seed(0x000E_2E05)
        .sustained(2, d, 25)
        .transport(TransportSpec {
            drop_probability: 0.05,
            corrupt_probability: 0.01,
            base_latency: 2,
            jitter: 3,
            straggle_probability: 0.05,
            straggle_latency: 40,
            seed: 0x000E_2E05,
        })
        .retry(RetryPolicy::with_budget(8))
        .query_every(100)
        .query_distinct()
        .build()
}

/// Sliding-window recency queries over sustained traffic, scored
/// against the engine's exact recency oracle.
pub fn windowed_recency(quick: bool) -> ScenarioSpec {
    let d = scale(quick, 400);
    ScenarioSpec::builder("windowed_recency")
        .parties(6)
        .distinct_per_party(3_000)
        .overlap(0.3)
        .workload_seed(0x000E_2E06)
        .sustained(4, d, 20)
        .query_every(50)
        .query_distinct()
        .query_window(100)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SketchConfig {
        SketchConfig::new(0.1, 0.1).unwrap()
    }

    fn small_sustained() -> ScenarioSpec {
        ScenarioSpec::builder("small")
            .parties(4)
            .distinct_per_party(500)
            .overlap(0.25)
            .workload_seed(7)
            .sustained(3, 60, 10)
            .query_every(20)
            .query_distinct()
            .build()
    }

    #[test]
    fn sustained_reliable_run_acks_everything() {
        let report = run_sustained(&cfg(), 42, &small_sustained());
        assert_eq!(report.parties, 4);
        assert_eq!(report.duration, 60);
        assert_eq!(report.total_items, 4 * 3 * 60);
        assert_eq!(report.items_acked, report.total_items);
        assert_eq!(report.item_coverage, 1.0);
        assert_eq!(report.party_coverage, 1.0);
        assert!(report.reports_sent >= 4 * 6, "cumulative summary cadence");
        assert_eq!(report.retry_rounds, 0, "reliable channel needs no retries");
        assert_eq!(report.latency.count(), report.total_items);
        // Unit latency, report cadence 10: worst case an item waits 9
        // ticks for the next summary + 1 tick of transport.
        assert!(report.latency.p50() <= 10, "p50 {}", report.latency.p50());
        assert!(report.latency.max() <= 10, "max {}", report.latency.max());
        assert!(report.latency.p50() <= report.latency.p99());
        assert!(report.latency.p99() <= report.latency.p999());
        assert!(!report.distinct_samples.is_empty());
        let last = report.distinct_samples.last().unwrap();
        assert_eq!(last.parties_expected, 4);
        assert!(report.truth > 0);
        assert!(
            report.relative_error < 0.1,
            "err {} (estimate {} truth {})",
            report.relative_error,
            report.final_estimate,
            report.truth
        );
        assert!(!report.union_canonical.is_empty());
    }

    #[test]
    fn sustained_run_is_deterministic() {
        let a = run_sustained(&cfg(), 42, &small_sustained());
        let b = run_sustained(&cfg(), 42, &small_sustained());
        assert_eq!(a.determinism_key(), b.determinism_key());
        let c = run_sustained(&cfg(), 43, &small_sustained());
        assert_ne!(
            a.determinism_key().union_canonical,
            c.determinism_key().union_canonical,
            "different master seed must change the union bytes"
        );
    }

    #[test]
    fn flash_crowd_phase_multiplies_rate() {
        let base = ScenarioSpec::builder("base")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(3)
            .sustained(2, 40, 10)
            .build();
        let crowd = ScenarioSpec::builder("crowd")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(3)
            .sustained(2, 40, 10)
            .phase(20, 30, 5.0)
            .build();
        let r_base = run_sustained(&cfg(), 1, &base);
        let r_crowd = run_sustained(&cfg(), 1, &crowd);
        // 10 ticks at 5x instead of 1x: 2 parties * 2 rate * 10 * 4 extra.
        assert_eq!(r_base.total_items, 2 * 2 * 40);
        assert_eq!(r_crowd.total_items, r_base.total_items + 2 * 2 * 10 * 4);
        assert_eq!(r_crowd.item_coverage, 1.0);
    }

    #[test]
    fn churn_crash_loses_tail_items_exactly_once() {
        // Party 1 crashes mid-run right after a report tick: items it
        // generated after its last summary can never be acked, and its
        // last acked summary still counts exactly once.
        let spec = ScenarioSpec::builder("crash")
            .parties(2)
            .distinct_per_party(400)
            .workload_seed(9)
            .sustained(2, 40, 10)
            .crash(1, 35)
            .query_every(10)
            .query_distinct()
            .build();
        let report = run_sustained(&cfg(), 5, &spec);
        // Party 1 generated through tick 34; its last summary covered
        // through tick 30, so ticks 31..=34 (2 items each) are lost.
        assert_eq!(report.total_items, 2 * 2 * 40 - 2 * 6);
        assert_eq!(report.items_acked, report.total_items - 2 * 4);
        assert!(report.item_coverage < 1.0);
        assert_eq!(report.party_coverage, 1.0, "the crashed party was heard");
        let t = report.referee;
        assert_eq!(t.accepted, 2, "each party counted exactly once");
    }

    #[test]
    fn churn_join_starts_late() {
        let spec = ScenarioSpec::builder("join")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(11)
            .sustained(2, 40, 10)
            .join(1, 21)
            .build();
        let report = run_sustained(&cfg(), 5, &spec);
        // Party 0: 40 ticks; party 1: ticks 21..=40 only.
        assert_eq!(report.total_items, 2 * 40 + 2 * 20);
        assert_eq!(report.item_coverage, 1.0);
    }

    #[test]
    fn graceful_leave_ships_parting_summary() {
        // Leave at a tick that is NOT on the report cadence: without the
        // parting summary the tail would be lost.
        let spec = ScenarioSpec::builder("leave")
            .parties(2)
            .distinct_per_party(300)
            .workload_seed(13)
            .sustained(2, 40, 10)
            .graceful_leave(1, 27)
            .build();
        let report = run_sustained(&cfg(), 5, &spec);
        // Party 1 generates ticks 1..=26 and flushes at 27.
        assert_eq!(report.total_items, 2 * 40 + 2 * 26);
        assert_eq!(report.item_coverage, 1.0, "parting summary covers the tail");
    }

    #[test]
    fn lossy_channel_retries_recover_coverage() {
        let lossy = TransportSpec {
            jitter: 0,
            straggle_probability: 0.0,
            ..TransportSpec::lossy(0.4, 0x1055)
        };
        let build = |retry: RetryPolicy| {
            ScenarioSpec::builder("lossy")
                .parties(6)
                .distinct_per_party(400)
                .workload_seed(17)
                .sustained(2, 60, 15)
                .transport(lossy)
                .retry(retry)
                .build()
        };
        let one_shot = run_sustained(&cfg(), 3, &build(RetryPolicy::one_shot()));
        let retried = run_sustained(&cfg(), 3, &build(RetryPolicy::with_budget(8)));
        assert!(one_shot.transport.dropped > 0, "p=0.4 must drop summaries");
        assert!(
            retried.item_coverage >= one_shot.item_coverage,
            "retries cannot reduce coverage"
        );
        assert_eq!(
            retried.item_coverage, 1.0,
            "budget 8 at p=0.4 recovers the final summaries"
        );
        assert!(retried.retry_rounds > 0 || one_shot.item_coverage == 1.0);
    }

    #[test]
    fn window_queries_track_the_exact_recency_oracle() {
        let spec = ScenarioSpec::builder("window")
            .parties(3)
            .distinct_per_party(500)
            .workload_seed(19)
            .sustained(4, 80, 10)
            .query_every(20)
            .query_window(30)
            .build();
        let report = run_sustained(&cfg(), 7, &spec);
        assert!(!report.window_samples.is_empty());
        for s in &report.window_samples {
            assert_eq!(s.window, 30);
            assert!(s.truth > 0, "traffic flowed in every window");
            let err = (s.estimate - s.truth as f64).abs() / s.truth as f64;
            assert!(
                err < 0.25,
                "tick {}: est {} truth {}",
                s.at,
                s.estimate,
                s.truth
            );
        }
    }

    #[test]
    fn expression_and_jaccard_samples_report_coverage() {
        let spec = ScenarioSpec::builder("expr")
            .parties(3)
            .distinct_per_party(400)
            .overlap(0.5)
            .workload_seed(23)
            .sustained(3, 60, 10)
            .query_every(30)
            .query_expr(SetExpr::leaf(0).union(SetExpr::leaf(1)))
            .query_jaccard(SetExpr::leaf(0), SetExpr::leaf(2))
            .build();
        let report = run_sustained(&cfg(), 9, &spec);
        assert!(!report.expression_samples.is_empty());
        assert!(!report.jaccard_samples.is_empty());
        let last_e = report.expression_samples.last().unwrap();
        assert_eq!(last_e.coverage, 1.0);
        assert!(last_e.estimate > 0.0);
        let last_j = report.jaccard_samples.last().unwrap();
        assert_eq!(last_j.coverage, 1.0);
        assert!(last_j.jaccard > 0.0 && last_j.jaccard < 1.0);
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.p50(), 0);
        h.record(1, 50);
        h.record(2, 49);
        h.record(100, 1);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 2);
        assert_eq!(h.p999(), 100);
        assert_eq!(h.max(), 100);
        assert!(h.mean() > 1.0 && h.mean() < 3.0);
        // Clamp: huge latencies land in the overflow bucket.
        h.record(1 << 40, 1);
        assert_eq!(h.max(), 1 << 40);
        assert_eq!(h.quantile(1.0), LATENCY_CLAMP);
    }

    #[test]
    fn dispatch_routes_by_spec_shape() {
        let config = cfg();
        let classic = ScenarioSpec::builder("c").parties(2).batch(500).build();
        assert!(matches!(
            run_spec(&config, 1, &classic),
            ScenarioOutcome::Classic(_)
        ));
        let resilient = ScenarioSpec::builder("r")
            .parties(2)
            .batch(500)
            .transport(TransportSpec::reliable(1))
            .build();
        assert!(matches!(
            run_spec(&config, 1, &resilient),
            ScenarioOutcome::Resilient(_)
        ));
        let expr = ScenarioSpec::builder("e")
            .parties(2)
            .batch(500)
            .query_expr(SetExpr::leaf(0))
            .build();
        assert!(matches!(
            run_spec(&config, 1, &expr),
            ScenarioOutcome::Expression(_)
        ));
        let live = ScenarioSpec::builder("l")
            .parties(2)
            .batch(500)
            .ingest(IngestMode::SharedConcurrent {
                writer_threshold: 100,
            })
            .build();
        assert!(matches!(
            run_spec(&config, 1, &live),
            ScenarioOutcome::Live(_)
        ));
        let sustained = ScenarioSpec::builder("s")
            .parties(2)
            .sustained(2, 20, 5)
            .build();
        assert!(matches!(
            run_spec(&config, 1, &sustained),
            ScenarioOutcome::Sustained(_)
        ));
    }

    #[test]
    fn sequential_ingest_matches_threaded_state() {
        let spec = ScenarioSpec::builder("seq")
            .parties(4)
            .distinct_per_party(2_000)
            .batch(5_000)
            .ingest(IngestMode::Sequential)
            .build();
        let config = cfg();
        let streams = spec.workload.to_workload_spec(4).generate();
        let seq = run_classic_engine(&config, 3, &streams, IngestMode::Sequential);
        let thr = run_classic_engine(&config, 3, &streams, IngestMode::PerPartyThreads);
        assert_eq!(seq.estimate, thr.estimate);
        assert_eq!(seq.truth, thr.truth);
        assert_eq!(seq.total_bytes, thr.total_bytes);
        assert_eq!(
            seq.referee_telemetry.accepted,
            thr.referee_telemetry.accepted
        );
        // Sequential mode is one batch, always.
        assert_eq!(seq.referee_telemetry.batches, 1);
    }

    #[test]
    fn named_suite_has_six_distinct_scenarios() {
        let suite = named_suite(true);
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "scenario names must be unique");
        for spec in &suite {
            assert!(matches!(spec.workload.load, LoadShape::Sustained { .. }));
            assert!(spec.queries.distinct, "every scenario samples distinct");
        }
    }

    #[test]
    #[should_panic(expected = "phase() requires sustained load")]
    fn phase_on_batch_load_panics() {
        let _ = ScenarioSpec::builder("bad").phase(0, 10, 2.0);
    }

    #[test]
    #[should_panic(expected = "churn event references party")]
    fn churn_out_of_range_panics() {
        let _ = ScenarioSpec::builder("bad").parties(2).crash(5, 10).build();
    }
}
