//! Deterministic simulated transport: drop / corrupt / delay / reorder
//! under a virtual clock.
//!
//! Real collection planes fail in messier ways than "each message is
//! dropped or it isn't": messages straggle past timeouts, arrive out of
//! order, and show up twice once the sender starts retransmitting. This
//! module simulates exactly that with no threads and no wall clock — a
//! seeded RNG decides each message's fate and latency, and a virtual
//! [`Tick`] clock orders deliveries — so every schedule a property test
//! or experiment explores is exactly reproducible from its seed.
//!
//! This generalizes the one-shot lossy channel that used to live inline
//! in `crate::faults` (which is now a thin wrapper over a no-retry
//! [`crate::collector::Collector`] on this transport):
//!
//! * **Drop** — the message is never enqueued; only the channel knows
//!   (authoritative source for drop counts — the referee cannot count
//!   messages it never saw).
//! * **Corrupt** — a random byte past the magic word is bit-flipped in
//!   flight; the codec detects (almost) all of these on decode.
//! * **Delay** — base latency plus uniform jitter; two messages sent at
//!   the same tick can arrive in either order.
//! * **Straggle** — with small probability a message takes an extra-long
//!   detour, arriving rounds later: the canonical source of
//!   at-least-once duplicates once the sender has retransmitted.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::party::PartyMessage;

/// Virtual time, in abstract ticks. Only the order and spacing of events
/// matter; no wall clock is consulted anywhere.
pub type Tick = u64;

/// Fault and latency model for a simulated channel.
#[derive(Clone, Copy, Debug)]
pub struct TransportSpec {
    /// Probability a sent message is dropped outright.
    pub drop_probability: f64,
    /// Probability a (non-dropped) message has a random byte corrupted.
    pub corrupt_probability: f64,
    /// Minimum delivery latency, in ticks.
    pub base_latency: Tick,
    /// Uniform extra latency in `0..=jitter` ticks (0 = deterministic
    /// latency, no reordering).
    pub jitter: Tick,
    /// Probability a delivered message straggles (takes
    /// `straggle_latency` extra ticks — typically past the sender's
    /// retransmit timeout, producing duplicates).
    pub straggle_probability: f64,
    /// Extra latency added to straggling messages.
    pub straggle_latency: Tick,
    /// RNG seed for all per-message decisions.
    pub seed: u64,
}

impl TransportSpec {
    /// A perfect channel: nothing dropped, corrupted, or reordered;
    /// unit latency.
    pub fn reliable(seed: u64) -> Self {
        TransportSpec {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            base_latency: 1,
            jitter: 0,
            straggle_probability: 0.0,
            straggle_latency: 0,
            seed,
        }
    }

    /// A lossy but realistic channel: the given drop rate, mild jitter,
    /// and a 10% straggler rate long enough to outlive early timeouts.
    pub fn lossy(drop_probability: f64, seed: u64) -> Self {
        TransportSpec {
            drop_probability,
            corrupt_probability: 0.0,
            base_latency: 1,
            jitter: 3,
            straggle_probability: 0.1,
            straggle_latency: 40,
            seed,
        }
    }
}

/// Channel-side fate of one `send` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendFate {
    /// Dropped by the channel; it will never be delivered.
    Dropped,
    /// In flight with a flipped byte.
    SentCorrupted,
    /// In flight, intact.
    Sent,
}

/// Channel-side accounting. Authoritative for drops: the receiver never
/// sees a dropped message, so only the channel can count them (this is
/// where `crate::faults::FateCounts::dropped` comes from).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportTelemetry {
    /// Total `send` calls.
    pub sends: usize,
    /// Sends dropped outright.
    pub dropped: usize,
    /// Sends corrupted in flight (still delivered).
    pub corrupted: usize,
    /// Sends that took the straggler detour.
    pub straggled: usize,
    /// Messages handed to the receiver by `advance`/`drain`.
    pub delivered: usize,
}

/// One message arriving at the receiver.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Virtual time the message arrived.
    pub at: Tick,
    /// The (possibly corrupted) message.
    pub msg: PartyMessage,
}

struct InFlight {
    deliver_at: Tick,
    seq: u64,
    msg: PartyMessage,
}

// Heap order: earliest `deliver_at` first, FIFO (`seq`) among ties —
// `PartyMessage` itself carries no ordering.
impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// A simulated unidirectional channel with a virtual clock.
pub struct Transport {
    spec: TransportSpec,
    rng: SmallRng,
    now: Tick,
    seq: u64,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    telemetry: TransportTelemetry,
}

impl Transport {
    /// Open a channel with the given fault/latency model.
    pub fn new(spec: TransportSpec) -> Self {
        Transport {
            rng: SmallRng::seed_from_u64(spec.seed),
            spec,
            now: 0,
            seq: 0,
            in_flight: BinaryHeap::new(),
            telemetry: TransportTelemetry::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Messages sent but not yet delivered (excludes drops).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Channel-side accounting.
    pub fn telemetry(&self) -> TransportTelemetry {
        self.telemetry
    }

    /// Put one message on the wire at the current tick. Returns the
    /// channel-side fate; a non-dropped message is delivered at least one
    /// tick later by a subsequent [`Transport::advance`].
    pub fn send(&mut self, mut msg: PartyMessage) -> SendFate {
        self.telemetry.sends += 1;
        if self
            .rng
            .gen_bool(self.spec.drop_probability.clamp(0.0, 1.0))
        {
            self.telemetry.dropped += 1;
            return SendFate::Dropped;
        }
        let corrupted = self
            .rng
            .gen_bool(self.spec.corrupt_probability.clamp(0.0, 1.0))
            && corrupt_in_flight(&mut msg, &mut self.rng);
        if corrupted {
            self.telemetry.corrupted += 1;
        }
        let mut latency = self.spec.base_latency;
        if self.spec.jitter > 0 {
            latency += self.rng.gen_range(0..=self.spec.jitter);
        }
        if self.spec.straggle_probability > 0.0
            && self
                .rng
                .gen_bool(self.spec.straggle_probability.clamp(0.0, 1.0))
        {
            latency += self.spec.straggle_latency;
            self.telemetry.straggled += 1;
        }
        self.seq += 1;
        self.in_flight.push(Reverse(InFlight {
            deliver_at: self.now.saturating_add(latency.max(1)),
            seq: self.seq,
            msg,
        }));
        if corrupted {
            SendFate::SentCorrupted
        } else {
            SendFate::Sent
        }
    }

    /// Advance the virtual clock to `to` and collect every message whose
    /// delivery time has come, in arrival order. The clock never moves
    /// backwards.
    pub fn advance(&mut self, to: Tick) -> Vec<Delivery> {
        self.now = self.now.max(to);
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > self.now {
                break;
            }
            let Reverse(m) = self.in_flight.pop().expect("peeked");
            self.telemetry.delivered += 1;
            out.push(Delivery {
                at: m.deliver_at,
                msg: m.msg,
            });
        }
        out
    }

    /// Advance past the last in-flight message and deliver everything
    /// still on the wire (stragglers included): at-least-once channels
    /// lose messages, but what they accepted they eventually deliver.
    pub fn drain(&mut self) -> Vec<Delivery> {
        let horizon = self
            .in_flight
            .iter()
            .map(|Reverse(m)| m.deliver_at)
            .max()
            .unwrap_or(self.now);
        self.advance(horizon)
    }
}

/// Flip a random byte somewhere after the magic word. Messages with no
/// content past the magic corrupt their last byte instead, and an empty
/// payload has nothing to flip (returns false: delivered intact).
fn corrupt_in_flight(msg: &mut PartyMessage, rng: &mut SmallRng) -> bool {
    let mut raw = msg.payload.to_vec();
    let idx = if raw.len() > 4 {
        Some(rng.gen_range(4..raw.len()))
    } else {
        raw.len().checked_sub(1)
    };
    match idx {
        Some(idx) => {
            raw[idx] ^= 1u8 << rng.gen_range(0u32..8);
            msg.payload = bytes::Bytes::from(raw);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::Party;
    use gt_core::SketchConfig;

    fn msg(id: usize) -> PartyMessage {
        let config = SketchConfig::new(0.2, 0.2).unwrap();
        let mut p = Party::new(id, &config, 1);
        p.observe_stream(&(0..50u64).map(gt_hash::fold61).collect::<Vec<_>>());
        p.finish()
    }

    #[test]
    fn reliable_channel_delivers_everything_in_order() {
        let mut t = Transport::new(TransportSpec::reliable(1));
        for id in 0..5 {
            assert_eq!(t.send(msg(id)), SendFate::Sent);
        }
        assert_eq!(t.in_flight(), 5);
        let deliveries = t.advance(1);
        assert_eq!(deliveries.len(), 5);
        // Unit latency, FIFO tie-break: arrival order is send order.
        let ids: Vec<usize> = deliveries.iter().map(|d| d.msg.party_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(deliveries.iter().all(|d| d.at == 1));
        let tel = t.telemetry();
        assert_eq!((tel.sends, tel.dropped, tel.delivered), (5, 0, 5));
    }

    #[test]
    fn clock_gates_delivery() {
        let mut t = Transport::new(TransportSpec {
            base_latency: 10,
            ..TransportSpec::reliable(2)
        });
        t.send(msg(0));
        assert!(t.advance(9).is_empty());
        assert_eq!(t.advance(10).len(), 1);
        assert_eq!(t.now(), 10);
        // The clock never runs backwards.
        t.advance(3);
        assert_eq!(t.now(), 10);
    }

    #[test]
    fn drops_never_arrive_and_are_counted_channel_side() {
        let mut t = Transport::new(TransportSpec {
            drop_probability: 1.0,
            ..TransportSpec::reliable(3)
        });
        for id in 0..8 {
            assert_eq!(t.send(msg(id)), SendFate::Dropped);
        }
        assert_eq!(t.in_flight(), 0);
        assert!(t.drain().is_empty());
        assert_eq!(t.telemetry().dropped, 8);
        assert_eq!(t.telemetry().delivered, 0);
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let spec = TransportSpec {
            jitter: 7,
            ..TransportSpec::reliable(0xBEEF)
        };
        let mut t = Transport::new(spec);
        for id in 0..32 {
            t.send(msg(id));
        }
        let deliveries = t.drain();
        assert_eq!(deliveries.len(), 32);
        let ids: Vec<usize> = deliveries.iter().map(|d| d.msg.party_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "nothing lost");
        assert_ne!(ids, sorted, "jitter should reorder some pair");
        // Arrival times are non-decreasing.
        assert!(deliveries.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn stragglers_arrive_late_but_arrive() {
        let spec = TransportSpec {
            straggle_probability: 1.0,
            straggle_latency: 100,
            ..TransportSpec::reliable(4)
        };
        let mut t = Transport::new(spec);
        t.send(msg(0));
        assert!(t.advance(50).is_empty(), "straggler not due yet");
        let late = t.drain();
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].at, 101);
        assert_eq!(t.telemetry().straggled, 1);
    }

    #[test]
    fn corruption_flips_payload_bytes() {
        let spec = TransportSpec {
            corrupt_probability: 1.0,
            ..TransportSpec::reliable(5)
        };
        let mut t = Transport::new(spec);
        let original = msg(0);
        assert_eq!(t.send(original.clone()), SendFate::SentCorrupted);
        let d = t.drain().pop().unwrap();
        assert_eq!(d.msg.payload.len(), original.payload.len());
        assert_ne!(d.msg.payload, original.payload);
        assert_eq!(t.telemetry().corrupted, 1);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut t = Transport::new(TransportSpec {
                corrupt_probability: 0.3,
                ..TransportSpec::lossy(0.3, seed)
            });
            for id in 0..16 {
                t.send(msg(id));
            }
            let deliveries: Vec<(Tick, usize, bytes::Bytes)> = t
                .drain()
                .into_iter()
                .map(|d| (d.at, d.msg.party_id, d.msg.payload))
                .collect();
            (deliveries, t.telemetry())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }
}
