//! Exact ground truth over generated streams.
//!
//! Experiments compare sketch output against exact answers computed here
//! by brute force — independent of the closed-form workload formulas, so
//! the two cross-check each other.

use std::collections::HashMap;

/// Exact statistics over a collection of streams (the union and each
/// party), computed by full materialization. Memory is O(distinct), so
/// this is for experiment harnesses, not production paths.
#[derive(Clone, Debug, Default)]
pub struct StreamOracle {
    /// Distinct label → number of occurrences across all observed streams.
    multiplicity: HashMap<u64, u64>,
    /// Total items observed.
    items: u64,
}

impl StreamOracle {
    /// Empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one stream.
    pub fn observe(&mut self, stream: &[u64]) {
        for &l in stream {
            *self.multiplicity.entry(l).or_insert(0) += 1;
            self.items += 1;
        }
    }

    /// Build from a set of streams.
    pub fn of_streams<'a>(streams: impl IntoIterator<Item = &'a [u64]>) -> Self {
        let mut o = Self::new();
        for s in streams {
            o.observe(s);
        }
        o
    }

    /// Exact distinct count of the union.
    pub fn distinct(&self) -> u64 {
        self.multiplicity.len() as u64
    }

    /// Total items (with duplicates).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Average occurrences per distinct label.
    pub fn duplication_factor(&self) -> f64 {
        if self.multiplicity.is_empty() {
            0.0
        } else {
            self.items as f64 / self.multiplicity.len() as f64
        }
    }

    /// Exact `Σ value(x)` over distinct labels.
    pub fn sum_distinct(&self, value: impl Fn(u64) -> u64) -> u64 {
        self.multiplicity.keys().map(|&l| value(l)).sum()
    }

    /// Exact count of distinct labels satisfying a predicate.
    pub fn distinct_where(&self, pred: impl Fn(u64) -> bool) -> u64 {
        self.multiplicity.keys().filter(|&&l| pred(l)).count() as u64
    }

    /// Exact intersection size with another oracle's distinct set.
    pub fn intersection(&self, other: &StreamOracle) -> u64 {
        self.multiplicity
            .keys()
            .filter(|l| other.multiplicity.contains_key(l))
            .count() as u64
    }

    /// Exact Jaccard similarity with another oracle's distinct set.
    pub fn jaccard(&self, other: &StreamOracle) -> f64 {
        let inter = self.intersection(other);
        let union = self.distinct() + other.distinct() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Distribution, WorkloadSpec};

    #[test]
    fn counts_distinct_and_items() {
        let mut o = StreamOracle::new();
        o.observe(&[1, 2, 2, 3]);
        o.observe(&[3, 4]);
        assert_eq!(o.distinct(), 4);
        assert_eq!(o.items(), 6);
        assert_eq!(o.duplication_factor(), 1.5);
    }

    #[test]
    fn empty_oracle() {
        let o = StreamOracle::new();
        assert_eq!(o.distinct(), 0);
        assert_eq!(o.duplication_factor(), 0.0);
        assert_eq!(o.sum_distinct(|_| 1), 0);
    }

    #[test]
    fn sum_and_predicate() {
        let o = StreamOracle::of_streams([[10u64, 20, 20, 30].as_slice()]);
        assert_eq!(o.sum_distinct(|l| l), 60);
        assert_eq!(o.distinct_where(|l| l >= 20), 2);
    }

    #[test]
    fn set_relations() {
        let a = StreamOracle::of_streams([[1u64, 2, 3].as_slice()]);
        let b = StreamOracle::of_streams([[2u64, 3, 4, 5].as_slice()]);
        assert_eq!(a.intersection(&b), 2);
        assert!((a.jaccard(&b) - 2.0 / 5.0).abs() < 1e-12);
        let empty = StreamOracle::new();
        assert_eq!(empty.jaccard(&empty), 0.0);
    }

    #[test]
    fn agrees_with_workload_closed_form() {
        let spec = WorkloadSpec {
            parties: 5,
            distinct_per_party: 2_000,
            overlap: 0.4,
            items_per_party: 20_000,
            distribution: Distribution::Uniform,
            seed: 99,
        };
        let set = spec.generate();
        let oracle = StreamOracle::of_streams(set.streams.iter().map(|s| s.as_slice()));
        // Streams may not touch every universe label, so the oracle count
        // is ≤ the closed form, but with 10× draws per label it should hit
        // nearly all of them.
        let truth = spec.true_union_distinct();
        assert!(oracle.distinct() <= truth);
        assert!(
            oracle.distinct() as f64 > 0.98 * truth as f64,
            "{} vs {truth}",
            oracle.distinct()
        );
    }
}
