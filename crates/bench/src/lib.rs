//! # gt-bench — experiment harness
//!
//! Regenerates every experiment in EXPERIMENTS.md. Each `experiments::eNN`
//! module produces one or more [`table::Table`]s; the `experiments` binary
//! dispatches on experiment id and prints them (and writes CSVs under
//! `results/`).
//!
//! Criterion benches (time-domain experiments E4/E10/E14 and the hashing
//! micro-benchmarks) live under `benches/`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod stats;
pub mod table;

/// Statistical summary of a sample of relative errors.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorSummary {
    /// Mean of the sample.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Fraction of the sample exceeding a caller-supplied threshold.
    pub frac_over: f64,
}

impl ErrorSummary {
    /// Summarize `values`, reporting the fraction exceeding `threshold`.
    pub fn of(values: Vec<f64>, threshold: f64) -> Self {
        assert!(!values.is_empty());
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let over = values.iter().filter(|&&v| v > threshold).count() as f64 / n;
        let p50 = gt_core::quantile_f64(&mut values.clone(), 0.5);
        let p95 = gt_core::quantile_f64(&mut values.clone(), 0.95);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ErrorSummary {
            mean,
            p50,
            p95,
            max,
            frac_over: over,
        }
    }
}

/// Format a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Format a byte count human-readably.
pub fn bytes_h(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_summary_quantiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let s = ErrorSummary::of(v, 0.9);
        assert!((s.mean - 0.505).abs() < 1e-9);
        assert_eq!(s.p50, 0.5);
        assert_eq!(s.p95, 0.95);
        assert_eq!(s.max, 1.0);
        assert!((s.frac_over - 0.10).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(bytes_h(512), "512 B");
        assert_eq!(bytes_h(2048), "2.0 KiB");
        assert_eq!(bytes_h(3 << 20), "3.0 MiB");
    }
}
