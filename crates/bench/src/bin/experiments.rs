//! Experiment runner: regenerates the tables in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p gt-bench --release --bin experiments -- all          # every experiment
//! cargo run -p gt-bench --release --bin experiments -- e1 e5       # a subset
//! cargo run -p gt-bench --release --bin experiments -- --quick all # smaller sweeps
//! cargo run -p gt-bench --release --bin experiments -- --list
//! ```
//!
//! Tables print to stdout and are mirrored as CSV under `results/`.

use std::path::PathBuf;
use std::time::Instant;

use gt_bench::experiments::{find, REGISTRY};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let list = args.iter().any(|a| a == "--list" || a == "-l");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    if list || ids.is_empty() {
        print_usage();
        return;
    }

    let selected: Vec<&'static gt_bench::experiments::Experiment> =
        if ids.iter().any(|s| s.as_str() == "all") {
            REGISTRY.iter().collect()
        } else {
            let mut out = Vec::new();
            for id in &ids {
                match find(id) {
                    Some(e) => out.push(e),
                    None => {
                        eprintln!("unknown experiment '{id}' — use --list to see available ids");
                        std::process::exit(2);
                    }
                }
            }
            out
        };
    if selected.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let results_dir = PathBuf::from("results");
    println!(
        "running {} experiment(s){}...\n",
        selected.len(),
        if quick { " in --quick mode" } else { "" }
    );
    for exp in selected {
        let t0 = Instant::now();
        let tables = (exp.run)(quick);
        for table in &tables {
            println!("{}", table.render());
            match table.write_csv(&results_dir) {
                Ok(path) => println!("  csv: {}\n", path.display()),
                Err(e) => eprintln!("  csv write failed: {e}\n"),
            }
        }
        println!("[{} finished in {:.1?}]\n", exp.id, t0.elapsed());
    }

    // Always close with the sketch-ops observability report so every run
    // (including CI smoke) exercises the metrics layer end to end.
    let report = gt_bench::stats::demo_scenario();
    print!("{}", gt_bench::stats::render_stats(&report));
    println!("  json: {}", gt_bench::stats::render_stats_json(&report));
    let delta_report = gt_bench::stats::demo_delta_scenario();
    print!("{}", gt_bench::stats::render_delta_stats(&delta_report));
    println!(
        "  json: {}",
        gt_bench::stats::render_delta_stats_json(&delta_report)
    );
    let store_snap = gt_bench::stats::demo_store();
    print!("{}", gt_bench::stats::render_store_stats(&store_snap));
    println!(
        "  json: {}",
        gt_bench::stats::render_store_stats_json(&store_snap)
    );
}

fn print_usage() {
    println!("usage: experiments [--quick] <ids...|all>\n");
    println!("available experiments:");
    for e in REGISTRY {
        println!("  {:>4}  {}", e.id, e.description);
    }
    println!("\nsome experiments also write machine-readable summaries:");
    println!("  e4    results/BENCH_ingest.json     (per-item vs batched vs kernel throughput)");
    println!("  e14   results/BENCH_parallel.json   (thread-sweep speedups, identity-checked)");
    println!("  e17   results/BENCH_transport.json  (loss sweep vs union completeness)");
    println!("  e18   results/BENCH_concurrent.json (writer-sweep throughput + snapshot eps)");
    println!("  e19   results/BENCH_union.json      (referee merge pipeline + tree reduction)");
    println!("  e20   results/BENCH_hash.json       (lane vs scalar hash kernels + screen)");
    println!("  e21   results/BENCH_store.json      (keyed store: Zipf ingest, budget, spill)");
    println!("  e22   results/BENCH_expr.json       (set-expression error vs depth and overlap)");
    println!("  e23   results/BENCH_e2e.json        (scenario suite: latency, coverage, faults)");
    println!("\nCriterion benches for fine-grained time-domain numbers:");
    println!("  e4    cargo bench -p gt-bench --bench ingest     (per-item cost, throughput)");
    println!("  e10   cargo bench -p gt-bench --bench merge      (referee cost vs parties)");
    println!("  e14   cargo bench -p gt-bench --bench parallel   (fan-out/merge ingest)");
    println!("        cargo bench -p gt-bench --bench hashing    (hash family micro-costs)");
    println!("        cargo bench -p gt-bench --bench baselines  (update cost vs baselines)");
}
