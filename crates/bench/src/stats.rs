//! Sketch-ops stats report: one place that renders everything the
//! observability layer records — union-sketch counters
//! ([`gt_core::MetricsSnapshot`]), referee decode/merge telemetry
//! ([`gt_streams::RefereeTelemetry`]), and per-party phase timings — both
//! human-readable and as a single JSON object (hand-rolled; the build
//! carries no JSON dependency).
//!
//! The `experiments` binary prints this after every run and the
//! `sketch_stats` example exercises it standalone, so CI smoke covers the
//! whole layer end to end. The keyed store's consistent-cut snapshot
//! ([`gt_store::StoreMetricsSnapshot`]) gets the same treatment via
//! [`render_store_stats`] / [`render_store_stats_json`].

use std::time::Duration;

use gt_store::StoreMetricsSnapshot;
use gt_streams::ScenarioReport;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Render the scenario's observability data as an indented, labelled
/// plain-text block.
pub fn render_stats(report: &ScenarioReport) -> String {
    let t = &report.referee_telemetry;
    let m = &report.union_metrics;
    let mut out = String::new();
    out.push_str("sketch-ops stats\n");
    out.push_str(&format!(
        "  scenario: {} parties, {} items, estimate {:.1} vs truth {} (rel err {:.4})\n",
        report.parties, report.total_items, report.estimate, report.truth, report.relative_error,
    ));
    out.push_str(&format!(
        "  throughput: {:.0} items/s across {} parties during observation\n",
        report.throughput(),
        report.parties,
    ));
    out.push_str(&format!(
        "  phases: observe wall {:.3}s (slowest party {:.3}s), encode total {:.3}s, \
         decode {:.3}s, merge {:.3}s\n",
        secs(report.observe_wall),
        secs(report.max_party_observe()),
        secs(report.total_encode()),
        secs(t.decode_time),
        secs(t.merge_time),
    ));
    out.push_str(&format!(
        "  referee: {} accepted, {} rejected ({} truncated, {} bad-magic, {} bad-tag, \
         {} malformed, {} invalid-sketch)\n",
        t.accepted,
        t.rejected(),
        t.rejected_truncated,
        t.rejected_bad_magic,
        t.rejected_bad_tag,
        t.rejected_malformed,
        t.rejected_sketch,
    ));
    let histogram: String = gt_streams::BATCH_BUCKET_LABELS
        .iter()
        .zip(t.summaries_per_batch.iter())
        .map(|(label, count)| format!("{label}:{count}"))
        .collect::<Vec<_>>()
        .join(" ");
    out.push_str(&format!(
        "  referee batches: {} (summaries per batch: {})\n",
        t.batches, histogram,
    ));
    out.push_str(&format!(
        "  union inserts: {} trial decisions ({} sampled, {} duplicate, {} below-level)\n",
        m.trial_inserts(),
        m.inserts_sampled,
        m.inserts_duplicate,
        m.inserts_below_level,
    ));
    out.push_str(&format!(
        "  union merges: {} calls, {} entries absorbed, {} reconciled, {} below-level, \
         {} level promotions\n",
        m.merge_calls,
        m.merge_entries_absorbed,
        m.merge_reconciliations,
        m.merge_below_level,
        m.level_promotions,
    ));
    out
}

/// Render the same data as a single JSON object.
pub fn render_stats_json(report: &ScenarioReport) -> String {
    let t = &report.referee_telemetry;
    // An instantaneous observation phase reports throughput as infinity,
    // which JSON cannot carry; clamp to 0 (no meaningful rate).
    let items_per_sec = if report.throughput().is_finite() {
        report.throughput()
    } else {
        0.0
    };
    format!(
        concat!(
            "{{",
            "\"parties\":{},",
            "\"total_items\":{},",
            "\"estimate\":{},",
            "\"truth\":{},",
            "\"relative_error\":{},",
            "\"items_per_sec\":{},",
            "\"observe_wall_s\":{},",
            "\"max_party_observe_s\":{},",
            "\"encode_total_s\":{},",
            "\"decode_s\":{},",
            "\"merge_s\":{},",
            "\"accepted\":{},",
            "\"rejected\":{},",
            "\"batches\":{},",
            "\"summaries_per_batch\":[{}],",
            "\"union_metrics\":{}",
            "}}"
        ),
        report.parties,
        report.total_items,
        report.estimate,
        report.truth,
        report.relative_error,
        items_per_sec,
        secs(report.observe_wall),
        secs(report.max_party_observe()),
        secs(report.total_encode()),
        secs(t.decode_time),
        secs(t.merge_time),
        t.accepted,
        t.rejected(),
        t.batches,
        t.summaries_per_batch
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(","),
        report.union_metrics.to_json(),
    )
}

/// Render a keyed-store snapshot as an indented, labelled plain-text
/// block, matching [`render_stats`]'s shape.
pub fn render_store_stats(snap: &StoreMetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("keyed-store stats\n");
    for line in snap.to_string().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Render the same snapshot as a single JSON object (the snapshot's own
/// stable-key-order encoding).
pub fn render_store_stats_json(snap: &StoreMetricsSnapshot) -> String {
    snap.to_json()
}

/// Run a small keyed-store workload and return its snapshot — the
/// demo/smoke input for the store stats renderers. The byte budget is
/// deliberately tight so the eviction and restore counters are live.
pub fn demo_store() -> StoreMetricsSnapshot {
    let config =
        gt_core::SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_hash::HashFamilyKind::Pairwise)
            .expect("static shape");
    let options = gt_store::StoreOptions::default()
        .with_shards(2)
        .with_byte_budget(16 << 10)
        .with_hot_threshold(64);
    let store = gt_store::DistinctStore::new(&config, 0x5_7A75, options).expect("demo store");
    let items: Vec<(u64, u64)> = (0..30_000u64)
        .map(|i| (i % 300, gt_hash::fold61(i)))
        .collect();
    store.extend(&items).expect("demo ingest");
    for key in 0..300 {
        store.estimate(key).expect("demo query");
    }
    store.metrics_snapshot()
}

/// Run a small fixed scenario and return its report — the demo/smoke
/// input for the stats renderers.
pub fn demo_scenario() -> ScenarioReport {
    let spec = gt_streams::WorkloadSpec {
        parties: 4,
        distinct_per_party: 4_000,
        overlap: 0.5,
        items_per_party: 12_000,
        distribution: gt_streams::Distribution::Zipf(1.05),
        seed: 0x5_7A75,
    };
    let config = gt_core::SketchConfig::new(0.1, 0.05).unwrap();
    gt_streams::run_scenario(&config, 0xC0FFEE, &spec.generate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_renders_without_panicking() {
        let report = demo_scenario();
        let human = render_stats(&report);
        assert!(human.contains("sketch-ops stats"));
        assert!(human.contains("4 parties"));
        assert!(human.contains("items/s"));
        assert!(human.contains("accepted"));
        assert!(human.contains("referee batches:"));
        assert!(human.contains("summaries per batch:"));
        let json = render_stats_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"parties\":4"));
        assert!(json.contains("\"items_per_sec\":"));
        assert!(json.contains("\"accepted\":4"));
        assert!(json.contains("\"union_metrics\":{"));
        assert!(json.contains("\"batches\":"));
        assert!(json.contains("\"summaries_per_batch\":["));
        // The batched referee folds 4 messages in 1..=4 union merges.
        let t = report.referee_telemetry;
        assert!(t.batches >= 1 && t.batches <= 4);
        assert_eq!(t.summaries_per_batch.iter().sum::<usize>(), t.batches);
        assert!((1..=4).contains(&report.union_metrics.merge_calls));
    }

    #[test]
    fn store_stats_report_renders_without_panicking() {
        let snap = demo_store();
        let human = render_store_stats(&snap);
        assert!(human.contains("keyed-store stats"));
        assert!(human.contains("2 shards"));
        assert!(human.contains("300 keys"));
        assert!(human.contains("evictions"));
        let json = render_store_stats_json(&snap);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shards\":2"));
        assert!(json.contains("\"keys\":300"));
        // The demo budget is tight enough that the spill path is live.
        assert!(snap.evictions > 0);
        assert!(snap.queries >= 300);
    }
}
