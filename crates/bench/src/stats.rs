//! Sketch-ops stats report: one place that renders everything the
//! observability layer records — union-sketch counters
//! ([`gt_core::MetricsSnapshot`]), referee decode/merge telemetry
//! ([`gt_streams::RefereeTelemetry`]), and per-party phase timings — both
//! human-readable and as a single JSON object (hand-rolled; the build
//! carries no JSON dependency).
//!
//! The `experiments` binary prints this after every run and the
//! `sketch_stats` example exercises it standalone, so CI smoke covers the
//! whole layer end to end. The keyed store's consistent-cut snapshot
//! ([`gt_store::StoreMetricsSnapshot`]) gets the same treatment via
//! [`render_store_stats`] / [`render_store_stats_json`].

use std::time::Duration;

use gt_store::StoreMetricsSnapshot;
use gt_streams::scenario::E2eReport;
use gt_streams::ScenarioReport;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Render the scenario's observability data as an indented, labelled
/// plain-text block.
pub fn render_stats(report: &ScenarioReport) -> String {
    let t = &report.referee_telemetry;
    let m = &report.union_metrics;
    let mut out = String::new();
    out.push_str("sketch-ops stats\n");
    out.push_str(&format!(
        "  scenario: {} parties, {} items, estimate {:.1} vs truth {} (rel err {:.4})\n",
        report.parties, report.total_items, report.estimate, report.truth, report.relative_error,
    ));
    out.push_str(&format!(
        "  throughput: {:.0} items/s across {} parties during observation\n",
        report.throughput(),
        report.parties,
    ));
    out.push_str(&format!(
        "  phases: observe wall {:.3}s (slowest party {:.3}s), encode total {:.3}s, \
         decode {:.3}s, merge {:.3}s\n",
        secs(report.observe_wall),
        secs(report.max_party_observe()),
        secs(report.total_encode()),
        secs(t.decode_time),
        secs(t.merge_time),
    ));
    out.push_str(&format!(
        "  referee: {} accepted, {} rejected ({} truncated, {} bad-magic, {} bad-tag, \
         {} malformed, {} invalid-sketch)\n",
        t.accepted,
        t.rejected(),
        t.rejected_truncated,
        t.rejected_bad_magic,
        t.rejected_bad_tag,
        t.rejected_malformed,
        t.rejected_sketch,
    ));
    let histogram: String = gt_streams::BATCH_BUCKET_LABELS
        .iter()
        .zip(t.summaries_per_batch.iter())
        .map(|(label, count)| format!("{label}:{count}"))
        .collect::<Vec<_>>()
        .join(" ");
    out.push_str(&format!(
        "  referee batches: {} (summaries per batch: {})\n",
        t.batches, histogram,
    ));
    out.push_str(&format!(
        "  union inserts: {} trial decisions ({} sampled, {} duplicate, {} below-level)\n",
        m.trial_inserts(),
        m.inserts_sampled,
        m.inserts_duplicate,
        m.inserts_below_level,
    ));
    out.push_str(&format!(
        "  union merges: {} calls, {} entries absorbed, {} reconciled, {} below-level, \
         {} level promotions\n",
        m.merge_calls,
        m.merge_entries_absorbed,
        m.merge_reconciliations,
        m.merge_below_level,
        m.level_promotions,
    ));
    out
}

/// Render the same data as a single JSON object.
pub fn render_stats_json(report: &ScenarioReport) -> String {
    let t = &report.referee_telemetry;
    // An instantaneous observation phase reports throughput as infinity,
    // which JSON cannot carry; clamp to 0 (no meaningful rate).
    let items_per_sec = if report.throughput().is_finite() {
        report.throughput()
    } else {
        0.0
    };
    format!(
        concat!(
            "{{",
            "\"parties\":{},",
            "\"total_items\":{},",
            "\"estimate\":{},",
            "\"truth\":{},",
            "\"relative_error\":{},",
            "\"items_per_sec\":{},",
            "\"observe_wall_s\":{},",
            "\"max_party_observe_s\":{},",
            "\"encode_total_s\":{},",
            "\"decode_s\":{},",
            "\"merge_s\":{},",
            "\"accepted\":{},",
            "\"rejected\":{},",
            "\"batches\":{},",
            "\"summaries_per_batch\":[{}],",
            "\"union_metrics\":{}",
            "}}"
        ),
        report.parties,
        report.total_items,
        report.estimate,
        report.truth,
        report.relative_error,
        items_per_sec,
        secs(report.observe_wall),
        secs(report.max_party_observe()),
        secs(report.total_encode()),
        secs(t.decode_time),
        secs(t.merge_time),
        t.accepted,
        t.rejected(),
        t.batches,
        t.summaries_per_batch
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(","),
        report.union_metrics.to_json(),
    )
}

/// Render a delta-plane continuous run's accounting as an indented,
/// labelled plain-text block, matching [`render_stats`]'s shape.
///
/// Shows the frame mix (delta vs full), wire bytes and the estimated
/// bytes saved against re-shipping a full summary per applied frame,
/// resyncs, per-party acked generations, staleness at query time, and
/// the live-union equivalence oracle's verdict.
pub fn render_delta_stats(report: &E2eReport) -> String {
    let mut out = String::new();
    out.push_str("delta-plane stats\n");
    let Some(d) = &report.delta else {
        out.push_str("  (run did not use the delta plane)\n");
        return out;
    };
    out.push_str(&format!(
        "  run: {} parties, {} ticks, estimate {:.1} vs truth {} (rel err {:.4})\n",
        report.parties, report.duration, report.final_estimate, report.truth, report.relative_error,
    ));
    out.push_str(&format!(
        "  frames applied: {} delta + {} full (mean {:.0} / {:.0} bytes), {} resyncs, \
         {} duplicates suppressed\n",
        d.delta_frames,
        d.full_frames,
        d.mean_delta_frame(),
        d.mean_full_frame(),
        d.resyncs,
        report.referee.duplicates(),
    ));
    out.push_str(&format!(
        "  bytes: {} on the wire ({} delta + {} full applied); ~{:.0} saved vs re-shipping \
         a full summary per frame\n",
        report.bytes_sent,
        d.delta_bytes,
        d.full_bytes,
        delta_bytes_saved(d),
    ));
    out.push_str(&format!(
        "  acks: {} sent ({} lost); acked generations per party: {:?}\n",
        d.acks_sent, d.acks_lost, d.acked_generations,
    ));
    out.push_str(&format!(
        "  staleness at query time: mean {:.2} ticks, max {} ticks\n",
        d.staleness_mean, d.staleness_max,
    ));
    out.push_str(&format!(
        "  oracle: {} live-union-vs-full-ship checks, {} failures, {} skipped\n",
        d.oracle_checks, d.oracle_failures, d.oracle_skipped,
    ));
    out
}

/// Render the same delta-plane accounting as a single JSON object.
pub fn render_delta_stats_json(report: &E2eReport) -> String {
    let Some(d) = &report.delta else {
        return "{\"delta_plane\":false}".to_string();
    };
    format!(
        concat!(
            "{{",
            "\"delta_plane\":true,",
            "\"parties\":{},",
            "\"duration_ticks\":{},",
            "\"final_estimate\":{},",
            "\"truth\":{},",
            "\"relative_error\":{},",
            "\"bytes_sent\":{},",
            "\"delta_frames\":{},",
            "\"full_frames\":{},",
            "\"delta_bytes\":{},",
            "\"full_bytes\":{},",
            "\"mean_delta_frame\":{:.2},",
            "\"mean_full_frame\":{:.2},",
            "\"bytes_saved_vs_reship\":{:.0},",
            "\"resyncs\":{},",
            "\"duplicates\":{},",
            "\"acks_sent\":{},",
            "\"acks_lost\":{},",
            "\"acked_generations\":[{}],",
            "\"staleness_mean\":{},",
            "\"staleness_max\":{},",
            "\"oracle_checks\":{},",
            "\"oracle_failures\":{},",
            "\"oracle_skipped\":{}",
            "}}"
        ),
        report.parties,
        report.duration,
        report.final_estimate,
        report.truth,
        report.relative_error,
        report.bytes_sent,
        d.delta_frames,
        d.full_frames,
        d.delta_bytes,
        d.full_bytes,
        d.mean_delta_frame(),
        d.mean_full_frame(),
        delta_bytes_saved(d),
        d.resyncs,
        report.referee.duplicates(),
        d.acks_sent,
        d.acks_lost,
        d.acked_generations
            .iter()
            .map(|g| g.to_string())
            .collect::<Vec<_>>()
            .join(","),
        d.staleness_mean,
        d.staleness_max,
        d.oracle_checks,
        d.oracle_failures,
        d.oracle_skipped,
    )
}

/// Estimated wire bytes saved by the delta plane against re-shipping a
/// full summary for every applied frame, priced at this run's own mean
/// full-frame size. Conservative: early full frames are smaller than a
/// steady-state summary, so the true saving is at least this.
fn delta_bytes_saved(d: &gt_streams::scenario::DeltaPlaneReport) -> f64 {
    let frames = (d.delta_frames + d.full_frames) as f64;
    (frames * d.mean_full_frame() - (d.delta_bytes + d.full_bytes) as f64).max(0.0)
}

/// Run a small fixed delta-plane scenario and return its report — the
/// demo/smoke input for the delta-plane stats renderers.
pub fn demo_delta_scenario() -> E2eReport {
    let spec = gt_streams::scenario::ScenarioSpec::builder("stats_demo")
        .parties(3)
        .distinct_per_party(2_000)
        .overlap(0.3)
        .distribution(gt_streams::Distribution::Zipf(1.05))
        .workload_seed(0x5_7A75)
        .sustained(25, 120, 10)
        .query_every(10)
        .query_distinct()
        .delta_plane()
        .build();
    let config = gt_core::SketchConfig::new(0.1, 0.05).unwrap();
    gt_streams::scenario::run_continuous(&config, 0xC0FFEE, &spec)
}

/// Render a keyed-store snapshot as an indented, labelled plain-text
/// block, matching [`render_stats`]'s shape.
pub fn render_store_stats(snap: &StoreMetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("keyed-store stats\n");
    for line in snap.to_string().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Render the same snapshot as a single JSON object (the snapshot's own
/// stable-key-order encoding).
pub fn render_store_stats_json(snap: &StoreMetricsSnapshot) -> String {
    snap.to_json()
}

/// Run a small keyed-store workload and return its snapshot — the
/// demo/smoke input for the store stats renderers. The byte budget is
/// deliberately tight so the eviction and restore counters are live.
pub fn demo_store() -> StoreMetricsSnapshot {
    let config =
        gt_core::SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_hash::HashFamilyKind::Pairwise)
            .expect("static shape");
    let options = gt_store::StoreOptions::default()
        .with_shards(2)
        .with_byte_budget(16 << 10)
        .with_hot_threshold(64);
    let store = gt_store::DistinctStore::new(&config, 0x5_7A75, options).expect("demo store");
    let items: Vec<(u64, u64)> = (0..30_000u64)
        .map(|i| (i % 300, gt_hash::fold61(i)))
        .collect();
    store.extend(&items).expect("demo ingest");
    for key in 0..300 {
        store.estimate(key).expect("demo query");
    }
    store.metrics_snapshot()
}

/// Run a small fixed scenario and return its report — the demo/smoke
/// input for the stats renderers.
pub fn demo_scenario() -> ScenarioReport {
    let spec = gt_streams::WorkloadSpec {
        parties: 4,
        distinct_per_party: 4_000,
        overlap: 0.5,
        items_per_party: 12_000,
        distribution: gt_streams::Distribution::Zipf(1.05),
        seed: 0x5_7A75,
    };
    let config = gt_core::SketchConfig::new(0.1, 0.05).unwrap();
    gt_streams::run_scenario(&config, 0xC0FFEE, &spec.generate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_report_renders_without_panicking() {
        let report = demo_scenario();
        let human = render_stats(&report);
        assert!(human.contains("sketch-ops stats"));
        assert!(human.contains("4 parties"));
        assert!(human.contains("items/s"));
        assert!(human.contains("accepted"));
        assert!(human.contains("referee batches:"));
        assert!(human.contains("summaries per batch:"));
        let json = render_stats_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"parties\":4"));
        assert!(json.contains("\"items_per_sec\":"));
        assert!(json.contains("\"accepted\":4"));
        assert!(json.contains("\"union_metrics\":{"));
        assert!(json.contains("\"batches\":"));
        assert!(json.contains("\"summaries_per_batch\":["));
        // The batched referee folds 4 messages in 1..=4 union merges.
        let t = report.referee_telemetry;
        assert!(t.batches >= 1 && t.batches <= 4);
        assert_eq!(t.summaries_per_batch.iter().sum::<usize>(), t.batches);
        assert!((1..=4).contains(&report.union_metrics.merge_calls));
    }

    #[test]
    fn delta_stats_report_renders_without_panicking() {
        let report = demo_delta_scenario();
        let human = render_delta_stats(&report);
        assert!(human.contains("delta-plane stats"));
        assert!(human.contains("3 parties"));
        assert!(human.contains("frames applied:"));
        assert!(human.contains("acked generations per party:"));
        assert!(human.contains("staleness at query time:"));
        assert!(human.contains("oracle:"));
        let json = render_delta_stats_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"delta_plane\":true"));
        assert!(json.contains("\"delta_frames\":"));
        assert!(json.contains("\"bytes_saved_vs_reship\":"));
        assert!(json.contains("\"acked_generations\":["));
        assert!(json.contains("\"oracle_failures\":0"));
        let d = report.delta.as_ref().expect("delta plane ran");
        assert_eq!(d.oracle_failures, 0);
        assert_eq!(d.full_frames, 3, "one initial full frame per party");
        assert!(d.delta_frames > 0);
        assert_eq!(d.acked_generations.len(), 3);
        assert!(d.acked_generations.iter().all(|&g| g > 0));
        // A clean-channel run without the delta plane renders honestly.
        let plain = demo_scenario_e2e_without_delta();
        assert!(render_delta_stats(&plain).contains("did not use the delta plane"));
        assert_eq!(render_delta_stats_json(&plain), "{\"delta_plane\":false}");
    }

    fn demo_scenario_e2e_without_delta() -> E2eReport {
        let spec = gt_streams::scenario::ScenarioSpec::builder("stats_demo_full")
            .parties(2)
            .distinct_per_party(500)
            .workload_seed(1)
            .sustained(10, 40, 10)
            .build();
        let config = gt_core::SketchConfig::new(0.1, 0.05).unwrap();
        gt_streams::scenario::run_sustained(&config, 0xC0FFEE, &spec)
    }

    #[test]
    fn store_stats_report_renders_without_panicking() {
        let snap = demo_store();
        let human = render_store_stats(&snap);
        assert!(human.contains("keyed-store stats"));
        assert!(human.contains("2 shards"));
        assert!(human.contains("300 keys"));
        assert!(human.contains("evictions"));
        let json = render_store_stats_json(&snap);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shards\":2"));
        assert!(json.contains("\"keys\":300"));
        // The demo budget is tight enough that the spill path is live.
        assert!(snap.evictions > 0);
        assert!(snap.queries >= 300);
    }
}
