//! E8 — distribution robustness.
//!
//! Claim: F₀ estimation depends only on the distinct-label set, so the
//! error is flat across item-frequency skew. We sweep Zipf θ over a
//! distributed workload and report both the measured duplication factor
//! (which changes a lot) and the union error (which must not).

use crate::pct;
use crate::table::Table;
use gt_core::SketchConfig;
use gt_streams::{run_scenario, Distribution, StreamOracle, WorkloadSpec};

/// Run E8.
pub fn run(quick: bool) -> Vec<Table> {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let distinct = if quick { 10_000 } else { 30_000 };
    let seeds: u64 = if quick { 5 } else { 15 };

    let mut t = Table::new(
        "E8",
        "union error vs item-frequency skew",
        &[
            "distribution",
            "touched_distinct",
            "duplication",
            "mean_err",
            "max_err",
        ],
    );

    let dists = [
        ("each-once", Distribution::EachOnce),
        ("uniform", Distribution::Uniform),
        ("zipf(0.5)", Distribution::Zipf(0.5)),
        ("zipf(1.0)", Distribution::Zipf(1.0)),
        ("zipf(1.5)", Distribution::Zipf(1.5)),
        ("zipf(2.0)", Distribution::Zipf(2.0)),
    ];
    for (name, dist) in dists {
        let spec = WorkloadSpec {
            parties: 4,
            distinct_per_party: distinct,
            overlap: 0.5,
            items_per_party: distinct * 5,
            distribution: dist,
            seed: 0xE8,
        };
        let streams = spec.generate();
        let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
        let mut errs = Vec::new();
        for s in 0..seeds {
            let report = run_scenario(&config, 0xE800 + s, &streams);
            errs.push(report.relative_error);
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().copied().fold(0.0, f64::max);
        t.row(vec![
            name.to_string(),
            oracle.distinct().to_string(),
            format!("{:.1}x", oracle.duplication_factor()),
            pct(mean),
            pct(max),
        ]);
    }
    t.note("4 parties, 50% overlap; heavier skew -> fewer touched labels & more duplication");
    t.note("PASS condition: mean_err flat (within noise) across the sweep; no drift with skew");
    vec![t]
}
