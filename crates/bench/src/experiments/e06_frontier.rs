//! E6 — the space/accuracy frontier at equal byte budgets.
//!
//! All estimators are granted (approximately) the same number of summary
//! bytes and run over the same streams; we report error quantiles across
//! seeds. Expected shape: GT ≈ KMV (same family of ideas), PCSA slightly
//! behind at equal bytes, LogLog best-per-byte at large budgets (it spends
//! 1 byte/register), linear counting excellent until its bitmap saturates,
//! reservoir hopeless under duplication.

use crate::pct;
use crate::table::Table;
use crate::ErrorSummary;
use gt_baselines::{
    DistinctCounter, HyperLogLog, KmvSketch, LinearCounter, LogLogSketch, PcsaSketch,
    ReservoirSample,
};
use gt_core::{DistinctSketch, SketchConfig};
use gt_hash::HashFamilyKind;

/// Duplicate-heavy stream over `distinct` labels (~8× duplication).
fn stream(distinct: u64, salt: u64) -> Vec<u64> {
    let universe = crate::experiments::common::labels(distinct, salt);
    let mut out = Vec::with_capacity(universe.len() * 8);
    for rep in 0..8u64 {
        for i in 0..universe.len() {
            // vary order between passes
            let idx =
                (i as u64).wrapping_mul(2654435761).wrapping_add(rep) as usize % universe.len();
            out.push(universe[idx]);
        }
    }
    out
}

fn errors_for<C: DistinctCounter>(
    make: impl Fn(u64) -> C,
    stream: &[u64],
    truth: f64,
    seeds: u64,
) -> ErrorSummary {
    let errs: Vec<f64> = (0..seeds)
        .map(|s| {
            let mut c = make(s);
            c.extend_labels(stream.iter().copied());
            gt_core::relative_error(c.estimate(), truth)
        })
        .collect();
    ErrorSummary::of(errs, f64::INFINITY)
}

/// Run E6.
pub fn run(quick: bool) -> Vec<Table> {
    let (distinct, seeds) = if quick {
        (30_000u64, 10u64)
    } else {
        (100_000, 40)
    };
    let data = stream(distinct, 0xE6);
    let truth = distinct as f64;

    let mut t = Table::new(
        "E6",
        "equal-space accuracy frontier (duplicate-heavy stream)",
        &["budget", "algorithm", "actual_bytes", "p50_err", "p95_err"],
    );

    for budget in [4usize << 10, 16 << 10, 64 << 10] {
        // GT: 9 trials, capacity = budget/(9 slots × 16 B incl. table slack).
        let trials = 9usize;
        let capacity = (budget / (trials * 16)).max(4);
        let gt_cfg =
            SketchConfig::from_shape(0.1, 0.1, capacity, trials, HashFamilyKind::Pairwise).unwrap();
        let rows: Vec<(&str, ErrorSummary, usize)> = vec![
            (
                "gt-sketch",
                errors_for(|s| DistinctSketch::new(&gt_cfg, s), &data, truth, seeds),
                gt_cfg.max_sample_entries() * 16,
            ),
            (
                "kmv",
                errors_for(|s| KmvSketch::new(budget / 8, s), &data, truth, seeds),
                budget,
            ),
            (
                "fm-pcsa",
                errors_for(|s| PcsaSketch::new(budget / 8, s), &data, truth, seeds),
                budget,
            ),
            (
                "loglog",
                errors_for(|s| LogLogSketch::new(budget, s), &data, truth, seeds),
                budget,
            ),
            (
                "hyperloglog",
                errors_for(|s| HyperLogLog::new(budget, s), &data, truth, seeds),
                budget,
            ),
            (
                "linear-counting",
                errors_for(|s| LinearCounter::new(budget * 8, s), &data, truth, seeds),
                budget,
            ),
            (
                "reservoir-naive",
                errors_for(|s| ReservoirSample::new(budget / 8, s), &data, truth, seeds),
                budget,
            ),
        ];
        for (name, s, actual) in rows {
            t.row(vec![
                crate::bytes_h(budget),
                name.to_string(),
                crate::bytes_h(actual),
                pct(s.p50),
                pct(s.p95),
            ]);
        }
    }
    t.note(format!(
        "{distinct} distinct labels, ~8x duplication, {seeds} seeds per cell"
    ));
    t.note("expected: gt ~ kmv (same idea; GT pays for its power-of-two level grid); linear-counting best while its bitmap is sparse; reservoir catastrophic");
    t.note("loglog is strongest per byte while n >> registers, but collapses when registers are under-filled (the 64 KiB row) — the small-range hole HLL later patched with a linear-counting fallback");
    vec![t]
}
