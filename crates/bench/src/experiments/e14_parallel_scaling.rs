//! E14 — parallel scaling: fan-out/merge ingest vs thread count.
//!
//! Claim: because the union of coordinated sketches is *exactly* the
//! sketch of the concatenated input, [`gt_core::parallel::build_parallel`]
//! can spread ingest across threads with zero accuracy cost. This
//! experiment (a) **asserts** bitwise identity of the per-trial sample
//! sets at every thread count against the single-threaded build, and
//! (b) records the speedup curve, writing the machine-readable summary
//! CI gates on to `results/BENCH_parallel.json`.
//!
//! The summary records the host's worker count
//! ([`gt_core::effective_workers`]) next to the speedups, because the
//! numbers are meaningless without it: the PR-3 "regression" (0.53× at 4
//! threads) was this bench oversubscribing a one-core runner. Since the
//! builder clamps to the host's cores, a one-core run now reads parity
//! (~1.0×) at every width and the CI gate only demands speedup > 1 when
//! `workers >= 2`.

use std::time::{Duration, Instant};

use crate::experiments::common::labels;
use crate::table::Table;
use gt_core::parallel::build_parallel;
use gt_core::{effective_workers, DistinctSketch, SketchConfig};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_parallel.json";

fn sample_sets(s: &DistinctSketch) -> Vec<std::collections::BTreeSet<u64>> {
    s.trials()
        .iter()
        .map(|t| t.sample_iter().map(|(k, _)| k).collect())
        .collect()
}

/// Run E14.
pub fn run(quick: bool) -> Vec<Table> {
    let n: u64 = if quick { 300_000 } else { 3_000_000 };
    let threads: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let reps = if quick { 2 } else { 3 };
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let data = labels(n, 0xE14);
    let workers = effective_workers();

    let baseline = build_parallel(&config, 0xE14, &data, 1).expect("sequential build");
    let baseline_sets = sample_sets(&baseline);

    let mut rows: Vec<(usize, f64, f64)> = Vec::new(); // (threads, ms, speedup)
    let mut single_thread_best = Duration::MAX;
    let mut table = Table::new(
        "E14",
        "parallel build scaling (bitwise-identical at every width)",
        &[
            "threads",
            "effective",
            "wall_ms",
            "items_per_sec",
            "speedup_vs_1",
            "identical",
        ],
    );
    for &t in threads {
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let start = Instant::now();
            let sketch = build_parallel(&config, 0xE14, &data, t).expect("parallel build");
            let elapsed = start.elapsed();
            best = best.min(elapsed);
            // The whole point: parallelism must not change the state.
            assert_eq!(
                sample_sets(&sketch),
                baseline_sets,
                "parallel build diverged at {t} threads"
            );
        }
        if t == 1 {
            single_thread_best = best;
        }
        let ms = best.as_secs_f64() * 1e3;
        let speedup = single_thread_best.as_secs_f64() / best.as_secs_f64();
        rows.push((t, ms, speedup));
        table.row(vec![
            t.to_string(),
            t.min(workers).to_string(),
            format!("{ms:.1}"),
            format!("{:.3e}", n as f64 / best.as_secs_f64()),
            format!("{speedup:.2}x"),
            "yes".to_string(),
        ]);
    }
    table.note(format!(
        "n = {n} labels, best of {reps} reps; identity asserted per rep (panics on divergence)"
    ));
    table.note(format!(
        "host workers (effective_workers) = {workers}; requested thread counts are \
         ceilings, clamped to the host — 'effective' is what actually ran"
    ));
    table.note(if workers >= 2 {
        "PASS condition: identical = yes everywhere; speedup > 1 at every clamped \
         width >= 2 until the merge + memory bandwidth floor"
    } else {
        "PASS condition (single-core host): identical = yes everywhere; every width \
         degrades to the sequential build, so speedup ~ 1.0 (parity, not slowdown)"
    });
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(n, workers, &rows, quick);
    vec![table]
}

/// Hand-rolled JSON mirror of the table. `bitwise_identical` is only ever
/// written as `true`: divergence panics the run instead. `workers` is the
/// host parallelism the builds were clamped to — the CI gate keys its
/// speedup demand on it.
fn write_json(n: u64, workers: usize, rows: &[(usize, f64, f64)], quick: bool) {
    let rows_json = rows
        .iter()
        .map(|&(t, ms, speedup)| {
            format!("{{\"threads\":{t},\"wall_ms\":{ms:.2},\"speedup_vs_1\":{speedup:.3}}}")
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"experiment\":\"e14\",\"quick\":{quick},\"n\":{n},\"workers\":{workers},\
         \"rows\":[{rows_json}],\"bitwise_identical\":true}}\n"
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
