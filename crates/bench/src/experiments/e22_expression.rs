//! E22 — set-expression queries at the referee: accuracy vs expression
//! depth and operand overlap.
//!
//! Claim: the expression engine answers composite set queries
//! (∪ / ∩ / ∖ nests and Jaccard between sub-expressions) over the
//! referee's retained per-party summaries within the additive error
//! contract ε·|union of referenced streams| — at every nesting depth, not
//! just the pairwise depth the `similarity()` path already covered. The
//! queries run on the same single-message-per-party state the union
//! estimate uses; no extra communication is spent.
//!
//! The sweep crosses expression depth (a leaf, then one operator added
//! per level up to depth 4) with the workload's overlap fraction, because
//! overlap is what moves the intersection/difference truths from empty to
//! total. Every answer is scored against the exact oracle
//! ([`gt_core::expr::SetExpr::eval_exact`] over the raw streams) in
//! contract units: `|estimate − truth| / (ε·|referenced union|)`.
//!
//! Writes the machine-readable summary the CI bench-smoke gate checks to
//! `results/BENCH_expr.json`: per-depth mean/max scaled error and the
//! Jaccard absolute-error spread.

use crate::table::Table;
use gt_core::{SetExpr, SketchConfig};
use gt_streams::{run_expression_scenario, Distribution, WorkloadSpec};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_expr.json";

/// Accuracy accumulator for one expression shape across the sweep.
struct DepthStats {
    depth: usize,
    expr: String,
    scaled_errors: Vec<f64>,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Run E22.
pub fn run(quick: bool) -> Vec<Table> {
    let distinct_per_party: u64 = if quick { 6_000 } else { 30_000 };
    let seeds: u64 = if quick { 2 } else { 5 };
    let overlaps: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    let config = SketchConfig::new(0.1, 0.05).expect("static parameters");
    let epsilon = config.epsilon();

    // One operator added per level: depth d references the first d
    // operands, so every leaf is load-bearing at its depth.
    let (a, b, c, d) = (
        SetExpr::leaf(0),
        SetExpr::leaf(1),
        SetExpr::leaf(2),
        SetExpr::leaf(3),
    );
    let queries = [
        a.clone(),
        a.clone().union(b.clone()),
        a.clone().union(b.clone()).intersect(c.clone()),
        a.clone()
            .union(b.clone())
            .intersect(c.clone())
            .difference(d.clone()),
    ];
    let jaccard_queries = [(a.clone().union(b.clone()), c.clone().difference(a.clone()))];

    let mut depth_stats: Vec<DepthStats> = queries
        .iter()
        .map(|q| DepthStats {
            depth: q.depth(),
            expr: q.to_string(),
            scaled_errors: Vec::new(),
        })
        .collect();
    let mut jaccard_abs_errors: Vec<f64> = Vec::new();

    let mut table = Table::new(
        "E22",
        "set-expression queries at the referee: error vs depth and overlap",
        &[
            "overlap",
            "seed",
            "expr (depth)",
            "estimate",
            "truth",
            "scaled err",
        ],
    );

    for &overlap in overlaps {
        for seed in 0..seeds {
            let spec = WorkloadSpec {
                parties: 4,
                distinct_per_party,
                overlap,
                items_per_party: distinct_per_party * 2,
                distribution: Distribution::Uniform,
                seed: 0xE22 + seed,
            };
            let streams = spec.generate();
            let report =
                run_expression_scenario(&config, 1000 + seed, &streams, &queries, &jaccard_queries);
            for (outcome, stats) in report.queries.iter().zip(depth_stats.iter_mut()) {
                stats.scaled_errors.push(outcome.scaled_error);
                table.row(vec![
                    format!("{overlap:.2}"),
                    seed.to_string(),
                    format!("{} ({})", outcome.expr, outcome.depth),
                    format!("{:.0}", outcome.answer.estimate.value),
                    outcome.truth.to_string(),
                    format!("{:.3}", outcome.scaled_error),
                ]);
            }
            for outcome in &report.jaccard_queries {
                jaccard_abs_errors.push(outcome.abs_error);
                table.row(vec![
                    format!("{overlap:.2}"),
                    seed.to_string(),
                    format!("J({}, {})", outcome.exprs.0, outcome.exprs.1),
                    format!("{:.4}", outcome.answer.jaccard),
                    format!("{:.4}", outcome.truth),
                    format!("{:.4} (abs)", outcome.abs_error),
                ]);
            }
        }
    }

    let mut summary = Table::new(
        "E22-summary",
        "scaled error by expression depth (contract units: eps * |referenced union|)",
        &[
            "expr",
            "depth",
            "queries",
            "mean scaled err",
            "max scaled err",
        ],
    );
    for stats in &depth_stats {
        summary.row(vec![
            stats.expr.clone(),
            stats.depth.to_string(),
            stats.scaled_errors.len().to_string(),
            format!("{:.3}", mean(&stats.scaled_errors)),
            format!("{:.3}", max(&stats.scaled_errors)),
        ]);
    }
    summary.row(vec![
        "Jaccard (abs error)".into(),
        "-".into(),
        jaccard_abs_errors.len().to_string(),
        format!("{:.4}", mean(&jaccard_abs_errors)),
        format!("{:.4}", max(&jaccard_abs_errors)),
    ]);
    summary.note(format!(
        "4 parties, {distinct_per_party} distinct/party, overlaps {overlaps:?}, {seeds} seeds, \
         eps = {epsilon}; scaled err <= 1 is the single-estimate contract, deeper nests compound \
         additively (each operator adds one coordinated estimate's worth of slack)"
    ));
    summary.note(
        "PASS condition: max scaled error <= depth at every depth (leaf = 1 contract unit), \
         Jaccard max abs error <= 2*eps",
    );
    summary.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(
        &depth_stats,
        &jaccard_abs_errors,
        epsilon,
        overlaps,
        seeds,
        quick,
    );
    vec![table, summary]
}

/// Hand-rolled JSON mirror of the summary for the CI gate.
fn write_json(
    depth_stats: &[DepthStats],
    jaccard_abs_errors: &[f64],
    epsilon: f64,
    overlaps: &[f64],
    seeds: u64,
    quick: bool,
) {
    let depths: Vec<String> = depth_stats
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "{{\"depth\":{},\"expr\":\"{}\",\"queries\":{},",
                    "\"mean_scaled_error\":{:.4},\"max_scaled_error\":{:.4}}}"
                ),
                s.depth,
                s.expr,
                s.scaled_errors.len(),
                mean(&s.scaled_errors),
                max(&s.scaled_errors),
            )
        })
        .collect();
    let overlaps: Vec<String> = overlaps.iter().map(|o| format!("{o:.2}")).collect();
    let json = format!(
        concat!(
            "{{\"experiment\":\"e22\",\"quick\":{},\"parties\":4,\"epsilon\":{},",
            "\"seeds\":{},\"overlaps\":[{}],\"depths\":[{}],",
            "\"jaccard\":{{\"queries\":{},\"mean_abs_error\":{:.4},\"max_abs_error\":{:.4}}}}}\n"
        ),
        quick,
        epsilon,
        seeds,
        overlaps.join(","),
        depths.join(","),
        jaccard_abs_errors.len(),
        mean(jaccard_abs_errors),
        max(jaccard_abs_errors),
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
