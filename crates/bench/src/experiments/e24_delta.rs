//! E24 — incremental delta plane: steady-state communication vs
//! estimate staleness, against full re-ship at the same cadence.
//!
//! Claim: once the coordinated sample stabilises, a party's state
//! changes by O(changes) per reporting interval while its cumulative
//! summary stays O(summary)-sized — so shipping delta frames instead of
//! re-shipping the summary cuts steady-state bytes by >= 5x at equal
//! cadence, hence equal (or better) estimate staleness. The referee's
//! incrementally-maintained live union is **bitwise identical** to
//! decoding a fresh full ship at every ack point; the continuous engine
//! checks that equivalence after every applied frame
//! (`oracle_checks` / `oracle_failures` below), so the perf claim never
//! detaches from the exactness claim.
//!
//! Method: one sustained workload (fixed parties / rate / duration /
//! seeds), swept over the reporting cadence. Each cadence runs twice —
//! [`ReportingMode::DeltaPlane`] vs full re-ship — on identical seeds,
//! plus one lossy-channel delta run (drops on both paths, so dup /
//! reorder / resync machinery is exercised under measurement). Queries
//! fire every [`QUERY_EVERY`] ticks regardless of cadence, so slower
//! cadences honestly pay more staleness: that is the frontier. Writes
//! `results/BENCH_delta.json` for the CI gate: bytes ratio >= floor,
//! staleness bounded by cadence, bytes-vs-staleness monotone across the
//! sweep, zero oracle failures anywhere.
//!
//! [`ReportingMode::DeltaPlane`]: gt_streams::scenario::ReportingMode

use crate::table::Table;
use gt_core::{effective_workers, SketchConfig};
use gt_streams::scenario::{run_continuous, run_sustained, E2eReport, ScenarioSpec};
use gt_streams::{Distribution, RetryPolicy, Tick, TransportSpec};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_delta.json";

/// Master seed shared by every run (workload seed is fixed in the spec,
/// so delta and full runs see identical streams).
const MASTER_SEED: u64 = 0xE24;

/// Query cadence, deliberately decoupled from the reporting cadence:
/// queries between emissions see stale state, which is the cost axis
/// the frontier trades bytes against.
const QUERY_EVERY: Tick = 5;

/// The steady-state bytes-reduction floor the CI gate demands at every
/// swept cadence (full re-ship bytes / delta-plane bytes).
pub const BYTES_RATIO_FLOOR: f64 = 5.0;

/// One measured run.
struct Row {
    mode: &'static str,
    report_every: Tick,
    report: E2eReport,
}

fn base_spec(
    name: &str,
    parties: usize,
    distinct: u64,
    rate: u64,
    duration: Tick,
    report_every: Tick,
) -> gt_streams::scenario::ScenarioBuilder {
    ScenarioSpec::builder(name)
        .parties(parties)
        .distinct_per_party(distinct)
        .overlap(0.25)
        .distribution(Distribution::Zipf(1.05))
        .workload_seed(0x24)
        .sustained(rate, duration, report_every)
        .query_every(QUERY_EVERY)
        .query_distinct()
}

/// Run E24.
pub fn run(quick: bool) -> Vec<Table> {
    let config = SketchConfig::new(0.1, 0.05).expect("static config");
    let workers = effective_workers();

    let (parties, distinct, rate, duration) = if quick {
        (4usize, 4_000u64, 30u64, 240 as Tick)
    } else {
        (8, 20_000, 50, 600)
    };
    let cadences: &[Tick] = if quick { &[5, 20] } else { &[5, 10, 20, 40] };

    let mut rows: Vec<Row> = Vec::new();
    for &cadence in cadences {
        let delta_spec = base_spec("delta", parties, distinct, rate, duration, cadence)
            .delta_plane()
            .build();
        rows.push(Row {
            mode: "delta",
            report_every: cadence,
            report: run_continuous(&config, MASTER_SEED, &delta_spec),
        });
        let full_spec = base_spec("full", parties, distinct, rate, duration, cadence).build();
        rows.push(Row {
            mode: "full",
            report_every: cadence,
            report: run_sustained(&config, MASTER_SEED, &full_spec),
        });
    }
    // One lossy run at the base cadence: drops + ack drops force dups,
    // retransmits and (possibly) resyncs through the measured path. It
    // is excluded from the frontier gates but its oracle still counts.
    let lossy_spec = base_spec("delta_lossy", parties, distinct, rate, duration, cadences[0])
        .transport(TransportSpec::lossy(0.05, 0xE24))
        .retry(RetryPolicy {
            ack_drop_probability: 0.05,
            ..RetryPolicy::with_budget(8)
        })
        .delta_plane()
        .build();
    rows.push(Row {
        mode: "delta_lossy",
        report_every: cadences[0],
        report: run_continuous(&config, MASTER_SEED, &lossy_spec),
    });

    let mut table = Table::new(
        "E24",
        "delta plane vs full re-ship: steady-state bytes vs estimate staleness",
        &[
            "mode",
            "cadence",
            "bytes sent",
            "bytes/tick",
            "mean frame (delta/full)",
            "staleness mean/max",
            "resyncs",
            "bytes ratio",
            "oracle ok/fail",
        ],
    );
    let mut min_ratio = f64::INFINITY;
    for row in &rows {
        let r = &row.report;
        let ratio = full_bytes_at(&rows, row.report_every).map(|fb| {
            let ratio = fb as f64 / r.bytes_sent.max(1) as f64;
            if row.mode == "delta" {
                min_ratio = min_ratio.min(ratio);
            }
            ratio
        });
        let (frames, staleness, resyncs, oracle) = match &r.delta {
            Some(d) => (
                format!("{:.0} / {:.0}", d.mean_delta_frame(), d.mean_full_frame()),
                format!("{:.2} / {}", d.staleness_mean, d.staleness_max),
                d.resyncs.to_string(),
                format!("{} / {}", d.oracle_checks, d.oracle_failures),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        table.row(vec![
            row.mode.to_string(),
            row.report_every.to_string(),
            r.bytes_sent.to_string(),
            format!("{:.1}", r.bytes_sent as f64 / r.duration.max(1) as f64),
            frames,
            staleness,
            resyncs,
            match (row.mode, ratio) {
                ("full", _) => "1.0 (baseline)".into(),
                (_, Some(x)) => format!("{x:.1}x"),
                _ => "-".into(),
            },
            oracle,
        ]);
    }
    table.note(format!(
        "same workload seed per cadence pair; Zipf(1.05) label skew, so the new-label rate decays \
         into a steady state as monitoring traffic does; queries every {QUERY_EVERY} ticks \
         regardless of cadence, so staleness is the honest cost of reporting less often; \
         workers = {workers}"
    ));
    table.note(
        "every delta run re-checks, after each applied frame, that the incrementally maintained \
         union is canonical-bytes identical to a fresh decode of full ships at the acked \
         generations — oracle failures must be zero",
    );
    table.note(format!(
        "PASS condition: bytes ratio >= {BYTES_RATIO_FLOOR:.0} at every cadence; delta staleness \
         bounded by cadence + query offset; bytes/tick non-increasing and staleness non-decreasing \
         in cadence; zero oracle failures and full coverage everywhere"
    ));
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(&rows, quick, workers, min_ratio);
    vec![table]
}

/// Full re-ship bytes at the same cadence, if that baseline ran.
fn full_bytes_at(rows: &[Row], cadence: Tick) -> Option<u64> {
    rows.iter()
        .find(|r| r.mode == "full" && r.report_every == cadence)
        .map(|r| r.report.bytes_sent)
}

/// Hand-rolled JSON mirror for the CI gate.
fn write_json(rows: &[Row], quick: bool, workers: usize, min_ratio: f64) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|row| {
            let r = &row.report;
            let ratio = full_bytes_at(rows, row.report_every)
                .map(|fb| format!("{:.4}", fb as f64 / r.bytes_sent.max(1) as f64))
                .unwrap_or_else(|| "null".into());
            let delta = match &r.delta {
                Some(d) => format!(
                    concat!(
                        "{{\"delta_frames\":{},\"full_frames\":{},\"delta_bytes\":{},",
                        "\"full_bytes\":{},\"mean_delta_frame\":{:.2},\"mean_full_frame\":{:.2},",
                        "\"resyncs\":{},\"acks_sent\":{},\"acks_lost\":{},",
                        "\"staleness_mean\":{:.4},\"staleness_max\":{},",
                        "\"oracle_checks\":{},\"oracle_failures\":{},\"oracle_skipped\":{}}}"
                    ),
                    d.delta_frames,
                    d.full_frames,
                    d.delta_bytes,
                    d.full_bytes,
                    d.mean_delta_frame(),
                    d.mean_full_frame(),
                    d.resyncs,
                    d.acks_sent,
                    d.acks_lost,
                    d.staleness_mean,
                    d.staleness_max,
                    d.oracle_checks,
                    d.oracle_failures,
                    d.oracle_skipped,
                ),
                None => "null".into(),
            };
            format!(
                concat!(
                    "{{\"mode\":\"{}\",\"report_every\":{},\"duration_ticks\":{},",
                    "\"bytes_sent\":{},\"bytes_per_tick\":{:.3},\"reports_sent\":{},",
                    "\"item_coverage\":{:.6},\"final_estimate\":{:.3},\"truth\":{},",
                    "\"relative_error\":{:.6},\"bytes_ratio_vs_full\":{},\"delta\":{}}}"
                ),
                row.mode,
                row.report_every,
                r.duration,
                r.bytes_sent,
                r.bytes_sent as f64 / r.duration.max(1) as f64,
                r.reports_sent,
                r.item_coverage,
                r.final_estimate,
                r.truth,
                r.relative_error,
                ratio,
                delta,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"experiment\":\"e24\",\"quick\":{},\"workers\":{},\"query_every\":{},",
            "\"bytes_ratio_floor\":{:.1},\"min_bytes_ratio\":{:.4},\"rows\":[{}]}}\n"
        ),
        quick,
        workers,
        QUERY_EVERY,
        BYTES_RATIO_FLOOR,
        if min_ratio.is_finite() { min_ratio } else { 0.0 },
        json_rows.join(",")
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
