//! E7 — SumDistinct under duplication.
//!
//! Claim: the SumDistinct estimate depends only on the distinct labels —
//! the duplication factor is invisible — while a plain running sum
//! overcounts by exactly that factor. Also measures the value-skew
//! sensitivity documented in `gt_core::sumdistinct`.

use crate::pct;
use crate::table::Table;
use gt_core::{SketchConfig, SumDistinctSketch};

/// Run E7.
pub fn run(quick: bool) -> Vec<Table> {
    let distinct = if quick { 20_000u64 } else { 50_000 };
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let universe = crate::experiments::common::labels(distinct, 0xE7);
    let value_of = |l: u64| l % 10 + 1; // values in [1, 10]
    let truth: u64 = universe.iter().map(|&l| value_of(l)).sum();

    let mut t = Table::new(
        "E7a",
        "SumDistinct vs duplication factor",
        &["duplication", "plain_sum_ratio", "sumdistinct_err"],
    );
    for dup in [1u64, 3, 10, 30, 100] {
        let mut sketch = SumDistinctSketch::new(&config, 0xE701);
        let mut plain_sum = 0u64;
        for rep in 0..dup {
            for i in 0..universe.len() {
                // permute order per pass so duplication isn't batched
                let idx =
                    (i as u64).wrapping_mul(0x9E3779B9).wrapping_add(rep) as usize % universe.len();
                let label = universe[idx];
                sketch.insert(label, value_of(label));
                plain_sum += value_of(label);
            }
        }
        let est = sketch.estimate_sum().value;
        t.row(vec![
            format!("{dup}x"),
            format!("{:.1}x", plain_sum as f64 / truth as f64),
            pct((est - truth as f64).abs() / truth as f64),
        ]);
    }
    t.note(format!(
        "{distinct} distinct labels, values in [1, 10], eps = 0.05"
    ));
    t.note("PASS condition: sumdistinct_err flat in duplication; plain_sum_ratio = duplication exactly");

    // Value-skew sensitivity: widen the value range at fixed capacity.
    let mut skew = Table::new(
        "E7b",
        "SumDistinct error vs value skew (R = max/mean ratio grows)",
        &["value_range", "R_over_mean", "sum_err", "distinct_err"],
    );
    for range in [1u64, 10, 100, 1000] {
        let value = |l: u64| l % range + 1;
        let truth: u64 = universe.iter().map(|&l| value(l)).sum();
        let mut sketch = SumDistinctSketch::new(&config, 0xE702);
        for &l in &universe {
            sketch.insert(l, value(l));
        }
        let mean = truth as f64 / distinct as f64;
        skew.row(vec![
            format!("[1, {range}]"),
            format!("{:.1}", range as f64 / mean),
            pct((sketch.estimate_sum().value - truth as f64).abs() / truth as f64),
            pct((sketch.estimate_distinct().value - distinct as f64).abs() / distinct as f64),
        ]);
    }
    skew.note("expected: sum_err grows ~ sqrt(R/mean) at fixed capacity; distinct_err unaffected");

    vec![t, skew]
}
