//! E19 — referee union pipeline: sequential fold vs kernel fold vs
//! parallel tree reduction over `t` party messages.
//!
//! Claim: the referee's cost of answering a union query is linear in the
//! number of parties and independent of stream length, and the batched
//! pipeline (zero-copy decode into a reusable arena + tree-reduction
//! merge) beats the per-entry sequential reference fold at realistic
//! fleet sizes. Every variant must produce a union that is
//! canonical-wire-bytes **identical** to the sequential left fold — the
//! experiment asserts this per rep and panics on divergence, so the
//! speedup is free of accuracy (or even representation) cost.
//!
//! Variants:
//! * `sequential_reference` — decode each message, merge per entry via
//!   [`gt_core::GtSketch::merge_from_reference`] (the pre-kernel oracle).
//! * `kernel_fold` — decode each message, merge via the batch-monomorphic
//!   kernel ([`gt_core::GtSketch::merge_from`]); same left fold, faster
//!   inner loop.
//! * `tree` — decode into a reusable arena with
//!   [`gt_streams::decode_sketch_into`] (no per-message sketch
//!   allocation), then union via [`gt_core::merge_tree`] on worker
//!   threads.
//!
//! Writes the machine-readable summary CI gates on to
//! `results/BENCH_union.json`.

use std::time::{Duration, Instant};

use crate::table::Table;
use gt_core::{merge_tree, DistinctSketch, SketchConfig};
use gt_streams::{decode_sketch, decode_sketch_into, encode_sketch, DecodeScratch};
use gt_streams::{Party, PartyMessage};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_union.json";

/// One measured (t, overlap, variant) cell.
struct Row {
    t: usize,
    overlap: f64,
    variant: &'static str,
    decode: Duration,
    merge: Duration,
    bytes: usize,
}

impl Row {
    fn wall(&self) -> Duration {
        self.decode + self.merge
    }

    fn merges_per_sec(&self) -> f64 {
        self.t as f64 / self.merge.as_secs_f64().max(1e-12)
    }

    fn decode_bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.decode.as_secs_f64().max(1e-12)
    }
}

/// Build `t` finished party messages over streams with a shared-label
/// fraction of `overlap` (the rest unique per party).
fn party_messages(
    config: &SketchConfig,
    seed: u64,
    t: usize,
    per_party: u64,
    overlap: f64,
) -> Vec<PartyMessage> {
    let shared_n = (per_party as f64 * overlap) as u64;
    let shared: Vec<u64> = (0..shared_n).map(gt_hash::fold61).collect();
    (0..t)
        .map(|id| {
            let mut party = Party::new(id, config, seed);
            let mut labels = shared.clone();
            let base = (1 << 32) + (id as u64) * (per_party - shared_n);
            labels.extend((0..per_party - shared_n).map(|i| gt_hash::fold61(base + i)));
            party.observe_stream(&labels);
            party.finish()
        })
        .collect()
}

/// Sequential left fold into a fresh union: decode all `t` messages with
/// the allocating decoder, then fold. The phases are kept separate (as in
/// the tree variant) so decode and merge are each compared like for like.
/// `reference` selects the per-entry oracle merge instead of the batch
/// kernel.
fn union_fold(
    config: &SketchConfig,
    seed: u64,
    msgs: &[PartyMessage],
    reference: bool,
) -> (DistinctSketch, Duration, Duration) {
    let start = Instant::now();
    let decoded: Vec<DistinctSketch> = msgs
        .iter()
        .map(|msg| decode_sketch(msg.payload.clone()).expect("coordinated"))
        .collect();
    let decode = start.elapsed();
    let start = Instant::now();
    let mut union = DistinctSketch::new(config, seed);
    for sketch in &decoded {
        if reference {
            union.merge_from_reference(sketch).expect("coordinated");
        } else {
            union.merge_from(sketch).expect("coordinated");
        }
    }
    (union, decode, start.elapsed())
}

/// The batched pipeline: zero-copy decode into a reusable arena, then a
/// parallel tree reduction. The arena and scratch are passed in so reps
/// measure steady-state (allocation-free) decoding, as the referee sees.
fn union_tree(
    msgs: &[PartyMessage],
    arena: &mut [DistinctSketch],
    scratch: &mut DecodeScratch<()>,
) -> (DistinctSketch, Duration, Duration) {
    let start = Instant::now();
    for (slot, msg) in arena.iter_mut().zip(msgs) {
        decode_sketch_into(slot, msg.payload.clone(), scratch).expect("coordinated");
    }
    let decode = start.elapsed();
    let start = Instant::now();
    let union = merge_tree(&arena[..msgs.len()]).expect("non-empty");
    (union, decode, start.elapsed())
}

/// Run E19.
pub fn run(quick: bool) -> Vec<Table> {
    let ts: &[usize] = if quick {
        &[4, 16, 64]
    } else {
        &[4, 16, 64, 256, 1024]
    };
    let overlaps: &[f64] = if quick { &[0.0, 0.5] } else { &[0.0, 0.5, 0.9] };
    let per_party: u64 = if quick { 2_000 } else { 4_000 };
    let reps = 3;
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let seed = 0xE19;

    let mut rows: Vec<Row> = Vec::new();
    let mut table = Table::new(
        "E19",
        "referee union pipeline: sequential vs kernel vs tree (bitwise-identical)",
        &[
            "t",
            "overlap",
            "variant",
            "wall_ms",
            "merges_per_sec",
            "decode_MB_per_sec",
            "speedup_vs_seq",
            "identical",
        ],
    );

    let max_t = *ts.last().unwrap();
    let mut arena: Vec<DistinctSketch> = (0..max_t)
        .map(|_| DistinctSketch::new(&config, seed))
        .collect();
    let mut scratch = DecodeScratch::new();

    for &t in ts {
        for &overlap in overlaps {
            let msgs = party_messages(&config, seed, t, per_party, overlap);
            let bytes: usize = msgs.iter().map(PartyMessage::bytes).sum();

            // Untimed warmup: touch every page and warm the allocator so
            // the first timed variant doesn't pay first-touch costs the
            // later ones skip.
            union_fold(&config, seed, &msgs, true);
            union_tree(&msgs, &mut arena, &mut scratch);

            let mut best: [Option<Row>; 3] = [None, None, None];
            for _ in 0..reps {
                let (seq, seq_dec, seq_mrg) = union_fold(&config, seed, &msgs, true);
                let (ker, ker_dec, ker_mrg) = union_fold(&config, seed, &msgs, false);
                let (tree, tree_dec, tree_mrg) = union_tree(&msgs, &mut arena, &mut scratch);
                // The whole point: every variant is the same union, down
                // to the canonical wire bytes.
                let canon = encode_sketch(&seq);
                assert_eq!(canon, encode_sketch(&ker), "kernel fold diverged at t={t}");
                assert_eq!(canon, encode_sketch(&tree), "tree merge diverged at t={t}");
                let candidates = [
                    ("sequential_reference", seq_dec, seq_mrg),
                    ("kernel_fold", ker_dec, ker_mrg),
                    ("tree", tree_dec, tree_mrg),
                ];
                for (slot, (variant, decode, merge)) in best.iter_mut().zip(candidates) {
                    let row = Row {
                        t,
                        overlap,
                        variant,
                        decode,
                        merge,
                        bytes,
                    };
                    if slot.as_ref().is_none_or(|b| row.wall() < b.wall()) {
                        *slot = Some(row);
                    }
                }
            }
            let seq_wall = best[0].as_ref().unwrap().wall();
            for row in best.into_iter().flatten() {
                table.row(vec![
                    row.t.to_string(),
                    format!("{:.1}", row.overlap),
                    row.variant.to_string(),
                    format!("{:.2}", row.wall().as_secs_f64() * 1e3),
                    format!("{:.3e}", row.merges_per_sec()),
                    format!("{:.1}", row.decode_bytes_per_sec() / 1e6),
                    format!("{:.2}x", seq_wall.as_secs_f64() / row.wall().as_secs_f64()),
                    "yes".to_string(),
                ]);
                rows.push(row);
            }
        }
    }

    // CI gate input: at the largest t, the tree reduction must not lose
    // to the per-entry sequential reference fold on the fold itself (the
    // merge phase — decode is common work, reported separately as
    // bytes/sec per the metric split above). Aggregated across overlaps
    // to damp scheduler noise; on a single-core host the tree degrades
    // gracefully to the kernel fold, which still beats the reference.
    let merge_at_max = |variant: &str| -> f64 {
        rows.iter()
            .filter(|r| r.t == max_t && r.variant == variant)
            .map(|r| r.merge.as_secs_f64())
            .sum()
    };
    let tree_speedup_at_max_t = merge_at_max("sequential_reference") / merge_at_max("tree");

    table.note(format!(
        "{per_party} distinct labels per party, best of {reps} reps; canonical-bytes \
         identity asserted per rep (panics on divergence)"
    ));
    table.note(format!(
        "PASS condition: identical = yes everywhere; tree merge beats the \
         sequential_reference merge at t = {max_t} \
         (measured merge speedup {tree_speedup_at_max_t:.2}x)"
    ));
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(quick, per_party, max_t, tree_speedup_at_max_t, &rows);
    vec![table]
}

/// Hand-rolled JSON mirror of the table. `bitwise_identical` is only ever
/// written as `true`: divergence panics the run instead. `workers` lets
/// the CI gate distinguish a real tree win from the single-core
/// degenerate case where `merge_tree` lawfully falls back to the
/// sequential kernel fold.
fn write_json(quick: bool, per_party: u64, max_t: usize, tree_speedup_at_max_t: f64, rows: &[Row]) {
    let rows_json = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"t\":{},\"overlap\":{},\"variant\":\"{}\",\"wall_ms\":{:.3},\
                 \"decode_ms\":{:.3},\"merge_ms\":{:.3},\"merges_per_sec\":{:.1},\
                 \"decode_bytes_per_sec\":{:.1}}}",
                r.t,
                r.overlap,
                r.variant,
                r.wall().as_secs_f64() * 1e3,
                r.decode.as_secs_f64() * 1e3,
                r.merge.as_secs_f64() * 1e3,
                r.merges_per_sec(),
                r.decode_bytes_per_sec(),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let workers = gt_core::effective_workers();
    let json = format!(
        "{{\"experiment\":\"e19\",\"quick\":{quick},\"per_party\":{per_party},\
         \"max_t\":{max_t},\"workers\":{workers},\
         \"tree_speedup_at_max_t\":{tree_speedup_at_max_t:.3},\
         \"tree_beats_sequential_at_max_t\":{},\
         \"rows\":[{rows_json}],\"bitwise_identical\":true}}\n",
        tree_speedup_at_max_t >= 1.0,
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
