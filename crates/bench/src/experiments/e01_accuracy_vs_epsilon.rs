//! E1 — accuracy vs ε.
//!
//! Claim: the estimate is within `±ε` of the true distinct count with
//! probability ≥ `1 − δ`. We sweep ε at fixed δ, measure the relative
//! error over many master seeds, and report quantiles plus the observed
//! failure rate, which must sit below δ.

use crate::experiments::common::{error_samples, labels};
use crate::table::Table;
use crate::{pct, ErrorSummary};
use gt_core::SketchConfig;

/// Run E1.
pub fn run(quick: bool) -> Vec<Table> {
    let (n, seeds) = if quick {
        (30_000u64, 30u64)
    } else {
        (100_000, 200)
    };
    let delta = 0.05;
    let universe = labels(n, 0xE1);

    let mut t = Table::new(
        "E1",
        "accuracy vs epsilon",
        &[
            "eps",
            "capacity",
            "trials",
            "mean_err",
            "p50_err",
            "p95_err",
            "max_err",
            "P(err>eps)",
            "delta",
        ],
    );
    for eps in [0.02, 0.05, 0.10, 0.20] {
        let config = SketchConfig::new(eps, delta).unwrap();
        let errs = error_samples(&config, &universe, seeds, 0xE100);
        let s = ErrorSummary::of(errs, eps);
        t.row(vec![
            format!("{eps}"),
            config.capacity().to_string(),
            config.trials().to_string(),
            pct(s.mean),
            pct(s.p50),
            pct(s.p95),
            pct(s.max),
            pct(s.frac_over),
            format!("{delta}"),
        ]);
    }
    t.note(format!(
        "n = {n} distinct labels, {seeds} master seeds per row"
    ));
    t.note("PASS condition: P(err>eps) <= delta for every row, and p95 scales ~linearly with eps");
    vec![t]
}
