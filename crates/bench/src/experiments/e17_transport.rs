//! E17 — the collection plane under loss: retry budget vs completeness.
//!
//! Claim: because the referee is idempotent under at-least-once delivery
//! (dedup by `(party, fingerprint)`), a retrying collector can only *add*
//! coverage — duplicates, stragglers, and ack-loss retransmits never
//! corrupt the union or its exactly-once accounting. This experiment
//! sweeps drop probability × retry budget on the deterministic simulated
//! transport and records: fraction of parties heard, the rate of runs
//! achieving the *full* union, distinct-label coverage of the heard
//! subset, retransmit/duplicate volume, and virtual time-to-full-union.
//! CI gates on `results/BENCH_transport.json`: at every lossy drop rate,
//! a nonzero retry budget must beat the paper's one-shot model.

use std::collections::HashSet;

use crate::table::Table;
use gt_core::SketchConfig;
use gt_streams::{
    collect_once, Distribution, PartyMessage, RetryPolicy, StreamOracle, TransportSpec,
    WorkloadSpec,
};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_transport.json";

/// One (drop, budget) cell, averaged over reps.
struct Cell {
    drop: f64,
    budget: usize,
    coverage: f64,          // mean fraction of parties heard
    full_union_rate: f64,   // fraction of reps hearing everyone
    distinct_coverage: f64, // mean |heard labels| / |all labels|
    retransmits: f64,       // mean sends beyond each party's first
    duplicates: f64,        // mean deliveries the referee deduplicated
    mean_ticks: f64,        // mean virtual time-to-full-union (complete reps)
}

/// Run E17.
pub fn run(quick: bool) -> Vec<Table> {
    let drops: &[f64] = if quick {
        &[0.2, 0.4]
    } else {
        &[0.0, 0.1, 0.3, 0.5]
    };
    let budgets: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let reps: u64 = if quick { 4 } else { 16 };

    let parties = 8usize;
    let spec = WorkloadSpec {
        parties,
        distinct_per_party: if quick { 2_000 } else { 5_000 },
        overlap: 0.3,
        items_per_party: if quick { 4_000 } else { 10_000 },
        distribution: Distribution::Uniform,
        seed: 0xE17,
    };
    let streams = spec.generate();
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let oracle = StreamOracle::of_streams(streams.streams.iter().map(|s| s.as_slice()));
    let full_distinct = oracle.distinct() as f64;

    // Parties observe once; the same finished messages feed every cell so
    // only the channel and the retry policy vary.
    let messages: Vec<PartyMessage> = streams
        .streams
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let mut p = gt_streams::Party::new(id, &config, 0xE17);
            p.observe_stream(&s.iter().map(|&l| gt_hash::fold61(l)).collect::<Vec<_>>());
            p.finish()
        })
        .collect();

    let mut table = Table::new(
        "E17",
        "collection plane under loss: retry budget vs union completeness",
        &[
            "drop",
            "budget",
            "parties_heard",
            "full_union_rate",
            "distinct_coverage",
            "retransmits",
            "duplicates",
            "ticks_to_full",
        ],
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &drop in drops {
        for &budget in budgets {
            let mut coverage = 0.0;
            let mut full_runs = 0u64;
            let mut distinct_cov = 0.0;
            let mut retransmits = 0.0;
            let mut duplicates = 0.0;
            let mut ticks = 0.0;
            let mut ticked = 0u64;
            for rep in 0..reps {
                let channel = TransportSpec::lossy(drop, 0xE17_0000 + rep * 131 + budget as u64);
                let policy = RetryPolicy {
                    ack_drop_probability: drop / 2.0,
                    ..RetryPolicy::with_budget(budget)
                };
                let (report, referee) = collect_once(&config, 0xE17, &messages, channel, policy);

                coverage += report.completeness();
                if report.budget_exhausted.is_empty() {
                    full_runs += 1;
                }
                if let Some(t) = report.time_to_full_union {
                    ticks += t as f64;
                    ticked += 1;
                }
                retransmits += report.retransmits as f64;
                duplicates += report.referee.duplicates() as f64;

                let heard: HashSet<u64> = streams
                    .streams
                    .iter()
                    .enumerate()
                    .filter(|(id, _)| referee.has_heard(*id))
                    .flat_map(|(_, s)| s.iter().copied())
                    .collect();
                distinct_cov += heard.len() as f64 / full_distinct;
            }
            let n = reps as f64;
            let cell = Cell {
                drop,
                budget,
                coverage: coverage / n,
                full_union_rate: full_runs as f64 / n,
                distinct_coverage: distinct_cov / n,
                retransmits: retransmits / n,
                duplicates: duplicates / n,
                mean_ticks: if ticked > 0 {
                    ticks / ticked as f64
                } else {
                    f64::NAN
                },
            };
            table.row(vec![
                format!("{drop:.2}"),
                budget.to_string(),
                format!("{:.3}", cell.coverage),
                format!("{:.2}", cell.full_union_rate),
                format!("{:.3}", cell.distinct_coverage),
                format!("{:.1}", cell.retransmits),
                format!("{:.1}", cell.duplicates),
                if cell.mean_ticks.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.0}", cell.mean_ticks)
                },
            ]);
            cells.push(cell);
        }
    }

    // The gate: at every lossy drop rate, the largest budget must hear
    // strictly more parties on average than the one-shot model.
    let max_budget = *budgets.iter().max().unwrap();
    let retries_improve = drops.iter().filter(|d| **d > 0.0).all(|&d| {
        let at = |b: usize| {
            cells
                .iter()
                .find(|c| c.drop == d && c.budget == b)
                .map_or(0.0, |c| c.coverage)
        };
        at(max_budget) > at(budgets[0]) || at(budgets[0]) >= 1.0
    });

    table.note(format!(
        "{parties} parties, {reps} reps per cell; drop is per-send, acks dropped at drop/2; \
         lossy channel adds jitter and 10% stragglers (late arrivals the referee dedups)"
    ));
    table.note(
        "PASS condition: parties_heard rises with budget at every lossy drop rate; \
         duplicates are absorbed without affecting the union (proved by property tests)",
    );
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(&cells, parties, reps, retries_improve, quick);
    vec![table]
}

/// Hand-rolled JSON mirror of the table for the CI bench-smoke gate.
fn write_json(cells: &[Cell], parties: usize, reps: u64, retries_improve: bool, quick: bool) {
    let rows_json = cells
        .iter()
        .map(|c| {
            format!(
                "{{\"drop\":{:.2},\"budget\":{},\"coverage\":{:.4},\
                 \"full_union_rate\":{:.4},\"distinct_coverage\":{:.4},\
                 \"retransmits\":{:.2},\"duplicates\":{:.2}}}",
                c.drop,
                c.budget,
                c.coverage,
                c.full_union_rate,
                c.distinct_coverage,
                c.retransmits,
                c.duplicates
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"experiment\":\"e17\",\"quick\":{quick},\"parties\":{parties},\"reps\":{reps},\
         \"rows\":[{rows_json}],\"retries_improve\":{retries_improve}}}\n"
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
