//! E23 — end-to-end scenario suite: sustained load through the whole
//! stack (writers → codec → transport → collector → referee → live
//! queries) on the virtual clock.
//!
//! Claim: the system serves live union queries under sustained ingest
//! with bounded admission→queryable latency, and degrades honestly —
//! coverage stays 1.0 on a clean channel, tracks the retry budget on a
//! lossy one, and churned-out parties' last acked summaries still count
//! exactly once. Every number here is virtual-clock-derived and bitwise
//! reproducible from the spec + seeds (`tests/scenario_determinism.rs`);
//! wall-clock throughput is reported for context only.
//!
//! Runs the six named scenarios of
//! [`gt_streams::scenario::named_suite`] — steady-state, flash crowd,
//! churn/failover, multi-tenant Zipf, lossy fan-in, windowed recency —
//! and writes the machine-readable summary the CI bench-smoke gate
//! checks to `results/BENCH_e2e.json`: per-scenario throughput,
//! p50/p99/p999 latency in ticks, coverage against each scenario's
//! floor, and transport/referee telemetry.

use crate::table::Table;
use gt_core::{effective_workers, SketchConfig};
use gt_streams::scenario::{named_suite, run_sustained, E2eReport};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_e2e.json";

/// Master seed shared by every scenario run (workload seeds differ per
/// scenario inside the specs).
const MASTER_SEED: u64 = 0xE23;

/// The item-coverage floor the CI gate demands per scenario. Clean
/// channels must ack everything; `churn_failover` loses exactly the
/// crashed party's unflushed tail; `lossy_fan_in` has a 5% drop channel
/// with corruption, jitter and stragglers against a retry budget of 8 —
/// the floor leaves headroom for in-flight tail loss while still
/// proving the retry plane recovers the union.
pub fn coverage_floor(name: &str) -> f64 {
    match name {
        "steady_state" | "flash_crowd" | "multi_tenant_zipf" | "windowed_recency" => 1.0,
        "churn_failover" => 0.95,
        "lossy_fan_in" => 0.90,
        _ => 0.0,
    }
}

/// Run E23.
pub fn run(quick: bool) -> Vec<Table> {
    let config = SketchConfig::new(0.1, 0.05).expect("static config");
    let workers = effective_workers();

    let reports: Vec<E2eReport> = named_suite(quick)
        .iter()
        .map(|spec| run_sustained(&config, MASTER_SEED, spec))
        .collect();

    let mut table = Table::new(
        "E23",
        "end-to-end scenario suite under sustained load (virtual clock)",
        &[
            "scenario",
            "parties",
            "ticks",
            "items",
            "items/s (wall)",
            "p50/p99/p999 (ticks)",
            "coverage (floor)",
            "rel err",
        ],
    );
    for r in &reports {
        let floor = coverage_floor(&r.name);
        table.row(vec![
            r.name.clone(),
            r.parties.to_string(),
            r.duration.to_string(),
            r.total_items.to_string(),
            format!("{:.3e}", finite(r.items_per_sec())),
            format!(
                "{} / {} / {}",
                r.latency.p50(),
                r.latency.p99(),
                r.latency.p999()
            ),
            format!("{:.4} (>= {floor:.2})", r.item_coverage),
            format!("{:.4}", r.relative_error),
        ]);
    }
    table.note(
        "latency = admission tick -> delivery tick of the first accepted summary covering the \
         item, in virtual ticks; no wall clock enters any gated number",
    );
    table.note(format!(
        "scenarios: steady_state (clean baseline), flash_crowd (8x rate spike), churn_failover \
         (leave/crash/join), multi_tenant_zipf (16 tenants, theta=1.1), lossy_fan_in (32 parties, \
         5% drop, retry budget 8), windowed_recency (sliding-window queries); workers = {workers}"
    ));
    table.note(
        "PASS condition: every scenario present in the JSON with populated p50/p99/p999 and \
         items_per_sec; steady_state item_coverage == 1.0; every scenario's item_coverage >= its \
         floor",
    );
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(&reports, quick, workers);
    vec![table]
}

/// Clamp non-finite wall-clock rates (a sub-resolution timer reads 0)
/// so the JSON stays parseable.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        1e12
    }
}

/// Hand-rolled JSON mirror of the table for the CI gate: one object per
/// scenario with throughput, latency quantiles, coverage vs floor, and
/// channel/referee counts.
fn write_json(reports: &[E2eReport], quick: bool, workers: usize) {
    let scenarios: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"parties\":{},\"duration_ticks\":{},",
                    "\"total_items\":{},\"items_acked\":{},\"reports_sent\":{},",
                    "\"retry_rounds\":{},\"items_per_sec\":{:.1},",
                    "\"offered_items_per_tick\":{:.3},",
                    "\"latency_p50_ticks\":{},\"latency_p99_ticks\":{},",
                    "\"latency_p999_ticks\":{},\"latency_mean_ticks\":{:.3},",
                    "\"latency_max_ticks\":{},",
                    "\"item_coverage\":{:.6},\"party_coverage\":{:.6},",
                    "\"coverage_floor\":{:.2},",
                    "\"final_estimate\":{:.3},\"truth\":{},\"relative_error\":{:.6},",
                    "\"transport_sends\":{},\"transport_dropped\":{},",
                    "\"transport_corrupted\":{},\"transport_delivered\":{},",
                    "\"referee_accepted\":{},\"referee_duplicates\":{},",
                    "\"referee_rejected\":{}}}"
                ),
                r.name,
                r.parties,
                r.duration,
                r.total_items,
                r.items_acked,
                r.reports_sent,
                r.retry_rounds,
                finite(r.items_per_sec()),
                r.offered_rate_per_tick(),
                r.latency.p50(),
                r.latency.p99(),
                r.latency.p999(),
                r.latency.mean(),
                r.latency.max(),
                r.item_coverage,
                r.party_coverage,
                coverage_floor(&r.name),
                r.final_estimate,
                r.truth,
                r.relative_error,
                r.transport.sends,
                r.transport.dropped,
                r.transport.corrupted,
                r.transport.delivered,
                r.referee.accepted,
                r.referee.duplicates(),
                r.referee.rejected(),
            )
        })
        .collect();
    let json = format!(
        "{{\"experiment\":\"e23\",\"quick\":{},\"workers\":{},\"scenarios\":[{}]}}\n",
        quick,
        workers,
        scenarios.join(",")
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
