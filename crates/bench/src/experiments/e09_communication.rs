//! E9 — communication cost.
//!
//! Claims: each party transmits exactly one message of
//! `O(ε⁻² log(1/δ) log n)` bits; total communication is `t` messages,
//! independent of every stream's length; and the hand-rolled codec's
//! per-entry cost is a small constant number of bytes.

use crate::bytes_h;
use crate::table::Table;
use gt_core::SketchConfig;
use gt_streams::{run_scenario, Distribution, WorkloadSpec};

/// Run E9.
pub fn run(quick: bool) -> Vec<Table> {
    let distinct = if quick { 10_000 } else { 40_000 };

    let mut a = Table::new(
        "E9a",
        "bytes per party vs epsilon and parties",
        &[
            "eps",
            "parties",
            "bytes_per_party",
            "bytes_per_entry",
            "total_bytes",
        ],
    );
    for eps in [0.05, 0.1, 0.2] {
        let config = SketchConfig::new(eps, 0.05).unwrap();
        for parties in [2usize, 8, 16] {
            let spec = WorkloadSpec {
                parties,
                distinct_per_party: distinct,
                overlap: 0.25,
                items_per_party: distinct * 3,
                distribution: Distribution::Uniform,
                seed: 0xE9,
            };
            let report = run_scenario(&config, 0xE901, &spec.generate());
            let per_party = report.total_bytes / parties;
            let entries = config.max_sample_entries();
            a.row(vec![
                format!("{eps}"),
                parties.to_string(),
                bytes_h(per_party),
                format!("{:.2} B", per_party as f64 / entries as f64),
                bytes_h(report.total_bytes),
            ]);
        }
    }
    a.note("bytes_per_entry: message bytes / (trials x capacity) — the delta-varint cost per sample slot");
    a.note("PASS condition: bytes_per_party ~ eps^-2 (x4 per eps halving), independent of parties");

    let mut b = Table::new(
        "E9b",
        "total communication vs stream length (eps = 0.1)",
        &[
            "items_per_party",
            "total_items",
            "total_bytes",
            "bytes_per_item",
        ],
    );
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    for mult in [1u64, 10, 100] {
        let spec = WorkloadSpec {
            parties: 4,
            distinct_per_party: distinct / 4,
            overlap: 0.25,
            items_per_party: (distinct / 4) * mult,
            distribution: Distribution::Uniform,
            seed: 0xE9 + mult,
        };
        let report = run_scenario(&config, 0xE902, &spec.generate());
        b.row(vec![
            spec.items_per_party.to_string(),
            report.total_items.to_string(),
            bytes_h(report.total_bytes),
            format!(
                "{:.4}",
                report.total_bytes as f64 / report.total_items as f64
            ),
        ]);
    }
    b.note("PASS condition: total_bytes flat while items grow 100x (bytes_per_item -> 0)");

    // Tree aggregation: per-tier traffic through intermediate collectors.
    let mut c = Table::new(
        "E9c",
        "hierarchical aggregation traffic (32 parties, fanout 4)",
        &["tier", "messages", "tier_bytes", "bytes_per_message"],
    );
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let spec = WorkloadSpec {
        parties: 32,
        distinct_per_party: distinct / 4,
        overlap: 0.25,
        items_per_party: distinct / 2,
        distribution: Distribution::Uniform,
        seed: 0xE9C,
    };
    let set = spec.generate();
    let messages: Vec<gt_streams::PartyMessage> = set
        .streams
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let mut p = gt_streams::Party::new(id, &config, 0xE903);
            p.observe_stream(s);
            p.finish()
        })
        .collect();
    let report = gt_streams::aggregate_tree(&config, 0xE903, messages, 4).unwrap();
    for (tier, (&msgs, &bytes)) in report
        .messages_per_tier
        .iter()
        .zip(report.bytes_per_tier.iter())
        .enumerate()
    {
        c.row(vec![
            tier.to_string(),
            msgs.to_string(),
            bytes_h(bytes),
            bytes_h(bytes / msgs),
        ]);
    }
    c.note(format!(
        "root estimate {:.0}; flat-referee answer is identical by construction (tested in gt-streams::topology)",
        report.estimate.value
    ));
    c.note(
        "PASS condition: bytes_per_message ~constant at every tier (merged sketches do not grow)",
    );

    vec![a, b, c]
}
