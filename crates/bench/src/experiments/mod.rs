//! One module per experiment in EXPERIMENTS.md, plus a registry so the
//! binary can dispatch by id.

pub mod common;
pub mod e01_accuracy_vs_epsilon;
pub mod e02_median_boosting;
pub mod e03_space;
pub mod e04_ingest_throughput;
pub mod e05_union_overlap;
pub mod e06_frontier;
pub mod e07_sumdistinct;
pub mod e08_skew;
pub mod e09_communication;
pub mod e11_ablation;
pub mod e12_similarity;
pub mod e13_predicate;
pub mod e14_parallel_scaling;
pub mod e15_heterogeneous;
pub mod e16_window;
pub mod e17_transport;
pub mod e18_concurrent;
pub mod e19_union;
pub mod e20_hash_kernel;
pub mod e21_keyed_store;
pub mod e22_expression;
pub mod e23_e2e;
pub mod e24_delta;

use crate::table::Table;

/// An experiment the binary can run.
pub struct Experiment {
    /// Short id, e.g. "e1".
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Produce the tables. `quick` shrinks sweeps/seeds for CI-speed runs.
    pub run: fn(quick: bool) -> Vec<Table>,
}

/// All runnable experiments. E4 and E14 are time-domain but still run
/// here (they emit `results/BENCH_*.json` for the CI bench-smoke gate,
/// with Criterion counterparts in `benches/` for fine-grained numbers);
/// only E10 remains Criterion-only. See EXPERIMENTS.md.
pub const REGISTRY: &[Experiment] = &[
    Experiment {
        id: "e1",
        description:
            "accuracy vs epsilon: observed error quantiles against the (eps, delta) contract",
        run: e01_accuracy_vs_epsilon::run,
    },
    Experiment {
        id: "e2",
        description: "median boosting: failure probability decay with trial count",
        run: e02_median_boosting::run,
    },
    Experiment {
        id: "e3",
        description: "space usage vs the O(eps^-2 log(1/delta) log n) bound and vs exact sets",
        run: e03_space::run,
    },
    Experiment {
        id: "e4",
        description:
            "ingest throughput: per-item vs batched vs kernel across hash families (BENCH_ingest.json)",
        run: e04_ingest_throughput::run,
    },
    Experiment {
        id: "e5",
        description:
            "HEADLINE: union estimation vs parties and overlap; naive baselines for contrast",
        run: e05_union_overlap::run,
    },
    Experiment {
        id: "e6",
        description:
            "equal-space accuracy frontier vs PCSA, LogLog, linear counting, KMV, reservoir",
        run: e06_frontier::run,
    },
    Experiment {
        id: "e7",
        description: "SumDistinct: duplicate insensitivity vs a plain sum under duplication sweeps",
        run: e07_sumdistinct::run,
    },
    Experiment {
        id: "e8",
        description: "distribution robustness: error vs zipf skew",
        run: e08_skew::run,
    },
    Experiment {
        id: "e9",
        description: "communication: bytes per party vs t, eps, and stream length",
        run: e09_communication::run,
    },
    Experiment {
        id: "e11",
        description: "ablations: hash family soundness and the capacity constant",
        run: e11_ablation::run,
    },
    Experiment {
        id: "e12",
        description: "similarity: intersection and Jaccard accuracy vs overlap",
        run: e12_similarity::run,
    },
    Experiment {
        id: "e13",
        description: "predicate-restricted counts: additive error across selectivities",
        run: e13_predicate::run,
    },
    Experiment {
        id: "e14",
        description:
            "parallel scaling: thread sweep with bitwise-identity assertion (BENCH_parallel.json)",
        run: e14_parallel_scaling::run,
    },
    Experiment {
        id: "e15",
        description: "EXTENSION: heterogeneous-fleet unions via shrink/harmonize",
        run: e15_heterogeneous::run,
    },
    Experiment {
        id: "e16",
        description: "EXTENSION: sliding-window vs landmark recency queries",
        run: e16_window::run,
    },
    Experiment {
        id: "e17",
        description:
            "collection plane under loss: retry budget vs union completeness (BENCH_transport.json)",
        run: e17_transport::run,
    },
    Experiment {
        id: "e18",
        description:
            "concurrent serving: multi-writer scaling + live snapshot validity (BENCH_concurrent.json)",
        run: e18_concurrent::run,
    },
    Experiment {
        id: "e19",
        description:
            "referee union pipeline: sequential vs kernel vs tree-reduction merge (BENCH_union.json)",
        run: e19_union::run,
    },
    Experiment {
        id: "e20",
        description:
            "hash kernels: lane vs scalar bulk hashing + survival screen (BENCH_hash.json)",
        run: e20_hash_kernel::run,
    },
    Experiment {
        id: "e21",
        description:
            "keyed multi-tenant store: Zipf keys under a byte budget, evict/restore (BENCH_store.json)",
        run: e21_keyed_store::run,
    },
    Experiment {
        id: "e22",
        description:
            "set-expression queries at the referee: error vs depth and overlap (BENCH_expr.json)",
        run: e22_expression::run,
    },
    Experiment {
        id: "e23",
        description:
            "end-to-end scenario suite: sustained load, latency, coverage under faults (BENCH_e2e.json)",
        run: e23_e2e::run,
    },
    Experiment {
        id: "e24",
        description:
            "delta plane: steady-state bytes vs staleness against full re-ship (BENCH_delta.json)",
        run: e24_delta::run,
    },
];

/// Find an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static Experiment> {
    let id = id.to_lowercase();
    REGISTRY.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup() {
        assert!(find("e1").is_some());
        assert!(find("E5").is_some());
        assert!(find("e99").is_none());
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = REGISTRY.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len());
    }
}
