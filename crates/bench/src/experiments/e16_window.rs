//! E16 (extension) — sliding-window distinct counting vs the landmark
//! recency sketch.
//!
//! Claim (from `gt_core::window`): the level-ladder sliding-window sketch
//! answers "distinct since t₀" with relative error ~ε for ANY window,
//! because each level retains the most *recent* c labels at its sampling
//! rate. The landmark `RecencySketch` answers the same query with only
//! additive ε·F₀(total) error — fine for wide windows, useless for
//! narrow ones once history accumulates. This experiment measures the
//! crossover.

use crate::pct;
use crate::table::Table;
use gt_core::{RecencySketch, SketchConfig, SlidingWindowSketch};
use gt_hash::HashFamilyKind;

/// Run E16.
pub fn run(quick: bool) -> Vec<Table> {
    // The window sketch pays an O(capacity) eviction scan per fresh
    // label at low levels, so sweeps are kept modest even in full mode.
    let n: u64 = if quick { 30_000 } else { 50_000 };
    let seeds: u64 = if quick { 5 } else { 10 };
    // Same budget class for both sketches.
    let config = SketchConfig::from_shape(0.1, 0.1, 300, 9, HashFamilyKind::Pairwise).unwrap();

    let mut t = Table::new(
        "E16",
        "sliding-window vs landmark recency queries",
        &["window", "truth", "window_p95_err", "landmark_p95_err"],
    );

    let windows: Vec<u64> = vec![100, 1_000, 10_000, n];
    for &w in &windows {
        let mut win_errs = Vec::new();
        let mut rec_errs = Vec::new();
        for seed in 0..seeds {
            let mut win = SlidingWindowSketch::new(&config, 0xE1600 + seed);
            let mut rec = RecencySketch::new(&config, 0xE1600 + seed);
            // One fresh label per tick: window of size w holds w distinct.
            for ts in 0..n {
                let label = gt_hash::fold61(ts ^ (seed << 40));
                win.insert(label, ts);
                rec.insert(label, ts);
            }
            let t0 = n - w;
            let truth = w as f64;
            win_errs.push(gt_core::relative_error(
                win.estimate_distinct_since(t0).value,
                truth,
            ));
            rec_errs.push(gt_core::relative_error(
                rec.estimate_distinct_since(t0).value,
                truth,
            ));
        }
        t.row(vec![
            format!("last {w}"),
            w.to_string(),
            pct(gt_core::quantile_f64(&mut win_errs, 0.95)),
            pct(gt_core::quantile_f64(&mut rec_errs, 0.95)),
        ]);
    }
    t.note(format!(
        "stream: {n} distinct labels at 1/tick; both sketches at capacity 300 x 9 trials; {seeds} seeds"
    ));
    t.note("PASS condition: window_p95_err flat (~eps) at every width; landmark error explodes for narrow windows (additive eps x F0_total)");
    t.note("the price: the window sketch stores up to 40 levels x capacity per trial (the log N factor of the 2002 follow-up)");
    vec![t]
}
