//! E2 — median boosting.
//!
//! Claim: the failure probability of the median-of-r-trials estimator
//! decays exponentially in `r` (hence `r = Θ(log 1/δ)` trials suffice).
//! We fix ε and the per-trial capacity, sweep the trial count, and measure
//! `P(err > ε)` across master seeds; the observed failure rate should fall
//! monotonically (and roughly geometrically) with `r`.

use crate::experiments::common::{error_samples, labels};
use crate::pct;
use crate::table::Table;
use gt_core::SketchConfig;
use gt_hash::HashFamilyKind;

/// Run E2.
pub fn run(quick: bool) -> Vec<Table> {
    let (n, seeds) = if quick {
        (30_000u64, 60u64)
    } else {
        (100_000, 300)
    };
    let eps: f64 = 0.1;
    // Deliberately tight capacity (k = 3) so single trials fail visibly
    // and the boosting effect is measurable within the seed budget.
    let capacity = (3.0 / (eps * eps)).ceil() as usize;
    let universe = labels(n, 0xE2);

    let mut t = Table::new(
        "E2",
        "median boosting",
        &["trials", "mean_err", "p95_err", "P(err>eps)"],
    );
    for trials in [1usize, 3, 5, 9, 15, 25] {
        let config =
            SketchConfig::from_shape(eps, 0.05, capacity, trials, HashFamilyKind::Pairwise)
                .unwrap();
        let errs = error_samples(&config, &universe, seeds, 0xE200);
        let s = crate::ErrorSummary::of(errs, eps);
        t.row(vec![
            trials.to_string(),
            pct(s.mean),
            pct(s.p95),
            pct(s.frac_over),
        ]);
    }
    t.note(format!(
        "eps = {eps}, per-trial capacity {capacity} (k = 3, deliberately tight), n = {n}, {seeds} seeds"
    ));
    t.note("PASS condition: P(err>eps) decreases (roughly geometrically) as trials grow");
    vec![t]
}
