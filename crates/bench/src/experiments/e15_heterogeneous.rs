//! E15 (extension) — heterogeneous parties: shrink/harmonize, then union.
//!
//! Deployments mix budgets: edge boxes with small sketches, collectors
//! with large ones. Claim (from `gt_core::compact`): shrinking to the
//! weakest shape is *exact* (identical to having run that shape), so a
//! mixed fleet unions correctly and accuracy is governed by the weakest
//! member — never worse.

use crate::pct;
use crate::table::Table;
use gt_core::{harmonize, merge_all, DistinctSketch, SketchConfig};
use gt_hash::HashFamilyKind;

/// Run E15.
pub fn run(quick: bool) -> Vec<Table> {
    let (distinct, seeds) = if quick {
        (20_000u64, 8u64)
    } else {
        (60_000, 25)
    };

    let shapes: &[(&str, usize, usize)] = &[
        ("edge (c=256, r=5)", 256, 5),
        ("mid (c=1200, r=9)", 1200, 9),
        ("dc (c=4800, r=19)", 4800, 19),
    ];

    let mut t = Table::new(
        "E15",
        "heterogeneous-fleet unions via harmonize",
        &[
            "fleet",
            "weakest_capacity",
            "p50_err",
            "p95_err",
            "native_weakest_p95",
        ],
    );

    // Every pair + the full trio.
    let fleets: &[&[usize]] = &[&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2]];
    let universe: Vec<u64> = crate::experiments::common::labels(distinct, 0xE15);
    for &fleet in fleets {
        let weakest = fleet.iter().map(|&i| shapes[i].1).min().unwrap();
        let mut errs = Vec::new();
        let mut native_errs = Vec::new();
        for seed in 0..seeds {
            // Party i observes its own slice of the universe + overlap.
            let chunk = distinct as usize / fleet.len();
            let mut parts: Vec<DistinctSketch> = Vec::new();
            let mut native_parts: Vec<DistinctSketch> = Vec::new();
            let weakest_cfg = SketchConfig::from_shape(
                0.2,
                0.2,
                weakest,
                fleet.iter().map(|&i| shapes[i].2).min().unwrap(),
                HashFamilyKind::Pairwise,
            )
            .unwrap();
            for (slot, &i) in fleet.iter().enumerate() {
                let (_, cap, trials) = shapes[i];
                let cfg = SketchConfig::from_shape(0.2, 0.2, cap, trials, HashFamilyKind::Pairwise)
                    .unwrap();
                let lo = slot * chunk / 2; // 50% overlap between neighbours
                let hi = (lo + chunk).min(universe.len());
                let mut s = DistinctSketch::new(&cfg, 0xE1500 + seed);
                s.extend_labels(universe[lo..hi].iter().copied());
                parts.push(s);
                let mut n = DistinctSketch::new(&weakest_cfg, 0xE1500 + seed);
                n.extend_labels(universe[lo..hi].iter().copied());
                native_parts.push(n);
            }
            // Harmonize pairwise down to the common shape, then union.
            let mut acc = parts[0].clone();
            for p in &parts[1..] {
                let (a, b) = harmonize(&acc, p).unwrap();
                acc = a.merged(&b).unwrap();
            }
            // Ground truth via an exact pass.
            let mut truth_set = std::collections::HashSet::new();
            for (slot, _) in fleet.iter().enumerate() {
                let lo = slot * chunk / 2;
                let hi = (lo + chunk).min(universe.len());
                truth_set.extend(universe[lo..hi].iter().copied());
            }
            let truth = truth_set.len() as f64;
            errs.push(gt_core::relative_error(
                acc.estimate_distinct().value,
                truth,
            ));
            let native = merge_all(&native_parts).unwrap();
            native_errs.push(gt_core::relative_error(
                native.estimate_distinct().value,
                truth,
            ));
        }
        let p50 = gt_core::quantile_f64(&mut errs.clone(), 0.5);
        let p95 = gt_core::quantile_f64(&mut errs, 0.95);
        let native_p95 = gt_core::quantile_f64(&mut native_errs, 0.95);
        let fleet_name: Vec<&str> = fleet.iter().map(|&i| shapes[i].0).collect();
        t.row(vec![
            fleet_name.join(" + "),
            weakest.to_string(),
            pct(p50),
            pct(p95),
            pct(native_p95),
        ]);
    }
    t.note(format!(
        "{distinct} distinct labels split with 50% neighbour overlap, {seeds} seeds"
    ));
    t.note("PASS condition: harmonized p95 ~ native_weakest_p95 (shrinking costs nothing beyond running the weakest shape natively)");
    vec![t]
}
