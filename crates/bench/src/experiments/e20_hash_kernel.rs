//! E20 — hash-kernel microbench: lane (SIMD-shaped) bulk hashing vs the
//! scalar per-element loop, plus the lane-wide survival screen.
//!
//! Claim: the batch ingest path's hashing cost is dominated by
//! [`gt_hash::HashFamily::hash_slice_into`], and the lane kernels behind
//! it (`gt_hash::lanes`, `LANES`-wide blocks with a branch-free 61-bit
//! reduction) beat the per-element scalar loop without changing a single
//! output bit. Every rep re-asserts bitwise identity of the two paths —
//! the coordination contract — before its timing counts. The survival
//! screen ([`gt_hash::survival_screen`]) is measured the same way against
//! the per-item branch loop it replaced in the `gt-core` kernels.
//!
//! Writes the machine-readable summary CI gates on to
//! `results/BENCH_hash.json`, including the compiled lane width (4
//! portable, 8 under AVX2) so a regression can be told apart from a
//! narrower build.

use std::time::{Duration, Instant};

use crate::experiments::common::labels;
use crate::table::Table;
use gt_hash::{survival_mask, survival_screen, FamilySeed, HashFamilyKind, LANES};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_hash.json";

struct Measurement {
    family: &'static str,
    lane_ns_per_item: f64,
    scalar_ns_per_item: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.scalar_ns_per_item / self.lane_ns_per_item
    }
}

/// Best-of-`reps` wall time of `f`, with a data-dependent sink asserted
/// non-trivial so the hashing cannot be elided.
fn best_of(reps: usize, mut f: impl FnMut() -> u64) -> Duration {
    let mut best = Duration::MAX;
    for rep in 0..reps {
        let start = Instant::now();
        let sink = f();
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        assert!(sink != 0, "rep {rep} produced a trivial sink");
    }
    best
}

/// Run E20.
pub fn run(quick: bool) -> Vec<Table> {
    let n: usize = if quick { 1 << 19 } else { 1 << 21 };
    let reps = if quick { 5 } else { 7 };
    let kinds: &[(&'static str, HashFamilyKind)] = &[
        ("pairwise", HashFamilyKind::Pairwise),
        ("kwise5", HashFamilyKind::KWise(5)),
        ("multiply_shift", HashFamilyKind::MultiplyShift),
        ("tabulation", HashFamilyKind::Tabulation),
    ];
    let data = labels(n as u64, 0xE20);
    let mut out_lane = vec![0u64; n];
    let mut out_scalar = vec![0u64; n];

    let mut measurements: Vec<Measurement> = Vec::new();
    for &(family, kind) in kinds {
        let h = kind.build(FamilySeed(0xE20));
        // Identity first: the lane path must reproduce the scalar path
        // bit for bit before its speed means anything.
        h.hash_slice_into(&data, &mut out_lane);
        h.hash_slice_into_scalar(&data, &mut out_scalar);
        assert_eq!(out_lane, out_scalar, "{family}: lane kernel diverged");

        let lane = best_of(reps, || {
            h.hash_slice_into(&data, &mut out_lane);
            out_lane.iter().fold(0u64, |a, &x| a | x)
        });
        let scalar = best_of(reps, || {
            h.hash_slice_into_scalar(&data, &mut out_scalar);
            out_scalar.iter().fold(0u64, |a, &x| a | x)
        });
        measurements.push(Measurement {
            family,
            lane_ns_per_item: lane.as_secs_f64() * 1e9 / n as f64,
            scalar_ns_per_item: scalar.as_secs_f64() * 1e9 / n as f64,
        });
    }

    // The survival screen vs the branchy per-item compare it replaced,
    // on the task the kernels actually perform: *finding* the survivors
    // (not merely counting them — a pure count if-converts into branch-free
    // vector code and is not a usable alternative). Level 3 puts ~1/8 of
    // items on the survivor path: mostly-rejected, but dense enough that
    // the per-item branch is not predictor-trivial. Both paths write the
    // same survivor indices into the same buffer; identity is asserted.
    let mask = survival_mask(3);
    let mut idx_screen: Vec<u32> = Vec::with_capacity(n);
    let mut idx_branchy: Vec<u32> = Vec::with_capacity(n);
    let screen = best_of(reps, || {
        idx_screen.clear();
        for (w, window) in out_lane.chunks(64).enumerate() {
            let mut bits = survival_screen(window, mask);
            while bits != 0 {
                idx_screen.push((w * 64) as u32 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        idx_screen.len() as u64
    });
    let branchy = best_of(reps, || {
        idx_branchy.clear();
        for (i, &h) in out_lane.iter().enumerate() {
            if h & mask == 0 {
                idx_branchy.push(i as u32);
            }
        }
        idx_branchy.len() as u64
    });
    assert_eq!(idx_screen, idx_branchy, "screen found different survivors");
    let screen_speedup = branchy.as_secs_f64() / screen.as_secs_f64();

    let min_speedup = measurements
        .iter()
        .map(Measurement::speedup)
        .fold(f64::INFINITY, f64::min);
    // The headline claim is the polynomial family: lanes break the
    // per-item serial Horner chain, a win no out-of-order window can
    // manufacture from the scalar loop. Affine/multiply-shift iterations
    // are already independent, so those ride at parity on non-AVX2 builds.
    let poly_speedup = measurements
        .iter()
        .find(|m| m.family == "kwise5")
        .expect("kwise5 measured")
        .speedup();
    let mut table = Table::new(
        "E20",
        "bulk hash kernels: lane vs scalar (bitwise-identical by assertion)",
        &[
            "family",
            "lane_ns_per_item",
            "scalar_ns_per_item",
            "speedup",
        ],
    );
    for m in &measurements {
        table.row(vec![
            m.family.to_string(),
            format!("{:.2}", m.lane_ns_per_item),
            format!("{:.2}", m.scalar_ns_per_item),
            format!("{:.2}x", m.speedup()),
        ]);
    }
    table.note(format!(
        "n = {n} labels, best of {reps} reps; lane width LANES = {LANES} \
         (8 needs an AVX2 build, e.g. RUSTFLAGS=\"-C target-cpu=native\")"
    ));
    table.note(format!(
        "survival screen vs per-item branch loop at 1/8 survival: {screen_speedup:.2}x"
    ));
    table.note(format!(
        "poly (kwise5) lane speedup: {poly_speedup:.2}x — the serial-Horner-chain \
         break; min across families: {min_speedup:.2}x (CI gates on the JSON)"
    ));
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(
        n,
        &measurements,
        screen_speedup,
        poly_speedup,
        min_speedup,
        quick,
    );
    vec![table]
}

/// Hand-rolled JSON mirror of the table plus the scalars CI gates on.
fn write_json(
    n: usize,
    measurements: &[Measurement],
    screen_speedup: f64,
    poly_speedup: f64,
    min_speedup: f64,
    quick: bool,
) {
    let rows = measurements
        .iter()
        .map(|m| {
            format!(
                "{{\"family\":\"{}\",\"lane_ns_per_item\":{:.3},\
                 \"scalar_ns_per_item\":{:.3},\"speedup\":{:.3}}}",
                m.family,
                m.lane_ns_per_item,
                m.scalar_ns_per_item,
                m.speedup()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"experiment\":\"e20\",\"quick\":{quick},\"n\":{n},\"lane_width\":{LANES},\
         \"rows\":[{rows}],\"screen_speedup\":{screen_speedup:.3},\
         \"poly_speedup\":{poly_speedup:.3},\
         \"min_lane_speedup\":{min_speedup:.4},\"bitwise_identical\":true}}\n"
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
