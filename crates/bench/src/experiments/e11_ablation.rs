//! E11 — ablations: why the paper's assumptions matter.
//!
//! (a) **Hash family.** The analysis requires pairwise independence. We run
//! the identical estimator over sound families (pairwise, 4-wise,
//! tabulation, multiply–shift) and deliberately broken ones, on both a
//! mixed and an adversarially sequential universe, and report error
//! quantiles plus the calibration metric from `gt_hash::quality`.
//! Expected: sound families indistinguishable (extra independence buys
//! nothing, as the paper's analysis predicts); `shift(3)` biased ~8×;
//! `low-entropy` high variance; `identity` fine on random labels but
//! wrecked by structure.
//!
//! (b) **Capacity constant.** `c = k/ε²` for `k ∈ {1, 3, 12, 36}`:
//! error shrinks like `1/√k`, motivating the default `k = 12`.

use crate::pct;
use crate::table::Table;
use crate::ErrorSummary;
use gt_core::{DistinctSketch, SketchConfig};
use gt_hash::quality;
use gt_hash::{FamilySeed, HashFamilyKind};

fn errors(config: &SketchConfig, labels: &[u64], seeds: u64, base: u64) -> ErrorSummary {
    let truth = labels
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len() as f64;
    let errs: Vec<f64> = (0..seeds)
        .map(|s| {
            let mut sk = DistinctSketch::new(config, base + s);
            sk.extend_labels(labels.iter().copied());
            gt_core::relative_error(sk.estimate_distinct().value, truth)
        })
        .collect();
    ErrorSummary::of(errs, f64::INFINITY)
}

/// Run E11.
pub fn run(quick: bool) -> Vec<Table> {
    let (n, seeds) = if quick {
        (20_000u64, 10u64)
    } else {
        (60_000, 30)
    };
    let mixed: Vec<u64> = crate::experiments::common::labels(n, 0xE11);
    let sequential: Vec<u64> = (1..=n).collect(); // raw structured ids
    let odd_only: Vec<u64> = (0..n).map(|i| 2 * i + 1).collect(); // adversarial for identity

    let mut fam = Table::new(
        "E11a",
        "hash family ablation",
        &["family", "universe", "p50_err", "p95_err", "level_miscal"],
    );
    let families = [
        ("pairwise (paper)", HashFamilyKind::Pairwise),
        ("4-wise", HashFamilyKind::KWise(4)),
        ("tabulation", HashFamilyKind::Tabulation),
        ("multiply-shift", HashFamilyKind::MultiplyShift),
        ("BAD shift(3)", HashFamilyKind::SabotagedShift(3)),
        ("BAD low-entropy", HashFamilyKind::SabotagedLowEntropy),
        ("BAD identity", HashFamilyKind::SabotagedIdentity),
    ];
    for (name, kind) in families {
        let config = SketchConfig::new(0.1, 0.1).unwrap().with_hash_kind(kind);
        for (uni_name, universe) in [
            ("mixed", &mixed),
            ("sequential", &sequential),
            ("odd-only", &odd_only),
        ] {
            let s = errors(&config, universe, seeds, 0xE1100);
            let hasher = kind.build(FamilySeed(0xE11FF));
            // Level 6 keeps >= n/64 expected samples per level, so the
            // metric measures bias rather than deep-level Poisson noise.
            let cal = quality::level_calibration(&hasher, universe.iter().copied(), 6);
            fam.row(vec![
                name.to_string(),
                uni_name.to_string(),
                pct(s.p50),
                pct(s.p95),
                pct(cal.max_relative_error),
            ]);
        }
    }
    fam.note(format!("n = {n}, eps = 0.1, {seeds} seeds; level_miscal = worst |P(lvl>=l) - 2^-l| / 2^-l over l <= 6"));
    fam.note("expected: sound families equivalent; shift(3) ~700% bias; identity survives benign ids but collapses on the odd-only universe (all levels 0); low-entropy is a 16-way seed lottery");

    let mut cap = Table::new(
        "E11b",
        "capacity constant ablation (c = k/eps^2)",
        &["k", "capacity", "p50_err", "p95_err", "p95 x sqrt(k)"],
    );
    for k in [1.0, 3.0, 12.0, 36.0] {
        let config = SketchConfig::with_constants(0.1, 0.1, k, 6.0).unwrap();
        let s = errors(&config, &mixed, seeds, 0xE1101);
        cap.row(vec![
            format!("{k}"),
            config.capacity().to_string(),
            pct(s.p50),
            pct(s.p95),
            format!("{:.3}", s.p95 * k.sqrt()),
        ]);
    }
    cap.note("PASS condition: p95 ~ 1/sqrt(k) (last column roughly constant)");

    vec![fam, cap]
}
