//! E12 — distinct-sample applications: intersection and Jaccard between
//! two streams from their coordinated sketches.
//!
//! Claim: because both sketches share coin flips, aligned samples witness
//! the true intersection at full sampling rate (vs the quadratic loss of
//! independent samples). We sweep the true overlap and compare estimates
//! to the oracle.

use crate::pct;
use crate::table::Table;
use gt_core::{similarity, DistinctSketch, SketchConfig};

/// Run E12.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 20_000u64 } else { 60_000 };
    let seeds: u64 = if quick { 8 } else { 25 };
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let universe = crate::experiments::common::labels(2 * n, 0xE12);

    let mut t = Table::new(
        "E12",
        "intersection & Jaccard accuracy vs overlap",
        &[
            "true_jaccard",
            "inter_truth",
            "inter_p95_err",
            "jaccard_p95_abs_err",
            "union_p95_err",
        ],
    );

    for overlap_frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
        // A = universe[0..n]; B shares `shared` labels with A.
        let shared = (overlap_frac * n as f64) as usize;
        let a_set = &universe[..n as usize];
        let b_set: Vec<u64> = universe[n as usize - shared..(2 * n as usize - shared)].to_vec();
        let inter_truth = shared as f64;
        let union_truth = (2 * n as usize - shared) as f64;
        let jaccard_truth = inter_truth / union_truth;

        let mut inter_errs = Vec::new();
        let mut jac_errs = Vec::new();
        let mut union_errs = Vec::new();
        for s in 0..seeds {
            let mut a = DistinctSketch::new(&config, 0xE1200 + s);
            let mut b = DistinctSketch::new(&config, 0xE1200 + s);
            a.extend_labels(a_set.iter().copied());
            b.extend_labels(b_set.iter().copied());
            let sim = similarity(&a, &b).unwrap();
            inter_errs.push((sim.intersection - inter_truth).abs() / inter_truth);
            jac_errs.push((sim.jaccard - jaccard_truth).abs());
            union_errs.push((sim.union - union_truth).abs() / union_truth);
        }
        let p95 = |v: &mut Vec<f64>| gt_core::quantile_f64(v, 0.95);
        t.row(vec![
            format!("{jaccard_truth:.3}"),
            format!("{inter_truth:.0}"),
            pct(p95(&mut inter_errs)),
            format!("{:.4}", p95(&mut jac_errs)),
            pct(p95(&mut union_errs)),
        ]);
    }
    t.note(format!(
        "|A| = |B| = {n}, eps = 0.05, {seeds} seeds per row"
    ));
    t.note("expected: union/Jaccard errors ~eps across the sweep; intersection relative error grows as the intersection shrinks (additive eps x F0 guarantee)");
    vec![t]
}
