//! E13 — predicate-restricted distinct counts at query time.
//!
//! Claim: for any post-hoc predicate, the estimate is unbiased with
//! **additive** error `± ε · F₀(total)`. We sweep predicate selectivity
//! from 50% down to 0.1% and check the additive bound holds while the
//! relative error (correctly) degrades for rare sub-populations.

use crate::pct;
use crate::table::Table;
use gt_core::{DistinctSketch, SketchConfig};

/// Run E13.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 40_000u64 } else { 100_000 };
    let seeds: u64 = if quick { 8 } else { 25 };
    let config = SketchConfig::new(0.05, 0.05).unwrap();
    let universe = crate::experiments::common::labels(n, 0xE13);

    let mut t = Table::new(
        "E13",
        "predicate-restricted counts vs selectivity",
        &[
            "selectivity",
            "truth",
            "p95_abs_err",
            "eps*F0_bound",
            "p95_rel_err",
        ],
    );

    for denom in [2u64, 10, 100, 1000] {
        // Selectivity 1/denom via a stable pseudo-random label property.
        let pred = move |l: u64| gt_hash::mix64(l).is_multiple_of(denom);
        let truth = universe.iter().filter(|&&l| pred(l)).count() as f64;

        let mut abs_errs = Vec::new();
        let mut rel_errs = Vec::new();
        for s in 0..seeds {
            let mut sk = DistinctSketch::new(&config, 0xE1300 + s);
            sk.extend_labels(universe.iter().copied());
            let est = sk.estimate_distinct_where(pred).value;
            abs_errs.push((est - truth).abs());
            rel_errs.push(if truth > 0.0 {
                (est - truth).abs() / truth
            } else {
                0.0
            });
        }
        let p95_abs = gt_core::quantile_f64(&mut abs_errs, 0.95);
        let p95_rel = gt_core::quantile_f64(&mut rel_errs, 0.95);
        t.row(vec![
            format!("1/{denom}"),
            format!("{truth:.0}"),
            format!("{p95_abs:.0}"),
            format!("{:.0}", 0.05 * n as f64),
            pct(p95_rel),
        ]);
    }
    t.note(format!("n = {n} total distinct, eps = 0.05, {seeds} seeds"));
    t.note("PASS condition: p95_abs_err <= eps x F0(total) for every selectivity; relative error grows as the sub-population shrinks (the documented trade-off)");
    vec![t]
}
