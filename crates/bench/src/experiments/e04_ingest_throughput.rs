//! E4 — ingest throughput: per-item inserts vs the trial-major reference
//! loop vs the batch-monomorphic kernel.
//!
//! Claim: batching wins twice. Interchanging the loops (trial-major order)
//! keeps one trial's hash coefficients and sample table hot across the
//! whole batch; the kernel then additionally hashes labels in bulk — the
//! hash-family enum is dispatched once per chunk instead of once per
//! (item, trial) — and rejects below-level items with a single mask
//! compare on the raw hash. All three paths produce bitwise-identical
//! sketches (property-tested in `gt-core` and `tests/properties.rs`);
//! this experiment measures the throughput gap across cardinalities and
//! hash families and writes the machine-readable summary CI gates on to
//! `results/BENCH_ingest.json`.

use std::time::{Duration, Instant};

use crate::experiments::common::labels;
use crate::table::Table;
use gt_core::{DistinctSketch, SketchConfig};
use gt_hash::HashFamilyKind;

/// Where the machine-readable summary lands (relative to the working
/// directory, like the CSV mirrors).
pub const BENCH_JSON: &str = "results/BENCH_ingest.json";

struct Measurement {
    hash: &'static str,
    n: u64,
    path: &'static str,
    ns_per_item: f64,
    items_per_sec: f64,
}

/// One named ingest path under measurement. The closure borrows the
/// label slice being timed, hence the lifetime.
type IngestPath<'a> = (&'static str, Box<dyn Fn(&mut DistinctSketch) + 'a>);

/// Best-of-`reps` wall time of `ingest` run against a fresh sketch each
/// rep (so level promotions replay identically every time).
fn best_of(reps: usize, config: &SketchConfig, ingest: impl Fn(&mut DistinctSketch)) -> Duration {
    let mut best = Duration::MAX;
    for rep in 0..reps {
        let mut sketch = DistinctSketch::new(config, 0xE4);
        let start = Instant::now();
        ingest(&mut sketch);
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        // Keep the sketch observable so the ingest cannot be elided.
        assert!(sketch.items_observed() > 0, "rep {rep} ingested nothing");
    }
    best
}

/// Run E4.
pub fn run(quick: bool) -> Vec<Table> {
    let cardinalities: &[u64] = if quick {
        &[50_000]
    } else {
        &[100_000, 1_000_000]
    };
    let reps = if quick { 2 } else { 3 };
    let kinds: &[(&str, HashFamilyKind)] = &[
        ("pairwise", HashFamilyKind::Pairwise),
        ("tabulation", HashFamilyKind::Tabulation),
        ("multiply_shift", HashFamilyKind::MultiplyShift),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    for &(hash, kind) in kinds {
        let config = SketchConfig::new(0.1, 0.05).unwrap().with_hash_kind(kind);
        for &n in cardinalities {
            let data = labels(n, 0xE4 ^ n);
            let paths: [IngestPath<'_>; 3] = [
                (
                    "per_item",
                    Box::new(|s: &mut DistinctSketch| {
                        for &l in &data {
                            s.insert(l);
                        }
                    }),
                ),
                (
                    "batched",
                    Box::new(|s: &mut DistinctSketch| s.extend_slice_reference(&data)),
                ),
                (
                    "kernel",
                    Box::new(|s: &mut DistinctSketch| s.extend_slice(&data)),
                ),
            ];
            for (path, ingest) in paths {
                let best = best_of(reps, &config, ingest);
                let secs = best.as_secs_f64();
                measurements.push(Measurement {
                    hash,
                    n,
                    path,
                    ns_per_item: secs * 1e9 / n as f64,
                    items_per_sec: n as f64 / secs,
                });
            }
        }
    }

    // Kernel speedup vs per-item for every (hash, n) pair; the minimum is
    // the number CI gates on (>= 1.0 means the kernel never loses).
    let mut min_speedup = f64::INFINITY;
    let mut table = Table::new(
        "E4",
        "ingest throughput: per-item vs batched vs kernel",
        &[
            "hash",
            "n",
            "path",
            "ns_per_item",
            "items_per_sec",
            "speedup_vs_per_item",
        ],
    );
    for m in &measurements {
        let per_item_ns = measurements
            .iter()
            .find(|b| b.hash == m.hash && b.n == m.n && b.path == "per_item")
            .expect("per_item baseline measured for every (hash, n)")
            .ns_per_item;
        let speedup = per_item_ns / m.ns_per_item;
        if m.path == "kernel" {
            min_speedup = min_speedup.min(speedup);
        }
        table.row(vec![
            m.hash.to_string(),
            m.n.to_string(),
            m.path.to_string(),
            format!("{:.2}", m.ns_per_item),
            format!("{:.3e}", m.items_per_sec),
            format!("{speedup:.2}x"),
        ]);
    }
    table.note(format!(
        "best of {reps} reps per cell; fresh sketch per rep; config eps=0.1 delta=0.05"
    ));
    table.note(format!(
        "kernel min speedup vs per-item across cells: {min_speedup:.2}x (CI gates on >= 1.0)"
    ));
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(&measurements, min_speedup, quick);
    vec![table]
}

/// Hand-rolled JSON (the build carries no JSON dependency), mirroring the
/// table plus the scalar CI gates on.
fn write_json(measurements: &[Measurement], min_speedup: f64, quick: bool) {
    let rows = measurements
        .iter()
        .map(|m| {
            format!(
                "{{\"hash\":\"{}\",\"n\":{},\"path\":\"{}\",\"ns_per_item\":{:.3},\"items_per_sec\":{:.1}}}",
                m.hash, m.n, m.path, m.ns_per_item, m.items_per_sec
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"experiment\":\"e4\",\"quick\":{quick},\"rows\":[{rows}],\
         \"kernel_min_speedup_vs_per_item\":{min_speedup:.4}}}\n"
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
