//! E21 — keyed multi-tenant store: Zipf traffic over ≥1M keys under a
//! fixed byte budget.
//!
//! Claim: the keyed store ([`gt_store::SketchStore`]) ingests keyed
//! traffic at least as fast per item as the **dense keyed baseline** it
//! replaces — one fully-materialized standalone sketch per key in a
//! `HashMap` — while holding resident memory to a configured budget the
//! dense map cannot respect at all (every key stays fully allocated
//! forever). The win comes from arena packing (per-key state is a few
//! cache lines, not a whole sketch), delta buffering (no hashing at
//! append time), and run-grouped shard batches (one lock + one index
//! probe per key-run instead of per item).
//!
//! A single *shared* dense sketch (all tenants folded together) is also
//! timed as a floor reference: it does no per-key dispatch at all, so it
//! bounds what any keyed structure could reach. It is reported, not
//! gated — it answers a different (aggregate, not per-tenant) query.
//!
//! The run drives a two-phase workload: a coverage sweep that touches
//! every key once (so the full key population exists and cold keys spill
//! to disk under the budget), then Zipf-skewed traffic concentrated on
//! popular keys (so the hot tier and front caches engage). Point-query
//! latency is sampled from the same Zipf distribution, so the p50 lands
//! on hot/resident keys and the p99 captures spill restores.
//!
//! Writes the machine-readable summary the CI bench-smoke gate checks to
//! `results/BENCH_store.json`: ingest ratio vs the dense keyed baseline
//! (workers-aware, as in E14), resident bytes vs budget, and
//! eviction/restore counts.

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::table::Table;
use gt_core::{effective_workers, DistinctSketch, SketchConfig};
use gt_hash::fold61;
use gt_store::{DistinctStore, StoreOptions};
use gt_streams::workload::ZipfSampler;

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_store.json";

/// The dense keyed baseline is measured on at most this many keys: at
/// full scale it needs ~1.3 KiB of heap per key (that's the point of the
/// store), so the full 1.2M-key population would cost ~1.5 GiB just to
/// time the competitor. Per-item rates are what the gate compares, so a
/// capped-but-identical workload recipe is a fair stand-in; the cap is
/// reported in the table and the JSON rather than applied silently.
const DENSE_BASELINE_KEY_CAP: u64 = 150_000;

/// Everything the JSON summary and the table both need.
struct Outcome {
    keys: u64,
    items: usize,
    workers: usize,
    threads: usize,
    budget: usize,
    keyed_items_per_sec: f64,
    dense_map_items_per_sec: f64,
    dense_map_keys: u64,
    single_sketch_items_per_sec: f64,
    ratio: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    queries: usize,
    snap: gt_store::StoreMetricsSnapshot,
}

/// Generate the two-phase keyed stream: one item per key (coverage
/// sweep), then `zipf_items` draws of Zipf-ranked keys. Labels are
/// globally distinct; ranks are spread over the key space with a fixed
/// odd multiplier so popular keys land on all shards.
fn keyed_stream(keys: u64, zipf_items: usize, theta: f64, seed: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(keys as usize + zipf_items);
    for key in 0..keys {
        out.push((key, fold61(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed)));
    }
    let zipf = ZipfSampler::new(keys, theta);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..zipf_items {
        let rank = zipf.sample(&mut rng);
        let key = rank.wrapping_mul(0x2545_F491_4F6C_DD1D) % keys;
        out.push((key, fold61(seed ^ (keys + i as u64))));
    }
    out
}

/// Run E21.
pub fn run(quick: bool) -> Vec<Table> {
    // Full mode carries the headline claim: more than a million keys
    // through a budget that holds only a fraction of them.
    let keys: u64 = if quick { 60_000 } else { 1_200_000 };
    let zipf_items: usize = if quick { 240_000 } else { 3_600_000 };
    let queries: usize = if quick { 20_000 } else { 100_000 };
    let theta = 1.1;
    // Below the all-resident footprint, so the coverage sweep must evict
    // cold keys and Zipf queries must restore some of them.
    let budget: usize = if quick { 5 << 20 } else { 128 << 20 };
    let config = SketchConfig::from_shape(0.3, 0.3, 16, 5, gt_hash::HashFamilyKind::Pairwise)
        .expect("static shape");
    let seed = 0xE21;
    let workers = effective_workers();
    let threads = workers.clamp(1, 8);

    let items = keyed_stream(keys, zipf_items, theta, seed);

    // Dense keyed baseline: a standalone sketch per key, fed per item —
    // what a tenant-keyed deployment looks like without the store. Same
    // workload recipe, capped key population (see DENSE_BASELINE_KEY_CAP).
    let dense_keys = keys.min(DENSE_BASELINE_KEY_CAP);
    let dense_zipf = (zipf_items as u64 * dense_keys / keys) as usize;
    let dense_items = keyed_stream(dense_keys, dense_zipf, theta, seed);
    let dense_start = Instant::now();
    let mut dense_map: HashMap<u64, DistinctSketch> = HashMap::new();
    for &(key, label) in &dense_items {
        dense_map
            .entry(key)
            .or_insert_with(|| DistinctSketch::new(&config, seed))
            .insert(label);
    }
    let dense_elapsed = dense_start.elapsed();
    let dense_map_items_per_sec = dense_items.len() as f64 / dense_elapsed.as_secs_f64();
    let dense_map_heap = dense_map.len() * dense_map.values().next().map_or(0, |s| s.heap_bytes());
    drop(dense_map);
    drop(dense_items);

    // Floor reference: one shared sketch, no keying at all.
    let single_start = Instant::now();
    let mut single = DistinctSketch::new(&config, seed);
    for &(_, label) in &items {
        single.insert(label);
    }
    let single_elapsed = single_start.elapsed();
    let single_sketch_items_per_sec = items.len() as f64 / single_elapsed.as_secs_f64();
    let single_estimate = single.estimate_distinct().value;

    let store = DistinctStore::new(
        &config,
        seed,
        StoreOptions::default().with_byte_budget(budget),
    )
    .expect("store construction");

    // Keyed ingest across `threads` writers: interleaving-independence
    // makes the final per-key states schedule-invariant, so a plain
    // chunk-split is a valid parallelization.
    let chunk = items.len().div_ceil(threads);
    let keyed_start = Instant::now();
    crossbeam::scope(|scope| {
        for part in items.chunks(chunk) {
            let store = &store;
            scope.spawn(move |_| store.extend(part).expect("keyed ingest"));
        }
    })
    .expect("writer threads");
    let keyed_elapsed = keyed_start.elapsed();
    let keyed_items_per_sec = items.len() as f64 / keyed_elapsed.as_secs_f64();
    let ratio = keyed_items_per_sec / dense_map_items_per_sec;

    // Point queries sampled from the same Zipf popularity: mostly hot or
    // resident keys, with a tail of spilled keys that must restore.
    let zipf = ZipfSampler::new(keys, theta);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries);
    for _ in 0..queries {
        let key = zipf.sample(&mut rng).wrapping_mul(0x2545_F491_4F6C_DD1D) % keys;
        let t0 = Instant::now();
        let estimate = store.estimate(key).expect("query");
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
        assert!(estimate.is_some(), "coverage sweep created every key");
    }
    latencies_ns.sort_unstable();
    let pct = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    let (query_p50_us, query_p99_us) = (pct(0.50), pct(0.99));

    let snap = store.metrics_snapshot();
    assert_eq!(
        snap.keys, keys,
        "every key from the coverage sweep is tracked"
    );
    assert!(
        snap.resident_bytes <= snap.budget_bytes,
        "budget violated: {} resident vs {} budget",
        snap.resident_bytes,
        snap.budget_bytes
    );

    let outcome = Outcome {
        keys,
        items: items.len(),
        workers,
        threads,
        budget,
        keyed_items_per_sec,
        dense_map_items_per_sec,
        dense_map_keys: dense_keys,
        single_sketch_items_per_sec,
        ratio,
        query_p50_us,
        query_p99_us,
        queries,
        snap,
    };

    let mut table = Table::new(
        "E21",
        "keyed multi-tenant store: Zipf traffic under a byte budget",
        &["metric", "value"],
    );
    table.row(vec!["keys".into(), keys.to_string()]);
    table.row(vec!["items ingested".into(), items.len().to_string()]);
    table.row(vec![
        "keyed store ingest (items/s)".into(),
        format!("{keyed_items_per_sec:.3e} ({threads} writer threads)"),
    ]);
    table.row(vec![
        "dense per-key map baseline (items/s)".into(),
        format!(
            "{dense_map_items_per_sec:.3e} ({dense_keys} keys, ~{} MiB heap, unbudgeted)",
            dense_map_heap >> 20
        ),
    ]);
    table.row(vec![
        "keyed / dense-map ratio".into(),
        format!("{ratio:.2}x"),
    ]);
    table.row(vec![
        "single shared sketch floor (items/s)".into(),
        format!(
            "{single_sketch_items_per_sec:.3e} (estimate {single_estimate:.0}; no per-key state)"
        ),
    ]);
    table.row(vec![
        "query latency p50 / p99 (us)".into(),
        format!("{query_p50_us:.1} / {query_p99_us:.1} over {queries} Zipf queries"),
    ]);
    table.row(vec![
        "resident vs budget (bytes)".into(),
        format!("{} / {}", snap.resident_bytes, snap.budget_bytes),
    ]);
    table.row(vec![
        "tiers (resident/pinned/spilled)".into(),
        format!(
            "{} / {} / {}",
            snap.resident_keys, snap.pinned_keys, snap.spilled_keys
        ),
    ]);
    table.row(vec![
        "evictions / restores".into(),
        format!(
            "{} ({} MiB spilled) / {} ({} MiB restored)",
            snap.evictions,
            snap.spilled_bytes >> 20,
            snap.restores,
            snap.restored_bytes >> 20
        ),
    ]);
    table.row(vec![
        "hot tier".into(),
        format!(
            "{} pins, {} front hits / {} refreshes",
            snap.pins, snap.front_hits, snap.front_refreshes
        ),
    ]);
    table.note(format!(
        "two-phase workload: coverage sweep over every key, then {zipf_items} Zipf(theta={theta}) \
         draws; labels globally distinct"
    ));
    table.note(format!(
        "dense per-key baseline runs the same workload recipe capped at {dense_keys} keys \
         (full population would need ~1.3 KiB/key of heap — the problem the store exists to solve); \
         per-item rates are what the gate compares"
    ));
    table.note(format!(
        "host workers (effective_workers) = {workers}; keyed ingest used {threads} threads, \
         both baselines are inherently single-threaded"
    ));
    table.note(if workers >= 2 {
        "PASS condition: keyed/dense-map ratio > 1 (sharded arena ingest beats the dense map), \
         resident <= 1.1x budget, evictions and restores both nonzero"
    } else {
        "PASS condition (single-core host): keyed/dense-map ratio >= 0.9, resident <= 1.1x \
         budget, evictions and restores both nonzero"
    });
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    write_json(&outcome, quick);
    vec![table]
}

/// Hand-rolled JSON mirror of the table for the CI gate. `workers` keys
/// the gate's ratio demand exactly as in E14; the full store metrics
/// snapshot rides along for forensic comparison across runs.
fn write_json(o: &Outcome, quick: bool) {
    let json = format!(
        concat!(
            "{{\"experiment\":\"e21\",\"quick\":{},\"workers\":{},\"threads\":{},",
            "\"keys\":{},\"items\":{},\"budget_bytes\":{},",
            "\"keyed_items_per_sec\":{:.1},\"dense_map_items_per_sec\":{:.1},",
            "\"dense_map_keys\":{},\"single_sketch_items_per_sec\":{:.1},",
            "\"ingest_ratio\":{:.4},",
            "\"queries\":{},\"query_p50_us\":{:.2},\"query_p99_us\":{:.2},",
            "\"store\":{}}}\n"
        ),
        quick,
        o.workers,
        o.threads,
        o.keys,
        o.items,
        o.budget,
        o.keyed_items_per_sec,
        o.dense_map_items_per_sec,
        o.dense_map_keys,
        o.single_sketch_items_per_sec,
        o.ratio,
        o.queries,
        o.query_p50_us,
        o.query_p99_us,
        o.snap.to_json(),
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
