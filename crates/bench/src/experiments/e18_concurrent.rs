//! E18 — concurrent serving path: multi-writer scaling + live-snapshot
//! validity.
//!
//! Claim: the [`gt_core::ConcurrentSketch`] serving path lets writer
//! threads share one sketch with (a) throughput that scales with writers
//! (thread-local buffers keep the global lock off the hot path), (b)
//! wait-free snapshot reads that stay epoch/coverage monotone, and (c)
//! every mid-stream snapshot answering with a real `(ε, δ)` estimate of
//! its prefix-union. This experiment records the writer sweep to
//! `results/BENCH_concurrent.json` for the CI bench-smoke gate and
//! validates the snapshot ε contract against exact prefix truth on a
//! deterministic single-writer schedule.
//!
//! Note on gating: the *speedup* assertion (4 writers beat 1) lives in
//! CI's python check, not here — this binary also runs on single-core
//! boxes where no scaling exists to measure. Monotonicity and the ε
//! contract are asserted unconditionally; they hold on any core count.

use std::time::Duration;

use crate::table::Table;
use gt_core::{ConcurrentSketch, SketchConfig};
use gt_streams::runner::run_live_query_scenario;
use gt_streams::workload::{Distribution, WorkloadSpec};

/// Where the machine-readable summary lands.
pub const BENCH_JSON: &str = "results/BENCH_concurrent.json";

const EPSILON: f64 = 0.1;
const DELTA: f64 = 0.05;
const SEED: u64 = 0xE18;

/// Run E18.
pub fn run(quick: bool) -> Vec<Table> {
    let writer_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let items_per_writer: u64 = if quick { 150_000 } else { 1_500_000 };
    let reps = if quick { 2 } else { 3 };
    let threshold = 8 * 1024;
    let config = SketchConfig::new(EPSILON, DELTA).unwrap();

    let mut table = Table::new(
        "E18",
        "concurrent multi-writer ingest + live snapshot serving",
        &[
            "writers",
            "wall_ms",
            "items_per_sec",
            "speedup_vs_1",
            "epochs",
            "live_queries",
            "monotone",
            "final_rel_err",
        ],
    );

    // (writers, wall_ms, throughput, speedup, epochs, samples, rel_err)
    let mut rows: Vec<(usize, f64, f64, f64, u64, usize, f64)> = Vec::new();
    let mut single_writer_tp = f64::NAN;
    for &w in writer_counts {
        let spec = WorkloadSpec {
            parties: w,
            distinct_per_party: 40_000,
            overlap: 0.25,
            items_per_party: items_per_writer,
            distribution: Distribution::Zipf(1.1),
            seed: SEED ^ w as u64,
        };
        let streams = spec.generate();
        let mut best_wall = Duration::MAX;
        let mut best = None;
        for _ in 0..reps {
            let report = run_live_query_scenario(&config, SEED, &streams, threshold);
            // Protocol properties hold on every rep, any machine.
            assert!(report.monotone, "snapshots regressed at {w} writers");
            assert!(
                report.relative_error <= EPSILON,
                "final estimate out of contract at {w} writers: {}",
                report.relative_error
            );
            if report.observe_wall < best_wall {
                best_wall = report.observe_wall;
                best = Some(report);
            }
        }
        let report = best.expect("at least one rep");
        let tp = report.throughput();
        if w == 1 {
            single_writer_tp = tp;
        }
        let speedup = tp / single_writer_tp;
        let ms = best_wall.as_secs_f64() * 1e3;
        rows.push((
            w,
            ms,
            tp,
            speedup,
            report.final_epoch,
            report.samples.len(),
            report.relative_error,
        ));
        table.row(vec![
            w.to_string(),
            format!("{ms:.1}"),
            format!("{tp:.3e}"),
            format!("{speedup:.2}x"),
            report.final_epoch.to_string(),
            report.samples.len().to_string(),
            report.monotone.to_string(),
            format!("{:.4}", report.relative_error),
        ]);
    }
    table.note(format!(
        "{items_per_writer} items/writer, threshold {threshold}, best of {reps} reps; \
         monotonicity + final eps contract asserted per rep"
    ));
    table.note(
        "PASS condition (CI, multi-core): items_per_sec at 4 writers > at 1 writer; \
         monotone everywhere; snapshot eps check ok",
    );
    table.note(format!("machine-readable summary: {BENCH_JSON}"));

    let eps_check = snapshot_epsilon_check(&config, quick);
    let mut eps_table = Table::new(
        "E18b",
        "mid-stream snapshot estimates vs exact prefix truth (deterministic schedule)",
        &["snapshots_checked", "max_rel_err", "epsilon", "within"],
    );
    eps_table.row(vec![
        eps_check.checked.to_string(),
        format!("{:.4}", eps_check.max_rel_err),
        format!("{EPSILON}"),
        eps_check.ok().to_string(),
    ]);
    eps_table.note(
        "single deterministic writer, snapshot after every propagation, exact \
         prefix cardinality from a running set",
    );
    assert!(
        eps_check.ok(),
        "mid-stream snapshot broke the eps contract: {} > {EPSILON}",
        eps_check.max_rel_err
    );

    write_json(items_per_writer, threshold, &rows, &eps_check, quick);
    vec![table, eps_table]
}

struct EpsCheck {
    checked: u64,
    max_rel_err: f64,
}

impl EpsCheck {
    fn ok(&self) -> bool {
        self.max_rel_err <= EPSILON
    }
}

/// Deterministic snapshot-validity pass: one writer, fixed schedule, and
/// after every propagation boundary compare the published snapshot's
/// estimate against the exact distinct count of the prefix it covers
/// (tracked with a running hash set). This is the ε contract the live
/// sweep can only spot-check, verified exactly.
fn snapshot_epsilon_check(config: &SketchConfig, quick: bool) -> EpsCheck {
    let spec = WorkloadSpec {
        parties: 1,
        distinct_per_party: 60_000,
        overlap: 0.0,
        items_per_party: if quick { 200_000 } else { 1_000_000 },
        distribution: Distribution::Zipf(1.1),
        seed: SEED,
    };
    let stream = &spec.generate().streams[0];
    let threshold: usize = 4 * 1024;

    let shared = ConcurrentSketch::new(config, SEED);
    let mut writer = shared.writer_with_threshold(threshold as u64);
    let mut exact = std::collections::HashSet::new();
    let mut checked = 0u64;
    let mut max_rel_err = 0f64;
    for chunk in stream.chunks(threshold) {
        writer.extend_slice(chunk);
        exact.extend(chunk.iter().copied());
        let snap = shared.snapshot();
        // Only prefix-complete snapshots have an exact counterpart.
        if writer.buffered() == 0 && snap.items_observed() > 0 {
            let rel =
                (snap.estimate_distinct().value - exact.len() as f64).abs() / exact.len() as f64;
            checked += 1;
            max_rel_err = max_rel_err.max(rel);
        }
    }
    drop(writer);
    EpsCheck {
        checked,
        max_rel_err,
    }
}

/// Hand-rolled JSON mirror of the tables. `monotone` is only ever written
/// as `true`: a violation panics the run instead.
fn write_json(
    items_per_writer: u64,
    threshold: u64,
    rows: &[(usize, f64, f64, f64, u64, usize, f64)],
    eps: &EpsCheck,
    quick: bool,
) {
    let rows_json = rows
        .iter()
        .map(|&(w, ms, tp, speedup, epochs, samples, rel_err)| {
            format!(
                "{{\"writers\":{w},\"wall_ms\":{ms:.2},\"items_per_sec\":{tp:.1},\
                 \"speedup_vs_1\":{speedup:.3},\"epochs\":{epochs},\
                 \"live_queries\":{samples},\"final_rel_err\":{rel_err:.5}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"experiment\":\"e18\",\"quick\":{quick},\
         \"items_per_writer\":{items_per_writer},\"threshold\":{threshold},\
         \"rows\":[{rows_json}],\"monotone\":true,\
         \"snapshot_eps\":{{\"checked\":{},\"max_rel_err\":{:.5},\
         \"epsilon\":{EPSILON},\"ok\":{}}}}}\n",
        eps.checked,
        eps.max_rel_err,
        eps.ok(),
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(BENCH_JSON, json))
    {
        eprintln!("  {BENCH_JSON} write failed: {e}");
    }
}
