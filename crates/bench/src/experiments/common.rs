//! Shared helpers for the experiment modules.

use gt_core::{DistinctSketch, SketchConfig};

/// Deterministic distinct labels `0..n`, folded into the sketch universe,
/// salted so different experiments use disjoint universes.
pub fn labels(n: u64, salt: u64) -> Vec<u64> {
    (0..n)
        .map(|i| gt_hash::fold61(i ^ gt_hash::mix64(salt.wrapping_mul(0x9E37_79B9))))
        .collect()
}

/// Build a sketch over a label slice with a given master seed.
pub fn sketch_over(config: &SketchConfig, seed: u64, labels: &[u64]) -> DistinctSketch {
    let mut s = DistinctSketch::new(config, seed);
    s.extend_labels(labels.iter().copied());
    s
}

/// Relative errors of the distinct estimate over `seeds` master seeds.
pub fn error_samples(
    config: &SketchConfig,
    labels: &[u64],
    seeds: u64,
    seed_base: u64,
) -> Vec<f64> {
    let truth = {
        let mut set = std::collections::HashSet::with_capacity(labels.len());
        set.extend(labels.iter().copied());
        set.len() as f64
    };
    (0..seeds)
        .map(|s| {
            let est = sketch_over(config, seed_base + s, labels)
                .estimate_distinct()
                .value;
            gt_core::relative_error(est, truth)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_salted() {
        let a = labels(1_000, 1);
        let b = labels(1_000, 2);
        let sa: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(sa.len(), 1_000);
        assert_ne!(a, b);
    }

    #[test]
    fn error_samples_are_small_for_generous_config() {
        let cfg = SketchConfig::new(0.1, 0.05).unwrap();
        let l = labels(20_000, 3);
        let errs = error_samples(&cfg, &l, 5, 0);
        assert_eq!(errs.len(), 5);
        assert!(errs.iter().all(|&e| e < 0.15), "{errs:?}");
    }
}
