//! E5 — the headline: estimating on the union of distributed streams.
//!
//! Claims under test:
//! 1. The coordinated union estimate stays within ε regardless of the
//!    number of parties `t` and of how much their streams overlap.
//! 2. The naive alternatives fail in the predicted directions:
//!    summing per-party estimates overcounts by up to `t×` under overlap,
//!    and the reservoir-sampling strawman overcounts with duplication.

use crate::pct;
use crate::table::Table;
use gt_baselines::{DistinctCounter, ReservoirSample};
use gt_core::SketchConfig;
use gt_streams::{run_scenario, Distribution, WorkloadSpec};

/// Run E5.
pub fn run(quick: bool) -> Vec<Table> {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let parties_sweep: &[usize] = if quick {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let distinct = if quick { 5_000 } else { 20_000 };

    let mut t = Table::new(
        "E5",
        "union estimation vs parties and overlap",
        &[
            "parties",
            "overlap",
            "truth",
            "gt_union_err",
            "naive_sum_ratio",
            "reservoir_ratio",
        ],
    );

    for &parties in parties_sweep {
        for overlap in [0.0, 0.5, 1.0] {
            let spec = WorkloadSpec {
                parties,
                distinct_per_party: distinct,
                overlap,
                items_per_party: distinct * 4,
                distribution: Distribution::Uniform,
                seed: 0xE5 + parties as u64,
            };
            let streams = spec.generate();
            let report = run_scenario(&config, 0xE500 + parties as u64, &streams);

            // Naive 1: independent per-party sketches, estimates summed.
            let naive_sum: f64 = streams
                .streams
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut sk = gt_core::DistinctSketch::new(&config, 0xDEAD + i as u64);
                    sk.extend_labels(s.iter().copied());
                    sk.estimate_distinct().value
                })
                .sum();

            // Naive 2: concatenate per-party reservoirs, scale up.
            let mut reservoir_total = 0.0;
            for (i, s) in streams.streams.iter().enumerate() {
                let mut r = ReservoirSample::new(config.max_sample_entries() / parties, i as u64);
                r.extend_labels(s.iter().copied());
                reservoir_total += r.estimate();
            }

            let truth = report.truth as f64;
            t.row(vec![
                parties.to_string(),
                format!("{overlap}"),
                report.truth.to_string(),
                pct(report.relative_error),
                format!("{:.2}x", naive_sum / truth),
                format!("{:.2}x", reservoir_total / truth),
            ]);
        }
    }
    t.note("gt_union_err: coordinated merge at the referee (expected flat, <= ~10% everywhere)");
    t.note("naive_sum_ratio: sum of per-party estimates / truth (expected -> t x at overlap 1.0)");
    t.note("reservoir_ratio: concatenated naive reservoir scale-up / truth (expected >> 1 with duplication)");
    vec![t]
}
