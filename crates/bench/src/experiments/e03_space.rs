//! E3 — space usage.
//!
//! Claim: per-party space is `O(ε⁻² · log(1/δ) · log n)` bits, independent
//! of stream length. We measure (a) resident sample entries and heap
//! bytes against the `trials × capacity` ceiling across ε and δ, and
//! (b) that space does not move when the stream gets 100× longer, while an
//! exact set grows linearly.

use crate::bytes_h;
use crate::experiments::common::{labels, sketch_over};
use crate::table::Table;
use gt_core::SketchConfig;
use gt_streams::encode_sketch;

/// Run E3.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 50_000u64 } else { 200_000 };
    let universe = labels(n, 0xE3);

    let mut shape = Table::new(
        "E3a",
        "space vs (eps, delta)",
        &[
            "eps",
            "delta",
            "trials",
            "capacity",
            "ceiling_entries",
            "resident_entries",
            "heap",
            "wire",
        ],
    );
    for (eps, delta) in [
        (0.2, 0.1),
        (0.1, 0.1),
        (0.1, 0.01),
        (0.05, 0.01),
        (0.02, 0.01),
    ] {
        let config = SketchConfig::new(eps, delta).unwrap();
        let sketch = sketch_over(&config, 0xE301, &universe);
        shape.row(vec![
            format!("{eps}"),
            format!("{delta}"),
            config.trials().to_string(),
            config.capacity().to_string(),
            config.max_sample_entries().to_string(),
            sketch.sample_entries().to_string(),
            bytes_h(sketch.heap_bytes()),
            bytes_h(encode_sketch(&sketch).len()),
        ]);
    }
    shape.note(format!("n = {n} distinct labels"));
    shape.note("PASS condition: resident <= ceiling; heap ~ 16 B/slot (2x-table open addressing); wire ~ entries x delta-varint width");
    shape.note("scaling shape: capacity x4 when eps halves; trials grow ~log(1/delta)");

    let mut vs_len = Table::new(
        "E3b",
        "space vs stream length (fixed eps=0.1, delta=0.05)",
        &[
            "stream_items",
            "distinct",
            "sketch_wire",
            "sketch_heap",
            "exact_set_bytes",
        ],
    );
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let base: u64 = if quick { 10_000 } else { 20_000 };
    for mult in [1u64, 10, 100] {
        let items = base * mult;
        // distinct universe fixed at `base`; longer streams only duplicate.
        let mut sketch = gt_core::DistinctSketch::new(&config, 0xE302);
        for i in 0..items {
            sketch.insert(universe[(i % base) as usize]);
        }
        vs_len.row(vec![
            items.to_string(),
            base.to_string(),
            bytes_h(encode_sketch(&sketch).len()),
            bytes_h(sketch.heap_bytes()),
            bytes_h((base as usize) * 8),
        ]);
    }
    vs_len.note(
        "PASS condition: sketch columns flat as items grow 100x; exact set is ~8 B x distinct",
    );

    vec![shape, vs_len]
}
