//! Aligned text tables + CSV emission for the experiment harness.

use std::io::Write;
use std::path::Path;

/// One experiment output table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E5".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (expectations, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Write the table as CSV to `dir/<id>_<slug>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{}_{}.csv", self.id.to_lowercase(), slug));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", escape_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", escape_row(row))?;
        }
        Ok(path)
    }
}

fn escape_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0", "demo", &["a", "long_header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["10".into(), "20,5".into(), "30".into()]);
        t.note("hello");
        t
    }

    #[test]
    fn render_is_aligned() {
        let r = sample().render();
        assert!(r.contains("E0: demo"));
        assert!(r.contains("long_header"));
        assert!(r.contains("note: hello"));
        // All data lines should have equal visible width for the first col.
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("gt_bench_table_test");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"20,5\""));
        assert!(content.starts_with("a,long_header,c"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
