//! E14 — parallel ingest: fan-out/merge vs sequential.
//!
//! Claim: the parallel build produces bit-identical state (verified in
//! tests) at `~1/threads` the wall time on a multicore host. On a
//! single-core host (like CI containers) this bench instead quantifies the
//! fan-out overhead; EXPERIMENTS.md records which regime the numbers came
//! from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_core::parallel::build_parallel;
use gt_core::{ShardedSketch, SketchConfig};
use std::hint::black_box;

fn data(n: u64) -> Vec<u64> {
    (0..n).map(|i| gt_hash::fold61(i % (n / 2))).collect()
}

fn batch_build(c: &mut Criterion) {
    let labels = data(400_000);
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e14_batch_build");
    group.throughput(Throughput::Elements(labels.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    build_parallel(&config, 7, &labels, t)
                        .unwrap()
                        .sample_entries(),
                )
            });
        });
    }
    group.finish();
}

fn sharded_online(c: &mut Criterion) {
    let labels = data(400_000);
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e14_sharded_online");
    group.throughput(Throughput::Elements(labels.len() as u64));
    for writers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(writers), &writers, |b, &w| {
            b.iter(|| {
                let sharded = ShardedSketch::new(&config, 7, 8);
                crossbeam::scope(|scope| {
                    for chunk in labels.chunks(labels.len().div_ceil(w)) {
                        let sharded = &sharded;
                        scope.spawn(move |_| {
                            for &l in chunk {
                                sharded.insert(l);
                            }
                        });
                    }
                })
                .unwrap();
                black_box(sharded.items_observed())
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = batch_build, sharded_online
);
criterion_main!(benches);
