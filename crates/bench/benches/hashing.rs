//! Hash-family micro-benchmarks: the per-item cost floor of every sketch.
//!
//! Context for E4/E11: pairwise field hashing is the paper's requirement;
//! multiply–shift is the cheaper-but-weaker alternative; tabulation trades
//! memory for speed. These numbers say what the soundness guarantee costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_hash::{FamilySeed, HashFamilyKind, LevelHasher};
use std::hint::black_box;

fn eval_throughput(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..4096u64).map(gt_hash::fold61).collect();
    let mut group = c.benchmark_group("hash_eval");
    group.throughput(Throughput::Elements(inputs.len() as u64));
    let kinds = [
        ("pairwise61", HashFamilyKind::Pairwise),
        ("kwise4", HashFamilyKind::KWise(4)),
        ("multiply_shift", HashFamilyKind::MultiplyShift),
        ("tabulation", HashFamilyKind::Tabulation),
    ];
    for (name, kind) in kinds {
        let h = kind.build(FamilySeed(42));
        group.bench_with_input(BenchmarkId::from_parameter(name), &h, |b, h| {
            b.iter(|| {
                let mut acc = 0u64;
                for &x in &inputs {
                    acc ^= h.hash_label(x);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn level_throughput(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..4096u64).map(gt_hash::fold61).collect();
    let h = HashFamilyKind::Pairwise.build(FamilySeed(42));
    let mut group = c.benchmark_group("hash_level");
    group.throughput(Throughput::Elements(inputs.len() as u64));
    group.bench_function("pairwise61_level", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &inputs {
                acc += h.level(x) as u32;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn mixer_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_fold");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("fold61", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for x in 0..4096u64 {
                acc ^= gt_hash::fold61(x);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = eval_throughput, level_throughput, mixer_throughput
);
criterion_main!(benches);
