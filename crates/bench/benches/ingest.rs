//! E4 — per-item ingest cost and throughput.
//!
//! Claims: amortized O(1) hash evaluations per trial per item (promotions
//! are rare and amortize away), so throughput is flat in stream length and
//! scales as `1/trials`. Duplicate-heavy streams are no slower than
//! distinct-heavy ones (dedup is one probe).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_core::{DistinctSketch, SketchConfig};
use std::hint::black_box;

fn labels(n: u64, salt: u64) -> Vec<u64> {
    (0..n).map(|i| gt_hash::fold61(i ^ (salt << 40))).collect()
}

/// Throughput vs epsilon (capacity): distinct-heavy stream.
fn ingest_vs_epsilon(c: &mut Criterion) {
    let data = labels(100_000, 1);
    let mut group = c.benchmark_group("e4_ingest_vs_epsilon");
    group.throughput(Throughput::Elements(data.len() as u64));
    for eps in [0.05, 0.1, 0.2] {
        let config = SketchConfig::new(eps, 0.05).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(eps), &config, |b, cfg| {
            b.iter(|| {
                let mut s = DistinctSketch::new(cfg, 7);
                s.extend_labels(data.iter().copied());
                black_box(s.estimate_distinct().value)
            });
        });
    }
    group.finish();
}

/// Throughput vs trial count at fixed capacity: cost must be ~linear in
/// trials (each item hashes once per trial).
fn ingest_vs_trials(c: &mut Criterion) {
    let data = labels(100_000, 2);
    let mut group = c.benchmark_group("e4_ingest_vs_trials");
    group.throughput(Throughput::Elements(data.len() as u64));
    for trials in [1usize, 5, 15, 29] {
        let config =
            SketchConfig::from_shape(0.1, 0.05, 1200, trials, gt_hash::HashFamilyKind::Pairwise)
                .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(trials), &config, |b, cfg| {
            b.iter(|| {
                let mut s = DistinctSketch::new(cfg, 7);
                s.extend_labels(data.iter().copied());
                black_box(s.sample_entries())
            });
        });
    }
    group.finish();
}

/// Duplicate-heavy vs distinct-heavy streams of the same length.
fn ingest_duplication(c: &mut Criterion) {
    let n = 100_000u64;
    let distinct_heavy = labels(n, 3);
    let duplicate_heavy: Vec<u64> = {
        let uni = labels(n / 100, 4);
        (0..n).map(|i| uni[(i % (n / 100)) as usize]).collect()
    };
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e4_ingest_duplication");
    group.throughput(Throughput::Elements(n));
    for (name, data) in [
        ("distinct_heavy", &distinct_heavy),
        ("duplicate_heavy", &duplicate_heavy),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), data, |b, data| {
            b.iter(|| {
                let mut s = DistinctSketch::new(&config, 7);
                s.extend_labels(data.iter().copied());
                black_box(s.max_level())
            });
        });
    }
    group.finish();
}

/// Stream length scaling at fixed distinct count: per-item cost must be
/// flat (amortized O(1) promotions).
fn ingest_vs_length(c: &mut Criterion) {
    let distinct = labels(20_000, 5);
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e4_ingest_vs_length");
    for mult in [1u64, 4, 16] {
        let items = 20_000 * mult;
        let data: Vec<u64> = (0..items)
            .map(|i| distinct[(i % 20_000) as usize])
            .collect();
        group.throughput(Throughput::Elements(items));
        group.bench_with_input(BenchmarkId::from_parameter(items), &data, |b, data| {
            b.iter(|| {
                let mut s = DistinctSketch::new(&config, 7);
                s.extend_labels(data.iter().copied());
                black_box(s.items_observed())
            });
        });
    }
    group.finish();
}

/// Item-major (per-item) vs trial-major reference vs the
/// batch-monomorphic kernel on the same data. `extend_labels` now feeds
/// the kernel through a stack buffer, so the per-item contender is an
/// explicit `insert` loop. Summary numbers (and the CI gate) come from
/// `experiments e4` / `results/BENCH_ingest.json`; this group gives the
/// Criterion-grade confidence intervals.
fn ingest_batched(c: &mut Criterion) {
    let data = labels(100_000, 6);
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e4_ingest_batched");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("item_major", |b| {
        b.iter(|| {
            let mut s = DistinctSketch::new(&config, 7);
            for &l in &data {
                s.insert(l);
            }
            black_box(s.sample_entries())
        });
    });
    group.bench_function("trial_major_reference", |b| {
        b.iter(|| {
            let mut s = DistinctSketch::new(&config, 7);
            s.extend_slice_reference(&data);
            black_box(s.sample_entries())
        });
    });
    group.bench_function("trial_major_kernel", |b| {
        b.iter(|| {
            let mut s = DistinctSketch::new(&config, 7);
            s.extend_slice(&data);
            black_box(s.sample_entries())
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ingest_vs_epsilon, ingest_vs_trials, ingest_duplication, ingest_vs_length, ingest_batched
);
criterion_main!(benches);
