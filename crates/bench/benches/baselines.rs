//! Update-cost comparison across all distinct counters (context for E6:
//! the frontier table reports accuracy per byte; this reports time per
//! item, completing the cost picture).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gt_baselines::{
    DistinctCounter, ExactDistinct, HyperLogLog, KmvSketch, LinearCounter, LogLogSketch,
    PcsaSketch, ReservoirSample,
};
use gt_core::{DistinctSketch, SketchConfig};
use std::hint::black_box;

fn bench_counter<C: DistinctCounter>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    make: impl Fn() -> C,
    data: &[u64],
) {
    group.bench_with_input(BenchmarkId::from_parameter(name), data, |b, data| {
        b.iter(|| {
            let mut c = make();
            for &l in data {
                c.insert(l);
            }
            black_box(c.estimate())
        });
    });
}

fn update_cost(c: &mut Criterion) {
    let data: Vec<u64> = (0..200_000u64)
        .map(|i| gt_hash::fold61(i % 50_000))
        .collect();
    let gt_cfg = SketchConfig::new(0.1, 0.05).unwrap();

    let mut group = c.benchmark_group("baseline_update_cost");
    group.throughput(Throughput::Elements(data.len() as u64));
    bench_counter(
        &mut group,
        "gt-sketch",
        || DistinctSketch::new(&gt_cfg, 1),
        &data,
    );
    bench_counter(&mut group, "exact", ExactDistinct::new, &data);
    bench_counter(&mut group, "fm-pcsa", || PcsaSketch::new(1024, 2), &data);
    bench_counter(&mut group, "loglog", || LogLogSketch::new(1024, 3), &data);
    bench_counter(
        &mut group,
        "hyperloglog",
        || HyperLogLog::new(1024, 7),
        &data,
    );
    bench_counter(
        &mut group,
        "linear-counting",
        || LinearCounter::new(1 << 19, 4),
        &data,
    );
    bench_counter(&mut group, "kmv", || KmvSketch::new(1024, 5), &data);
    bench_counter(
        &mut group,
        "reservoir",
        || ReservoirSample::new(1024, 6),
        &data,
    );
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = update_cost
);
criterion_main!(benches);
