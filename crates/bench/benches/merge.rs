//! E10 — referee-side cost.
//!
//! Claims: merging `t` party sketches costs `O(t · trials · capacity)` —
//! linear in parties, **independent of stream lengths** — and a wire
//! decode costs about as much as a merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_core::{merge_all, DistinctSketch, SketchConfig};
use gt_streams::{decode_sketch, encode_sketch};
use std::hint::black_box;

fn party_sketches(t: usize, items_each: u64, config: &SketchConfig) -> Vec<DistinctSketch> {
    (0..t)
        .map(|p| {
            let mut s = DistinctSketch::new(config, 99);
            for i in 0..items_each {
                s.insert(gt_hash::fold61(i ^ ((p as u64) << 32)));
            }
            s
        })
        .collect()
}

/// Merge cost vs number of parties.
fn merge_vs_parties(c: &mut Criterion) {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e10_merge_vs_parties");
    for t in [2usize, 8, 32, 128] {
        let parties = party_sketches(t, 20_000, &config);
        group.bench_with_input(BenchmarkId::from_parameter(t), &parties, |b, parties| {
            b.iter(|| black_box(merge_all(parties).unwrap().estimate_distinct().value));
        });
    }
    group.finish();
}

/// Merge cost must not depend on how long the parties' streams were.
fn merge_vs_stream_length(c: &mut Criterion) {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let mut group = c.benchmark_group("e10_merge_vs_stream_length");
    for items in [10_000u64, 100_000, 1_000_000] {
        let parties = party_sketches(8, items, &config);
        group.bench_with_input(
            BenchmarkId::from_parameter(items),
            &parties,
            |b, parties| {
                b.iter(|| black_box(merge_all(parties).unwrap().sample_entries()));
            },
        );
    }
    group.finish();
}

/// Decode + merge (the full referee receive path) vs plain merge.
fn decode_and_merge(c: &mut Criterion) {
    let config = SketchConfig::new(0.1, 0.05).unwrap();
    let parties = party_sketches(8, 50_000, &config);
    let messages: Vec<bytes::Bytes> = parties.iter().map(encode_sketch).collect();

    let mut group = c.benchmark_group("e10_referee_paths");
    group.bench_function("merge_only", |b| {
        b.iter(|| black_box(merge_all(&parties).unwrap().sample_entries()));
    });
    group.bench_function("decode_then_merge", |b| {
        b.iter(|| {
            let decoded: Vec<DistinctSketch> = messages
                .iter()
                .map(|m| decode_sketch(m.clone()).unwrap())
                .collect();
            black_box(merge_all(&decoded).unwrap().sample_entries())
        });
    });
    group.bench_function("estimate_only", |b| {
        let union = merge_all(&parties).unwrap();
        b.iter(|| black_box(union.estimate_distinct().value));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = merge_vs_parties, merge_vs_stream_length, decode_and_merge
);
criterion_main!(benches);
