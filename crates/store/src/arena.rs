//! Slab arenas for packed per-key sketch state.
//!
//! A store shard keeps the state of every resident (non-hot) key inside a
//! handful of large `Vec<u64>` slabs instead of one heap allocation per
//! key. Slots come in power-of-two size classes: class `c` holds
//! `base << c` words. Allocation is a free-list pop (or a slab extension
//! when the free list is empty) and freeing is a free-list push — no
//! allocator traffic on the steady-state path, which is the point: with
//! millions of small sketches the per-`Vec` malloc/free overhead and heap
//! fragmentation would dominate the resident footprint.
//!
//! A [`SketchHandle`] names a slot as `(class, index)`; the slot's byte
//! offset is `index * class_words(class) * 8`, so handles stay valid across
//! slab growth (growth appends, it never moves existing slots relative to
//! the slab start — and slot access re-derives the offset each time, so
//! even a `Vec` reallocation is invisible). Keys that outgrow their slot
//! class are promoted by allocating a slot from a bigger class, rewriting
//! the packed state there, and freeing the old slot — the same
//! copy-forward shape as `compact.rs`.

/// Name of one arena slot: the size class plus the slot index within that
/// class's slab. `Copy` and 5 bytes of payload — cheap to store in the
/// per-key index entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchHandle {
    /// Size class; the slot spans `base_words << class` words.
    pub class: u8,
    /// Slot index within the class slab.
    pub slot: u32,
}

/// One power-of-two size class: a slab of `words`-sized slots plus the
/// free list of previously released slot indices.
#[derive(Debug, Default)]
struct SlotClass {
    /// Words per slot in this class.
    words: usize,
    /// Backing slab; length is always `slots * words`.
    storage: Vec<u64>,
    /// Indices of freed slots available for reuse.
    free: Vec<u32>,
    /// Total slots ever carved out of `storage`.
    slots: u32,
}

/// Per-shard slab arena: a ladder of power-of-two slot classes.
#[derive(Debug)]
pub struct SlotArena {
    /// Words in the smallest (class 0) slot.
    base_words: usize,
    classes: Vec<SlotClass>,
}

impl SlotArena {
    /// Build an arena whose smallest slot holds `min_words` (rounded up to
    /// a power of two) and whose largest class is the first one that can
    /// hold `max_words`. `max_words` is the worst-case packed size of one
    /// key (full sample in every trial plus delta headroom), so every
    /// promotion request is satisfiable.
    pub fn new(min_words: usize, max_words: usize) -> Self {
        let base_words = min_words.max(4).next_power_of_two();
        let mut classes = Vec::new();
        let mut words = base_words;
        loop {
            classes.push(SlotClass {
                words,
                ..SlotClass::default()
            });
            if words >= max_words {
                break;
            }
            words *= 2;
        }
        Self {
            base_words,
            classes,
        }
    }

    /// Smallest class whose slots hold at least `words` words, clamped to
    /// the largest class.
    pub fn class_for(&self, words: usize) -> u8 {
        let top = (self.classes.len() - 1) as u8;
        if words <= self.base_words {
            return 0;
        }
        let ratio = words.div_ceil(self.base_words).next_power_of_two();
        (ratio.trailing_zeros() as u8).min(top)
    }

    /// Words per slot in `class`.
    pub fn class_words(&self, class: u8) -> usize {
        self.classes[class as usize].words
    }

    /// Bytes per slot in `class` — what a resident key of this class
    /// contributes to the shard's byte budget.
    pub fn class_bytes(&self, class: u8) -> usize {
        self.class_words(class) * 8
    }

    /// Allocate a zeroed slot from `class`: pop the free list, or extend
    /// the slab by one slot.
    pub fn alloc(&mut self, class: u8) -> SketchHandle {
        let c = &mut self.classes[class as usize];
        let slot = if let Some(slot) = c.free.pop() {
            let start = slot as usize * c.words;
            c.storage[start..start + c.words].fill(0);
            slot
        } else {
            let slot = c.slots;
            c.slots += 1;
            c.storage.resize(c.slots as usize * c.words, 0);
            slot
        };
        SketchHandle { class, slot }
    }

    /// Return a slot to its class free list. The words are not scrubbed
    /// here; [`SlotArena::alloc`] zeroes on reuse.
    pub fn free(&mut self, handle: SketchHandle) {
        let c = &mut self.classes[handle.class as usize];
        debug_assert!(
            handle.slot < c.slots,
            "freeing a slot that was never allocated"
        );
        debug_assert!(!c.free.contains(&handle.slot), "double free of arena slot");
        c.free.push(handle.slot);
    }

    /// The words of `handle`'s slot.
    pub fn slot(&self, handle: SketchHandle) -> &[u64] {
        let c = &self.classes[handle.class as usize];
        let start = handle.slot as usize * c.words;
        &c.storage[start..start + c.words]
    }

    /// The words of `handle`'s slot, mutably.
    pub fn slot_mut(&mut self, handle: SketchHandle) -> &mut [u64] {
        let c = &mut self.classes[handle.class as usize];
        let start = handle.slot as usize * c.words;
        &mut c.storage[start..start + c.words]
    }

    /// Total bytes backing all slabs (live + free-listed slots). This is
    /// the arena's actual memory footprint; the shard's *budgeted*
    /// resident bytes count only live slots.
    pub fn allocated_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.storage.len() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_for_picks_smallest_fitting_class() {
        let arena = SlotArena::new(16, 1 << 12);
        assert_eq!(arena.class_for(0), 0);
        assert_eq!(arena.class_for(16), 0);
        assert_eq!(arena.class_for(17), 1);
        assert_eq!(arena.class_for(32), 1);
        assert_eq!(arena.class_for(33), 2);
        // Clamped to the top class even for oversized asks.
        let top = arena.class_for(1 << 12);
        assert_eq!(arena.class_words(top), 1 << 12);
        assert_eq!(arena.class_for(usize::MAX >> 8), top);
    }

    #[test]
    fn min_words_rounds_up_to_a_power_of_two() {
        let arena = SlotArena::new(9, 100);
        assert_eq!(arena.class_words(0), 16);
        assert!(arena.class_words(arena.class_for(100)) >= 100);
    }

    #[test]
    fn alloc_free_reuses_slots_and_zeroes_them() {
        let mut arena = SlotArena::new(8, 64);
        let a = arena.alloc(0);
        let b = arena.alloc(0);
        assert_ne!(a.slot, b.slot);
        arena.slot_mut(a).fill(0xDEAD_BEEF);
        let bytes_before = arena.allocated_bytes();
        arena.free(a);
        let c = arena.alloc(0);
        // Freed slot is reused, and handed back zeroed.
        assert_eq!(c, a);
        assert!(arena.slot(c).iter().all(|&w| w == 0));
        // Reuse did not grow the slab.
        assert_eq!(arena.allocated_bytes(), bytes_before);
    }

    #[test]
    fn slots_are_isolated() {
        let mut arena = SlotArena::new(4, 16);
        let a = arena.alloc(0);
        let b = arena.alloc(0);
        let c = arena.alloc(1);
        arena.slot_mut(a).fill(1);
        arena.slot_mut(b).fill(2);
        arena.slot_mut(c).fill(3);
        assert!(arena.slot(a).iter().all(|&w| w == 1));
        assert!(arena.slot(b).iter().all(|&w| w == 2));
        assert!(arena.slot(c).iter().all(|&w| w == 3));
        assert_eq!(arena.slot(c).len(), 8);
    }

    #[test]
    fn allocated_bytes_tracks_slab_growth() {
        let mut arena = SlotArena::new(8, 8);
        assert_eq!(arena.allocated_bytes(), 0);
        let _ = arena.alloc(0);
        assert_eq!(arena.allocated_bytes(), 64);
        let h = arena.alloc(0);
        assert_eq!(arena.allocated_bytes(), 128);
        // Freeing keeps the slab (bytes are reusable, not returned).
        arena.free(h);
        assert_eq!(arena.allocated_bytes(), 128);
    }
}
