//! Store observability: per-shard tallies with a consistent-cut snapshot.
//!
//! The counters follow the aggregation ordering rule from
//! `gt_core::metrics`: every counter is recorded while holding the lock of
//! the shard it describes, and [`crate::SketchStore::metrics_snapshot`]
//! acquires **all** shard locks (in index order) before reading the first
//! counter. The snapshot is therefore a consistent cut — sums like
//! `resident_keys + pinned_keys + spilled_keys == keys` hold exactly, and
//! no in-flight batch is half-counted.
//!
//! Unlike the sketch-level metrics there are no atomics here: a shard's
//! tally is only ever touched under that shard's mutex, so plain `u64`
//! fields are already race-free and cost one untyped add per event.

use std::fmt;

/// Plain-field event counters owned by one shard, mutated only under the
/// shard lock.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardTally {
    pub items: u64,
    pub key_runs: u64,
    pub folds: u64,
    pub delta_replayed: u64,
    pub promotions: u64,
    pub pins: u64,
    pub demotions: u64,
    pub front_hits: u64,
    pub front_refreshes: u64,
    pub evictions: u64,
    pub spilled_bytes: u64,
    pub restores: u64,
    pub restored_bytes: u64,
    pub compactions: u64,
    pub reclaimed_bytes: u64,
    pub queries: u64,
}

/// Consistent-cut view of a [`crate::SketchStore`]'s counters and gauges.
///
/// Produced by [`crate::SketchStore::metrics_snapshot`]; all shard locks
/// are held for the duration of the read, so the numbers describe one
/// instant of the store, not a smear across concurrent batches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetricsSnapshot {
    /// Shard count of the store (fixed at construction).
    pub shards: u64,
    /// Labels ingested, across all keys and shards.
    pub items: u64,
    /// Key-runs processed: one per `(batch, shard, key)` group, i.e. how
    /// many times a per-key state was located and appended to.
    pub key_runs: u64,
    /// Delta-buffer folds: packed state materialized into a scratch
    /// sketch, deltas replayed, state written back.
    pub folds: u64,
    /// Raw delta items replayed during folds.
    pub delta_replayed: u64,
    /// Slot-class promotions (key outgrew its slot, moved to a larger
    /// class).
    pub promotions: u64,
    /// Keys promoted to the pinned hot tier.
    pub pins: u64,
    /// Hot keys demoted back to packed slots.
    pub demotions: u64,
    /// Point queries answered by a hot key's front cache without touching
    /// the arena or the full sketch.
    pub front_hits: u64,
    /// Front-cache refreshes (epoch boundaries and first-query fills).
    pub front_refreshes: u64,
    /// Cold keys evicted to the spill log.
    pub evictions: u64,
    /// Canonical-codec bytes appended to spill logs.
    pub spilled_bytes: u64,
    /// Spilled keys restored on touch.
    pub restores: u64,
    /// Bytes read back and decoded during restores.
    pub restored_bytes: u64,
    /// Spill-log compaction passes (a shard crossed its dead-fraction
    /// threshold and rewrote the live records).
    pub compactions: u64,
    /// Dead spill-log bytes reclaimed by compaction passes.
    pub reclaimed_bytes: u64,
    /// Point queries served (all tiers).
    pub queries: u64,
    /// Keys currently tracked (resident + pinned + spilled).
    pub keys: u64,
    /// Keys currently resident in packed arena slots.
    pub resident_keys: u64,
    /// Keys currently pinned in the hot tier.
    pub pinned_keys: u64,
    /// Keys currently only on disk.
    pub spilled_keys: u64,
    /// Budget-accounted bytes: live packed slots plus pinned sketch heap.
    pub resident_bytes: u64,
    /// Actual arena slab footprint (live + free-listed slots).
    pub arena_bytes: u64,
    /// The store's configured byte budget.
    pub budget_bytes: u64,
}

impl StoreMetricsSnapshot {
    pub(crate) fn absorb_tally(&mut self, t: &ShardTally) {
        self.items += t.items;
        self.key_runs += t.key_runs;
        self.folds += t.folds;
        self.delta_replayed += t.delta_replayed;
        self.promotions += t.promotions;
        self.pins += t.pins;
        self.demotions += t.demotions;
        self.front_hits += t.front_hits;
        self.front_refreshes += t.front_refreshes;
        self.evictions += t.evictions;
        self.spilled_bytes += t.spilled_bytes;
        self.restores += t.restores;
        self.restored_bytes += t.restored_bytes;
        self.compactions += t.compactions;
        self.reclaimed_bytes += t.reclaimed_bytes;
        self.queries += t.queries;
    }

    /// Render as a single-line JSON object (stable key order), matching
    /// the hand-rolled style of the other metrics snapshots in the repo.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"shards\":{},\"items\":{},\"key_runs\":{},\"folds\":{},",
                "\"delta_replayed\":{},\"promotions\":{},\"pins\":{},",
                "\"demotions\":{},\"front_hits\":{},\"front_refreshes\":{},",
                "\"evictions\":{},\"spilled_bytes\":{},\"restores\":{},",
                "\"restored_bytes\":{},\"compactions\":{},",
                "\"reclaimed_bytes\":{},\"queries\":{},\"keys\":{},",
                "\"resident_keys\":{},\"pinned_keys\":{},\"spilled_keys\":{},",
                "\"resident_bytes\":{},\"arena_bytes\":{},\"budget_bytes\":{}}}"
            ),
            self.shards,
            self.items,
            self.key_runs,
            self.folds,
            self.delta_replayed,
            self.promotions,
            self.pins,
            self.demotions,
            self.front_hits,
            self.front_refreshes,
            self.evictions,
            self.spilled_bytes,
            self.restores,
            self.restored_bytes,
            self.compactions,
            self.reclaimed_bytes,
            self.queries,
            self.keys,
            self.resident_keys,
            self.pinned_keys,
            self.spilled_keys,
            self.resident_bytes,
            self.arena_bytes,
            self.budget_bytes,
        )
    }
}

impl fmt::Display for StoreMetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "store: {} shards, {} keys ({} resident / {} pinned / {} spilled)",
            self.shards, self.keys, self.resident_keys, self.pinned_keys, self.spilled_keys
        )?;
        writeln!(
            f,
            "ingest: {} items over {} key-runs, {} folds ({} delta items replayed), {} promotions",
            self.items, self.key_runs, self.folds, self.delta_replayed, self.promotions
        )?;
        writeln!(
            f,
            "hot tier: {} pins, {} demotions, {} front hits / {} refreshes over {} queries",
            self.pins, self.demotions, self.front_hits, self.front_refreshes, self.queries
        )?;
        writeln!(
            f,
            "memory: {} resident / {} budget bytes ({} arena), {} evictions ({} bytes spilled), {} restores ({} bytes), {} compactions ({} bytes reclaimed)",
            self.resident_bytes,
            self.budget_bytes,
            self.arena_bytes,
            self.evictions,
            self.spilled_bytes,
            self.restores,
            self.restored_bytes,
            self.compactions,
            self.reclaimed_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_tallies() {
        let mut snap = StoreMetricsSnapshot::default();
        let t = ShardTally {
            items: 10,
            evictions: 2,
            front_hits: 3,
            ..Default::default()
        };
        snap.absorb_tally(&t);
        snap.absorb_tally(&t);
        assert_eq!(snap.items, 20);
        assert_eq!(snap.evictions, 4);
        assert_eq!(snap.front_hits, 6);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let snap = StoreMetricsSnapshot {
            shards: 4,
            items: 123,
            resident_bytes: 456,
            ..Default::default()
        };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shards\":4"));
        assert!(json.contains("\"items\":123"));
        assert!(json.contains("\"resident_bytes\":456"));
        // Every public field appears exactly once.
        for key in [
            "shards",
            "items",
            "key_runs",
            "folds",
            "delta_replayed",
            "promotions",
            "pins",
            "demotions",
            "front_hits",
            "front_refreshes",
            "evictions",
            "spilled_bytes",
            "restores",
            "restored_bytes",
            "compactions",
            "reclaimed_bytes",
            "queries",
            "keys",
            "resident_keys",
            "pinned_keys",
            "spilled_keys",
            "resident_bytes",
            "arena_bytes",
            "budget_bytes",
        ] {
            assert_eq!(
                json.matches(&format!("\"{key}\":")).count(),
                1,
                "key {key} missing or duplicated"
            );
        }
    }

    #[test]
    fn display_mentions_the_load_bearing_numbers() {
        let snap = StoreMetricsSnapshot {
            shards: 2,
            evictions: 7,
            front_hits: 9,
            ..Default::default()
        };
        let text = snap.to_json();
        assert!(text.contains('7') && text.contains('9'));
        let human = format!("{snap}");
        assert!(human.contains("2 shards"));
        assert!(human.contains("7 evictions"));
        assert!(human.contains("9 front hits"));
    }
}
