//! # gt-store — keyed multi-tenant sketch store
//!
//! One process, millions of small coordinated GT sketches, production
//! memory behavior. [`SketchStore`] keys each sketch by `u64` and layers
//! four mechanisms (see [`store`] for the full design):
//!
//! 1. **Arena-packed state** ([`arena`]) — per-shard slab arenas with
//!    power-of-two slot classes and free-list reuse; no per-key `Vec`s.
//! 2. **Sharded concurrent ingest** ([`store`]) — `(key, label)` batches
//!    staged, sorted by `(shard, key)`, and applied per key-run under one
//!    shard lock acquisition per batch.
//! 3. **Two-stage hot keys** — popular keys get a pooled full sketch plus
//!    an epoch-refreshed front cache answering point queries without
//!    touching the arena (the SF-sketch shape).
//! 4. **Eviction + spill** ([`spill`]) — approximate-LRU eviction of cold
//!    keys under a byte budget, through the canonical codec to a per-shard
//!    on-disk log, restored bitwise-identically on the next touch.
//!
//! The store's contract with correctness is simple to state and is tested
//! property-style: for every key, whatever tier it is in and however many
//! evict/restore and pin/demote cycles it went through,
//! [`SketchStore::canonical_bytes`] equals `encode_sketch` of a standalone
//! [`gt_core::GtSketch`] fed that key's labels in arrival order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod metrics;
pub mod spill;
pub mod store;

pub use arena::{SketchHandle, SlotArena};
pub use metrics::StoreMetricsSnapshot;
pub use spill::SpillLog;
pub use store::{DistinctStore, SketchStore, StoreOptions, StorePayload, STORE_STAGE};

use gt_streams::CodecError;

/// Errors a [`SketchStore`] can surface: sketch-level coordination errors,
/// spill-log I/O, and canonical-codec failures while restoring.
#[derive(Debug)]
pub enum StoreError {
    /// Sketch-level error (coordination, invalid state).
    Sketch(gt_core::SketchError),
    /// Canonical-codec error while encoding or restoring spilled state.
    Codec(CodecError),
    /// Spill-log I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Sketch(e) => write!(f, "sketch error: {e}"),
            StoreError::Codec(e) => write!(f, "spill codec error: {e}"),
            StoreError::Io(e) => write!(f, "spill io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Sketch(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Io(e) => Some(e),
        }
    }
}

impl From<gt_core::SketchError> for StoreError {
    fn from(e: gt_core::SketchError) -> Self {
        StoreError::Sketch(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Store-level result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
